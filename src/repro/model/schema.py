"""The object data model of §2: class definitions and object schemas.

The paper's grammar::

    cd ::= class C₁ extends C₂ (extent e) { ad₁ … adₖ  md₁ … mdₙ }
    ad ::= attribute φ a;
    md ::= φ m (φ₀ x₀, …, φₘ xₘ);

An **object schema** is a collection of class definitions, subject to
well-formedness conditions the paper elides "from this short paper";
we state and enforce them here (they follow Featherweight Java [16]):

* no class is defined twice, and ``Object`` is not redefined;
* every ``extends`` target is a declared class and the relation is
  acyclic;
* every class declares an extent, and extent names are unique;
* attribute and method-parameter/result types are φ types (primitives
  or declared classes — Note 1: representable in the method language);
* attribute names are unique within a class *and* do not shadow an
  inherited attribute;
* a method may override an inherited method only with the *same*
  signature (parameter and result types), as in FJ.

The schema also provides the paper's auxiliary functions:

* ``atype(C, a)``  — the type of attribute ``a`` in class ``C``;
* ``atypes(C)``    — all attributes of ``C`` with their types, inherited
  first (superclass order), as the (New) typing rule requires;
* ``mtype(C, m)``  — the (function) type of method ``m``, resolving
  inheritance and overriding (footnote 2 of the paper);
* ``mbody(C, m)``  — the implementation of ``m`` as seen from ``C``
  (used by the (Method) reduction rule).  Bodies are opaque at this
  layer — they are MJava ASTs or native Python callables, interpreted
  by :mod:`repro.methods.interp`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.effects.algebra import EMPTY, Effect
from repro.errors import SchemaError
from repro.model.subtyping import ClassHierarchy
from repro.model.types import (
    OBJECT,
    ClassType,
    FuncType,
    Type,
    is_data_model_type,
)


@dataclass(frozen=True, slots=True)
class AttrDef:
    """``attribute φ a;`` — a single attribute declaration."""

    name: str
    type: Type

    def __str__(self) -> str:
        return f"attribute {self.type} {self.name};"


@dataclass(frozen=True)
class MethodDef:
    """``φ m (φ₀ x₀, …, φₘ xₘ);`` — a method signature plus its body.

    ``body`` is opaque here: an MJava AST (:mod:`repro.methods.ast`) or
    a native Python callable ``(db_view, self_oid, args) -> value``.
    ``effect`` is the method's *declared* latent effect; the paper's
    core insists methods are read-only with effect ∅, and the schema
    checker enforces that unless the schema is built with
    ``allow_method_effects=True`` (the §5 design point).
    """

    name: str
    params: tuple[tuple[str, Type], ...]
    result: Type
    body: Any | None = None
    effect: Effect = field(default=EMPTY)

    def signature(self) -> FuncType:
        """The method's type as a :class:`FuncType` (with latent effect)."""
        return FuncType(tuple(t for _, t in self.params), self.result, self.effect)

    def __str__(self) -> str:
        ps = ", ".join(f"{t} {x}" for x, t in self.params)
        return f"{self.result} {self.name}({ps});"


@dataclass(frozen=True)
class ClassDef:
    """One ``class C extends C′ (extent e) { … }`` definition."""

    name: str
    superclass: str
    extent: str
    attributes: tuple[AttrDef, ...] = ()
    methods: tuple[MethodDef, ...] = ()

    def attr(self, name: str) -> AttrDef | None:
        for a in self.attributes:
            if a.name == name:
                return a
        return None

    def method(self, name: str) -> MethodDef | None:
        for m in self.methods:
            if m.name == name:
                return m
        return None


class Schema:
    """A well-formed object schema: the paper's collection of class defs.

    Construction validates every well-formedness condition listed in the
    module docstring and raises :class:`SchemaError` on the first
    violation.  The schema exposes the typing-side views the rest of
    the system needs: the class hierarchy, the extent environment
    ``E : extent-name → class``, and ``atype``/``atypes``/``mtype``/
    ``mbody``.
    """

    def __init__(
        self,
        classes: Iterable[ClassDef],
        *,
        allow_method_effects: bool = False,
    ):
        self.classes: dict[str, ClassDef] = {}
        for cd in classes:
            if cd.name == OBJECT:
                raise SchemaError("the root class Object cannot be redefined")
            if cd.name in self.classes:
                raise SchemaError(f"class {cd.name!r} defined twice")
            self.classes[cd.name] = cd

        self.hierarchy = ClassHierarchy(
            {name: cd.superclass for name, cd in self.classes.items()}
        )
        self.allow_method_effects = allow_method_effects
        self._extent_of_class: dict[str, str] = {}
        self.extents: dict[str, str] = {}  # E: extent name -> class name
        for cd in self.classes.values():
            if cd.extent in self.extents:
                raise SchemaError(
                    f"extent {cd.extent!r} declared by both "
                    f"{self.extents[cd.extent]!r} and {cd.name!r}"
                )
            self.extents[cd.extent] = cd.name
            self._extent_of_class[cd.name] = cd.extent
        self._validate_members()

    # -- well-formedness ---------------------------------------------------
    def _validate_members(self) -> None:
        for cd in self.classes.values():
            seen_attrs: set[str] = set()
            for a in cd.attributes:
                if a.name in seen_attrs:
                    raise SchemaError(
                        f"duplicate attribute {a.name!r} in class {cd.name!r}"
                    )
                seen_attrs.add(a.name)
                self._check_member_type(a.type, f"attribute {cd.name}.{a.name}")
                inherited = self._lookup_attr(cd.superclass, a.name)
                if inherited is not None:
                    raise SchemaError(
                        f"attribute {a.name!r} in class {cd.name!r} shadows "
                        f"an inherited attribute"
                    )
            seen_methods: set[str] = set()
            for m in cd.methods:
                if m.name in seen_methods:
                    raise SchemaError(
                        f"duplicate method {m.name!r} in class {cd.name!r} "
                        f"(no overloading)"
                    )
                seen_methods.add(m.name)
                pnames = [x for x, _ in m.params]
                if len(pnames) != len(set(pnames)):
                    raise SchemaError(
                        f"duplicate parameter name in {cd.name}.{m.name}"
                    )
                for x, t in m.params:
                    self._check_member_type(t, f"parameter {x} of {cd.name}.{m.name}")
                self._check_member_type(m.result, f"result of {cd.name}.{m.name}")
                if not self.allow_method_effects and not m.effect.is_empty():
                    raise SchemaError(
                        f"method {cd.name}.{m.name} declares effect {m.effect} "
                        f"but this schema is read-only (§2 core); build the "
                        f"Schema with allow_method_effects=True for §5 mode"
                    )
                overridden = self._lookup_method(cd.superclass, m.name)
                if overridden is not None and (
                    tuple(t for _, t in overridden.params)
                    != tuple(t for _, t in m.params)
                    or overridden.result != m.result
                ):
                    raise SchemaError(
                        f"method {cd.name}.{m.name} overrides with a "
                        f"different signature (FJ-style overriding requires "
                        f"identical signatures)"
                    )

    def _check_member_type(self, t: Type, what: str) -> None:
        if not is_data_model_type(t):
            raise SchemaError(
                f"{what} has type {t}, but class members must use data-model "
                f"types φ (primitives or class names) — Note 1"
            )
        if isinstance(t, ClassType) and not self.hierarchy.declared(t.name):
            raise SchemaError(f"{what} mentions unknown class {t.name!r}")

    # -- internal lookups ----------------------------------------------------
    def _lookup_attr(self, cname: str, attr: str) -> AttrDef | None:
        cur: str | None = cname
        while cur is not None and cur != OBJECT:
            cd = self.classes.get(cur)
            if cd is None:
                return None
            a = cd.attr(attr)
            if a is not None:
                return a
            cur = cd.superclass
        return None

    def _lookup_method(self, cname: str, mname: str) -> MethodDef | None:
        cur: str | None = cname
        while cur is not None and cur != OBJECT:
            cd = self.classes.get(cur)
            if cd is None:
                return None
            m = cd.method(mname)
            if m is not None:
                return m
            cur = cd.superclass
        return None

    # -- the paper's auxiliary functions --------------------------------------
    def atype(self, cname: str, attr: str) -> Type:
        """``atype(C, a)``: the type of attribute ``a`` of class ``C``.

        Searches the inheritance chain.  Raises :class:`SchemaError` if
        the class or attribute is unknown.
        """
        self._require_class(cname)
        a = self._lookup_attr(cname, attr)
        if a is None:
            raise SchemaError(f"class {cname!r} has no attribute {attr!r}")
        return a.type

    def atypes(self, cname: str) -> tuple[tuple[str, Type], ...]:
        """``atypes(C)``: all attributes of ``C`` with types.

        Inherited attributes come first (root-most superclass first), as
        object initialisation must supply every attribute (the paper
        "insists that all attributes are defined" in ``new``).
        """
        self._require_class(cname)
        chain = self.hierarchy.ancestors(cname)
        out: list[tuple[str, Type]] = []
        for c in reversed(chain):
            cd = self.classes.get(c)
            if cd is not None:
                out.extend((a.name, a.type) for a in cd.attributes)
        return tuple(out)

    def mtype(self, cname: str, mname: str) -> FuncType:
        """``mtype(C, m)``: the function type of method ``m`` on ``C``.

        Handles inheritance and overriding (paper footnote 2): the most
        derived declaration along the chain wins (signatures are forced
        identical by well-formedness, so the type is unambiguous).
        """
        self._require_class(cname)
        m = self._lookup_method(cname, mname)
        if m is None:
            raise SchemaError(f"class {cname!r} has no method {mname!r}")
        return m.signature()

    def mbody(self, cname: str, mname: str) -> MethodDef:
        """``mbody(C, m)``: the most-derived definition of ``m`` for ``C``."""
        self._require_class(cname)
        m = self._lookup_method(cname, mname)
        if m is None:
            raise SchemaError(f"class {cname!r} has no method {mname!r}")
        return m

    # -- extents ---------------------------------------------------------------
    def extent_class(self, extent: str) -> str:
        """The class whose extent is named ``extent`` (the E function)."""
        try:
            return self.extents[extent]
        except KeyError:
            raise SchemaError(f"unknown extent {extent!r}") from None

    def class_extent(self, cname: str) -> str:
        """The extent name of class ``cname``."""
        self._require_class(cname)
        try:
            return self._extent_of_class[cname]
        except KeyError:
            raise SchemaError(f"class {cname!r} has no extent") from None

    def extent_env(self) -> Mapping[str, str]:
        """The typing-environment view E: extent name → class name."""
        return dict(self.extents)

    # -- misc --------------------------------------------------------------------
    def _require_class(self, cname: str) -> None:
        if cname != OBJECT and cname not in self.classes:
            raise SchemaError(f"unknown class {cname!r}")

    def class_names(self) -> frozenset[str]:
        """All declared class names (excluding ``Object``)."""
        return frozenset(self.classes)

    def subtype(self, s: Type, t: Type, **kw: Any) -> bool:
        """Convenience passthrough to the hierarchy's subtype check."""
        return self.hierarchy.subtype(s, t, **kw)

    def __contains__(self, cname: str) -> bool:
        return cname in self.classes

    def __repr__(self) -> str:
        return f"Schema({sorted(self.classes)})"


EMPTY_SCHEMA = Schema(())
"""A schema with no classes — handy for pure set/record/int queries."""
