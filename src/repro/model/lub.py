"""Least upper bounds and the introduction's counter-observation.

The paper's introduction makes a sharp methodological point: the ODMG
object model *defines* (informally) a least upper bound of any two
types, but "a few moment's formality soon reveals that a least upper
bound of two types need not necessarily exist (because we have both
classes and interfaces)!".

The core data model of §2 deliberately omits interfaces, and there —
with single inheritance and a common root — LUBs of class types always
exist (:meth:`ClassHierarchy.lub_class`).  This module adds the
*minimal* extension that reproduces the observation: an
:class:`InterfaceHierarchy` where a class may additionally implement
multiple interfaces and interfaces may extend multiple interfaces.
Upper bounds are then sets of supertypes that need not have a least
element: two classes implementing the same two unrelated interfaces
``I`` and ``J`` have upper bounds {I, J, Object} with both I and J
minimal — no least one.

:func:`find_lub_failure` searches a hierarchy for such a pair, and the
``L1`` benchmark exhibits the failure on the canonical example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.model.types import OBJECT


@dataclass(frozen=True)
class InterfaceHierarchy:
    """Classes with single inheritance plus multiply-inherited interfaces.

    ``class_parent`` is the §2 ``extends`` relation; ``implements`` maps
    a class to the interfaces it declares; ``iface_parents`` maps an
    interface to the interfaces it extends.  ``Object`` is the top of
    both worlds.
    """

    class_parent: dict[str, str | None] = field(default_factory=dict)
    implements: dict[str, frozenset[str]] = field(default_factory=dict)
    iface_parents: dict[str, frozenset[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cp = dict(self.class_parent)
        cp.setdefault(OBJECT, None)
        object.__setattr__(self, "class_parent", cp)
        for c, ifaces in self.implements.items():
            if c not in cp:
                raise SchemaError(f"implements clause for unknown class {c!r}")
            for i in ifaces:
                if i not in self.iface_parents:
                    raise SchemaError(f"class {c!r} implements unknown {i!r}")
        self._check_iface_acyclic()

    def _check_iface_acyclic(self) -> None:
        state: dict[str, int] = {}

        def visit(i: str, path: tuple[str, ...]) -> None:
            if state.get(i) == 2:
                return
            if state.get(i) == 1:
                raise SchemaError(f"interface cycle through {i!r}")
            state[i] = 1
            for p in self.iface_parents.get(i, frozenset()):
                if p not in self.iface_parents:
                    raise SchemaError(f"interface {i!r} extends unknown {p!r}")
                visit(p, path + (i,))
            state[i] = 2

        for i in self.iface_parents:
            visit(i, ())

    # ------------------------------------------------------------------
    def types(self) -> frozenset[str]:
        """All named types: classes, interfaces and Object."""
        return frozenset(self.class_parent) | frozenset(self.iface_parents)

    def supertypes(self, t: str) -> frozenset[str]:
        """All supertypes of ``t`` (reflexive), classes and interfaces."""
        if t in self.class_parent:
            out: set[str] = set()
            cur: str | None = t
            while cur is not None:
                out.add(cur)
                for i in self.implements.get(cur, frozenset()):
                    out |= self._iface_ups(i)
                cur = self.class_parent[cur]
            out.add(OBJECT)
            return frozenset(out)
        if t in self.iface_parents:
            return frozenset(self._iface_ups(t) | {OBJECT})
        raise SchemaError(f"unknown type {t!r}")

    def _iface_ups(self, i: str) -> set[str]:
        out = {i}
        for p in self.iface_parents.get(i, frozenset()):
            out |= self._iface_ups(p)
        return out

    def subtype(self, s: str, t: str) -> bool:
        return t in self.supertypes(s)

    # ------------------------------------------------------------------
    def upper_bounds(self, a: str, b: str) -> frozenset[str]:
        """Common supertypes of ``a`` and ``b`` (never empty: Object)."""
        return self.supertypes(a) & self.supertypes(b)

    def minimal_upper_bounds(self, a: str, b: str) -> frozenset[str]:
        """The minimal elements of the common-supertype set."""
        ubs = self.upper_bounds(a, b)
        return frozenset(
            u
            for u in ubs
            if not any(v != u and self.subtype(v, u) for v in ubs)
        )

    def lub(self, a: str, b: str) -> str | None:
        """The least upper bound — or None, the ODMG's missing case."""
        mins = self.minimal_upper_bounds(a, b)
        if len(mins) == 1:
            return next(iter(mins))
        return None


def find_lub_failure(h: InterfaceHierarchy) -> tuple[str, str, frozenset[str]] | None:
    """Search for a pair of types with no least upper bound.

    Returns (a, b, minimal-upper-bounds) for the first failing pair in
    lexicographic order, or None when every pair has a LUB (which is
    guaranteed if there are no interfaces — the §2 model).
    """
    names = sorted(h.types())
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            mins = h.minimal_upper_bounds(a, b)
            if len(mins) > 1:
                return (a, b, mins)
    return None


def odmg_counterexample() -> InterfaceHierarchy:
    """The textbook failure: two classes sharing two unrelated interfaces.

    ``Clerk`` and ``Temp`` both implement ``Payable`` and ``Insurable``;
    their upper bounds are {Payable, Insurable, Object} with two
    minimal elements — no least upper bound, precisely the gap the
    introduction points out in ODMG [8, p.100].
    """
    return InterfaceHierarchy(
        class_parent={"Clerk": OBJECT, "Temp": OBJECT},
        implements={
            "Clerk": frozenset({"Payable", "Insurable"}),
            "Temp": frozenset({"Payable", "Insurable"}),
        },
        iface_parents={"Payable": frozenset(), "Insurable": frozenset()},
    )
