"""Static reference-closure analysis for recursive ``traverse`` queries.

A ``traverse(x in q over a)`` can read any extent holding an object the
chase might visit.  Statically, the visitable classes are the
*subclass-widened reachable closure* of the source element class under
the declared type of attribute ``a``:

* a runtime element of a ``Set<C>`` source may belong to any subclass
  of ``C``, so every class in ``C``'s subclass cone contributes;
* each cone class that declares (or inherits) ``a`` at a class type
  ``D`` can reach objects of ``D`` — whose runtime class is again
  anywhere in ``D``'s cone — and the chase recurses from there;
* a cone class whose ``a`` is primitive-typed (or that lacks ``a``)
  stops the chain at its objects: a traversal is a reachability query,
  not a projection, so such objects are leaves, not errors.

The closure is the foundation of the Figure 3-style effect rule for
``traverse`` (one ``R`` atom per closure class), which in turn is what
lets the whole stack — compiled routing (Theorem 4), cache/index/stats
invalidation (Theorem 5), the scheduler's conflict graph, replica
freshness marks, and sharding — handle recursion with *no* bespoke
logic: they all consume ``Effect.reads()``.

When a chain escapes the declared schema (an attribute typed at a class
the hierarchy does not know — possible only for hand-built schemas that
bypassed validation), the analysis reports the escape and callers fall
back to reading *every* class: the ``U``-like conservative effect the
issue tracker calls the safety net.
"""

from __future__ import annotations

from repro.model.schema import Schema
from repro.model.types import OBJECT, ClassType


def attr_declared(schema: Schema, cname: str, attr: str) -> bool:
    """True iff ``cname`` declares (or inherits) ``attr`` at any type.

    Distinguishes a primitive-typed attribute — a legitimate chase leaf
    — from an attribute that exists nowhere in the closure, which can
    only be a typo.
    """
    try:
        schema.atype(cname, attr)
    except Exception:
        return False
    return True


def attr_target(schema: Schema, cname: str, attr: str) -> str | None:
    """The class ``attr`` points at from ``cname``, or ``None``.

    ``None`` means the chain stops at ``cname``'s objects: the
    attribute is undeclared there or is not reference-typed.
    """
    try:
        t = schema.atype(cname, attr)
    except Exception:
        return None
    if isinstance(t, ClassType):
        return t.name
    return None


def reachable_closure(
    schema: Schema, cname: str, attr: str
) -> tuple[frozenset[str], bool]:
    """``(classes, escaped)`` for a traversal of ``attr`` from ``cname``.

    ``classes`` is the subclass-widened set of classes whose extents
    the chase may read (always containing ``cname``'s own cone when
    declared).  ``escaped`` is True when a link targets a class the
    hierarchy does not declare — the caller must then widen to the
    whole schema.
    """
    hierarchy = schema.hierarchy
    if cname == OBJECT:
        # a Set<Object> source could hold anything: every class is fair
        # game, which is exactly the whole-schema fallback
        return schema.class_names(), True
    if not hierarchy.declared(cname):
        return frozenset(), True

    seen: set[str] = set()
    escaped = False
    frontier = [cname]
    while frontier:
        cur = frontier.pop()
        if cur in seen:
            continue
        if cur == OBJECT or not hierarchy.declared(cur):
            escaped = True
            continue
        # the whole cone joins at once: runtime members of cur's extent
        # family are exactly the cone's instances
        for cone_class in hierarchy.subclasses(cur):
            if cone_class in seen:
                continue
            seen.add(cone_class)
            target = attr_target(schema, cone_class, attr)
            if target is not None:
                frontier.append(target)
    return frozenset(seen), escaped


def closure_read_set(schema: Schema, cname: str, attr: str) -> frozenset[str]:
    """The classes a traversal from ``cname`` over ``attr`` may read.

    The escape hatch applied: a chain leaving the declared schema
    widens to every class (the conservative ``U``-like read set).
    """
    classes, escaped = reachable_closure(schema, cname, attr)
    if escaped:
        return schema.class_names() | classes
    return classes


def result_lub(schema: Schema, cname: str, attr: str) -> str:
    """The lub-widened element class of a traversal's result set.

    Folds :func:`ClassHierarchy.lub_class` over the reachable closure —
    with single inheritance and the common root this always exists
    (``Object`` in the worst case).
    """
    classes, escaped = reachable_closure(schema, cname, attr)
    if escaped or not classes:
        return OBJECT
    out: str | None = None
    for c in sorted(classes):
        out = c if out is None else schema.hierarchy.lub_class(out, c)
    return out if out is not None else OBJECT
