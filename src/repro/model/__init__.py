"""The object data model of §2: types, subtyping, schemas, LUB analysis."""

from repro.model.schema import AttrDef, ClassDef, MethodDef, Schema
from repro.model.subtyping import ClassHierarchy
from repro.model.types import (
    BOOL,
    INT,
    NEVER,
    OBJECT,
    STRING,
    BoolType,
    ClassType,
    FuncType,
    IntType,
    NeverType,
    RecordType,
    SetType,
    StringType,
    Type,
)

__all__ = [
    "AttrDef", "BOOL", "BoolType", "ClassDef", "ClassHierarchy", "ClassType",
    "FuncType", "INT", "IntType", "MethodDef", "NEVER", "NeverType", "OBJECT",
    "RecordType", "STRING", "Schema", "SetType", "StringType", "Type",
]
