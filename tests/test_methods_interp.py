"""Unit tests for the MJava big-step interpreter (⇓) and access modes."""

import pytest

from repro.effects.algebra import EMPTY, Effect, add, read, update
from repro.errors import EvalError, FuelExhausted, MethodError
from repro.lang.ast import BoolLit, IntLit, OidRef, StrLit
from repro.methods.ast import AccessMode, NativeMethod
from repro.methods.interp import Fuel, MethodInterpreter
from repro.model.odl_parser import parse_schema
from repro.db.store import ExtentEnv, ObjectEnv, OidSupply, populate

READONLY_ODL = """
class Counter extends Object (extent Counters) {
    attribute int n;
    int get() { return this.n; }
    int doubled() { return this.get() + this.get(); }
    int addTo(int k) { return this.n + k; }
    int abs_diff(int k) {
        if (this.n < k) { return k - this.n; } else { return this.n - k; }
    }
    int sum_to_n() {
        var acc : int := 0;
        var i : int := 0;
        while (i < this.n) { i := i + 1; acc := acc + i; }
        return acc;
    }
    int forever() { while (true) { } }
    bool same(Counter other) { return this == other; }
}
"""

EFFECTFUL_ODL = """
class Counter extends Object (extent Counters) {
    attribute int n;
    int bump(int k) effect U(Counter) {
        this.n := this.n + k;
        return this.n;
    }
    Counter clone_me() effect A(Counter) {
        return new Counter(n: this.n);
    }
    int population() effect R(Counter) {
        var c : int := 0;
        for (x in extent(Counters)) { c := c + 1; }
        return c;
    }
    int total() effect R(Counter) {
        var t : int := 0;
        for (x in extent(Counters)) { t := t + x.n; }
        return t;
    }
}
"""


def setup_readonly():
    schema = parse_schema(READONLY_ODL)
    ee, oe, supply = ExtentEnv.for_schema(schema), ObjectEnv(), OidSupply()
    ee, oe, c = populate(schema, ee, oe, supply, "Counter", [("n", IntLit(5))])
    return schema, ee, oe, supply, c.name


def setup_effectful():
    schema = parse_schema(EFFECTFUL_ODL, allow_method_effects=True)
    ee, oe, supply = ExtentEnv.for_schema(schema), ObjectEnv(), OidSupply()
    ee, oe, a = populate(schema, ee, oe, supply, "Counter", [("n", IntLit(5))])
    ee, oe, b = populate(schema, ee, oe, supply, "Counter", [("n", IntLit(7))])
    return schema, ee, oe, supply, a.name, b.name


class TestReadOnlyMode:
    def test_attribute_read(self):
        schema, ee, oe, supply, c = setup_readonly()
        out = MethodInterpreter(schema, ee, oe).invoke(c, "get", ())
        assert out.value == IntLit(5)
        assert out.effect == EMPTY
        assert out.ee == ee and out.oe == oe

    def test_self_call(self):
        schema, ee, oe, supply, c = setup_readonly()
        out = MethodInterpreter(schema, ee, oe).invoke(c, "doubled", ())
        assert out.value == IntLit(10)

    def test_parameters(self):
        schema, ee, oe, supply, c = setup_readonly()
        out = MethodInterpreter(schema, ee, oe).invoke(c, "addTo", (IntLit(3),))
        assert out.value == IntLit(8)

    def test_branching(self):
        schema, ee, oe, supply, c = setup_readonly()
        i = MethodInterpreter(schema, ee, oe)
        assert i.invoke(c, "abs_diff", (IntLit(9),)).value == IntLit(4)
        assert MethodInterpreter(schema, ee, oe).invoke(
            c, "abs_diff", (IntLit(1),)
        ).value == IntLit(4)

    def test_while_loop(self):
        schema, ee, oe, supply, c = setup_readonly()
        out = MethodInterpreter(schema, ee, oe).invoke(c, "sum_to_n", ())
        assert out.value == IntLit(15)  # 1+2+3+4+5

    def test_object_equality(self):
        schema, ee, oe, supply, c = setup_readonly()
        out = MethodInterpreter(schema, ee, oe).invoke(c, "same", (OidRef(c),))
        assert out.value == BoolLit(True)

    def test_divergence_fuel(self):
        schema, ee, oe, supply, c = setup_readonly()
        interp = MethodInterpreter(schema, ee, oe, fuel=Fuel(100))
        with pytest.raises(FuelExhausted):
            interp.invoke(c, "forever", ())

    def test_arity_mismatch(self):
        schema, ee, oe, supply, c = setup_readonly()
        with pytest.raises(EvalError, match="arity"):
            MethodInterpreter(schema, ee, oe).invoke(c, "addTo", ())

    def test_unbound_method_body(self):
        schema, ee, oe, supply, c = setup_readonly()
        with pytest.raises(Exception):
            MethodInterpreter(schema, ee, oe).invoke(c, "nosuch", ())


class TestEffectfulMode:
    def test_attribute_update(self):
        schema, ee, oe, supply, a, b = setup_effectful()
        interp = MethodInterpreter(
            schema, ee, oe, mode=AccessMode.EFFECTFUL, oid_supply=supply
        )
        out = interp.invoke(a, "bump", (IntLit(10),))
        assert out.value == IntLit(15)
        assert out.oe.get(a).attr("n") == IntLit(15)
        assert out.effect == Effect.of(update("Counter"))
        # original OE untouched
        assert oe.get(a).attr("n") == IntLit(5)

    def test_object_creation(self):
        schema, ee, oe, supply, a, b = setup_effectful()
        interp = MethodInterpreter(
            schema, ee, oe, mode=AccessMode.EFFECTFUL, oid_supply=supply
        )
        out = interp.invoke(a, "clone_me", ())
        assert isinstance(out.value, OidRef)
        assert len(out.ee.members("Counters")) == 3
        assert out.effect == Effect.of(add("Counter"))

    def test_extent_iteration(self):
        schema, ee, oe, supply, a, b = setup_effectful()
        interp = MethodInterpreter(
            schema, ee, oe, mode=AccessMode.EFFECTFUL, oid_supply=supply
        )
        out = interp.invoke(a, "population", ())
        assert out.value == IntLit(2)
        assert out.effect == Effect.of(read("Counter"))

    def test_extent_iteration_reads_attrs(self):
        schema, ee, oe, supply, a, b = setup_effectful()
        interp = MethodInterpreter(
            schema, ee, oe, mode=AccessMode.EFFECTFUL, oid_supply=supply
        )
        assert interp.invoke(a, "total", ()).value == IntLit(12)

    def test_update_refused_in_readonly_mode(self):
        schema, ee, oe, supply, a, b = setup_effectful()
        interp = MethodInterpreter(schema, ee, oe, mode=AccessMode.READ_ONLY)
        with pytest.raises(MethodError, match="read-only"):
            interp.invoke(a, "bump", (IntLit(1),))


class TestNativeMethods:
    def _schema_with_native(self, fn):
        schema = parse_schema(
            """
            class P extends Object (extent Ps) {
                attribute int x;
                int magic() native;
            }
            """
        )
        mdef = schema.mbody("P", "magic")
        object.__setattr__(mdef, "body", NativeMethod(fn, "magic"))
        return schema

    def test_native_reads_attr(self):
        def fn(ctx, oid, args):
            v = ctx.attr(oid, "x")
            return IntLit(v.value * 100)

        schema = self._schema_with_native(fn)
        ee, oe, supply = ExtentEnv.for_schema(schema), ObjectEnv(), OidSupply()
        ee, oe, p = populate(schema, ee, oe, supply, "P", [("x", IntLit(7))])
        out = MethodInterpreter(schema, ee, oe).invoke(p.name, "magic", ())
        assert out.value == IntLit(700)

    def test_native_must_return_value(self):
        schema = self._schema_with_native(lambda ctx, oid, args: 42)
        ee, oe, supply = ExtentEnv.for_schema(schema), ObjectEnv(), OidSupply()
        ee, oe, p = populate(schema, ee, oe, supply, "P", [("x", IntLit(1))])
        with pytest.raises(EvalError, match="non-value"):
            MethodInterpreter(schema, ee, oe).invoke(p.name, "magic", ())

    def test_native_mutation_refused_in_readonly(self):
        def fn(ctx, oid, args):
            ctx.set_attr(oid, "x", IntLit(0))
            return IntLit(0)

        schema = self._schema_with_native(fn)
        ee, oe, supply = ExtentEnv.for_schema(schema), ObjectEnv(), OidSupply()
        ee, oe, p = populate(schema, ee, oe, supply, "P", [("x", IntLit(1))])
        with pytest.raises(MethodError):
            MethodInterpreter(schema, ee, oe).invoke(p.name, "magic", ())
