"""Recursive `traverse`: syntax, typing, effects, semantics, routing.

Layer-by-layer unit coverage for the `traverse(x in C over attr
[depth<=k])` construct; the ~300-query graph-shape differential harness
lives in ``tests/test_traverse_differential.py``.  The sections follow
the pipeline:

* surface syntax and pretty-printer round-trips;
* the typing rule (result = set of the reachable-class lub) and its
  rejections;
* the static effect rule: ``R`` over the subclass-widened reachable
  closure, with the conservative all-classes fallback when a chain
  escapes the declared schema;
* big-step / small-step semantics: leaves, cycles, depth bounds,
  dangling references, fuel charged per visited node;
* the persistent interval (pre/post-order) closure index and its
  Theorem 5 eviction discipline (A evicts exactly the cones containing
  the written class, U drops all, unrelated writes promote);
* budget and fault-injection behavior of the compiled routes, and
  replica freshness over the full reachable set.
"""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.store import (
    ClosureIndexes,
    ExtentEnv,
    ObjectEnv,
    ObjectRecord,
    build_closure_index,
)
from repro.effects.algebra import Effect, add, read, update
from repro.errors import (
    EvalError,
    FuelExhausted,
    IOQLTypeError,
    StuckError,
    TransientFault,
)
from repro.exec.compiler import GREEN_TRAVERSE_DEPTH, compile_plan
from repro.lang.ast import IntLit, OidRef, SetLit, Traverse, Var
from repro.lang.parser import parse_query
from repro.lang.pprint import pretty
from repro.model.closure import (
    closure_read_set,
    reachable_closure,
    result_lub,
)
from repro.model.types import OBJECT
from repro.resilience import faults as fault_injection
from repro.resilience.budget import Budget
from repro.resilience.faults import FaultPlan, FaultRule, inject
from repro.resilience.retry import RetryPolicy
from repro.model.types import ClassType, SetType

from tests.traverse_helpers import NODE_REF_ODL, graph_db, oids, reachable


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    yield
    fault_injection.uninstall()


@pytest.fixture
def db():
    # cycle r1->r2->r3->r1, tail r4->leaf
    return graph_db(
        {"r1": "r2", "r2": "r3", "r3": "r1", "r4": "leaf", "leaf": None}
    )


# ---------------------------------------------------------------------------
# Syntax
# ---------------------------------------------------------------------------


class TestSyntax:
    def test_parse_unbounded(self, db):
        q = db.parse("traverse(x in refs over next)")
        assert isinstance(q, Traverse)
        assert q.var == "x" and q.attr == "next" and q.depth is None

    def test_parse_bounded(self, db):
        q = db.parse("traverse(x in refs over next depth <= 3)")
        assert q.depth == 3

    def test_pretty_roundtrip(self, db):
        for src in (
            "traverse(x in refs over next)",
            "traverse(x in refs over next depth <= 0)",
            "traverse(x in refs union nodes over next depth <= 12)",
        ):
            q = db.parse(src)
            assert db.parse(pretty(q)) == q

    def test_traverse_composes_as_expression(self, db):
        q = db.parse("size(traverse(x in refs over next depth <= 1))")
        assert db.run(q, commit=False).value == IntLit(5)

    def test_traverse_as_generator_source(self, db):
        res = db.run(
            "{ x.tag | x <- traverse(x in refs over next) }", commit=False
        )
        assert len(res.value.items) == 5


# ---------------------------------------------------------------------------
# Typing
# ---------------------------------------------------------------------------


class TestTyping:
    def test_result_is_lub_widened(self, db):
        # refs: set<Ref>, next: Node => closure spans {Ref, Node}, lub Node
        t = db.typecheck("traverse(x in refs over next)")
        assert t == SetType(ClassType("Node"))

    def test_node_source_same_lub(self, db):
        t = db.typecheck("traverse(x in nodes over next)")
        assert t == SetType(ClassType("Node"))

    def test_non_set_source_rejected(self, db):
        with pytest.raises(IOQLTypeError, match="traverse"):
            db.typecheck("traverse(x in 3 over next)")

    def test_non_object_elements_rejected(self, db):
        with pytest.raises(IOQLTypeError, match="traverse"):
            db.typecheck("traverse(x in {1, 2} over next)")

    def test_empty_set_source_types(self, db):
        t = db.typecheck("traverse(x in {} over next)")
        assert isinstance(t, SetType)

    def test_unknown_attr_rejected(self, db):
        with pytest.raises(IOQLTypeError, match="not declared"):
            db.typecheck("traverse(x in refs over nosuch)")

    def test_primitive_attr_is_leaf_not_error(self, db):
        # tag: int is declared, so its objects are chase leaves and the
        # traversal is the reflexive closure — not a type error
        t = db.typecheck("traverse(x in nodes over tag)")
        assert t == SetType(ClassType("Node"))

    def test_negative_depth_rejected(self, db):
        q = Traverse("x", Var("refs"), "next", -1)
        with pytest.raises(IOQLTypeError, match="non-negative"):
            db.typecheck(
                Traverse("x", db.parse("refs"), "next", -1)
            ) if False else db.typecheck(q)


# ---------------------------------------------------------------------------
# Static effects / the reachable closure
# ---------------------------------------------------------------------------


class TestEffects:
    def test_closure_is_subclass_widened(self, db):
        # Ref.next : Node, and Ref extends Node, so a Node-typed link
        # may dynamically hold a Ref — the closure spans both.
        eff = db.effect_of("traverse(x in refs over next)")
        assert eff == Effect.of(read("Node"), read("Ref"))

    def test_unrelated_class_not_read(self, db):
        eff = db.effect_of("traverse(x in refs over next)")
        assert "Other" not in eff.reads()

    def test_closure_read_set_helper(self, db):
        assert closure_read_set(db.schema, "Ref", "next") == frozenset(
            {"Node", "Ref"}
        )
        # Node does not declare `next`: the chase stops immediately but
        # still reads Node extents (and Ref's, via subclass widening)
        assert closure_read_set(db.schema, "Node", "next") == frozenset(
            {"Node", "Ref"}
        )

    def test_escape_fallback_reads_everything(self, db):
        classes, escaped = reachable_closure(db.schema, OBJECT, "next")
        assert escaped
        assert closure_read_set(db.schema, OBJECT, "next") == frozenset(
            db.schema.class_names()
        )

    def test_result_lub_helper(self, db):
        assert result_lub(db.schema, "Ref", "next") == "Node"
        assert result_lub(db.schema, OBJECT, "next") == OBJECT

    def test_effect_drives_scheduler_conflicts(self, db):
        # A(Node) interferes with the traversal's widened R set even
        # though the query never mentions the nodes extent textually.
        t_eff = db.effect_of("traverse(x in refs over next)")
        w_eff = Effect.of(add("Node"))
        assert t_eff.interferes_with(w_eff)


# ---------------------------------------------------------------------------
# Semantics (big-step and machine)
# ---------------------------------------------------------------------------

ENGINES = ("bigstep", "reduction", "compiled")


class TestSemantics:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_cycle_converges(self, db, engine):
        res = db.run("traverse(x in refs over next)", engine=engine,
                     commit=False)
        assert oids(res.value) == {"@r1", "@r2", "@r3", "@r4", "@leaf"}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_leaf_is_not_stuck(self, db, engine):
        # traversal reaches @leaf (a Node with no `next`) and stops
        res = db.run("traverse(x in nodes over next)", engine=engine,
                     commit=False)
        assert oids(res.value) == {"@leaf"}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_depth_zero_is_start_set(self, db, engine):
        res = db.run("traverse(x in refs over next depth <= 0)",
                     engine=engine, commit=False)
        assert oids(res.value) == {"@r1", "@r2", "@r3", "@r4"}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_depth_bounds_hops(self, db, engine):
        res = db.run("traverse(x in {@r4} over next depth <= 1)",
                     engine=engine, commit=False)
        assert oids(res.value) == {"@r4", "@leaf"}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_self_loop(self, engine):
        loop = graph_db({"a": "a"})
        res = loop.run("traverse(x in refs over next)", engine=engine,
                       commit=False)
        assert oids(res.value) == {"@a"}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_start(self, db, engine):
        res = db.run("traverse(x in {} over next)", engine=engine,
                     commit=False)
        assert res.value == SetLit(())

    def test_dynamic_effect_within_static(self, db):
        static = db.effect_of("traverse(x in {@leaf} over next)")
        res = db.run("traverse(x in {@leaf} over next)", engine="reduction",
                     commit=False)
        # only Node was visited; the static bound also carries R(Ref)
        assert res.effect.subeffect_of(static)
        assert res.effect == Effect.of(read("Node"))

    def test_dangling_reference_raises(self, db):
        q = Traverse("x", SetLit((OidRef("@ghost"),)), "next", None)
        with pytest.raises(EvalError):
            db.run(q, typecheck=False, engine="bigstep", commit=False)

    def test_non_set_source_stuck(self, db):
        q = Traverse("x", IntLit(3), "next", None)
        with pytest.raises(StuckError):
            db.run(q, typecheck=False, engine="bigstep", commit=False)

    def test_bigstep_matches_model(self):
        edges = {f"c{i}": f"c{i + 1}" for i in range(40)}
        edges["c40"] = None
        chain = graph_db(edges)
        for depth in (0, 1, 7, 39, None):
            src = "traverse(x in {@c0} over next" + (
                f" depth <= {depth})" if depth is not None else ")"
            )
            res = chain.run(src, engine="bigstep", commit=False)
            assert oids(res.value) == reachable(edges, ["c0"], depth)


# ---------------------------------------------------------------------------
# Compiled routing
# ---------------------------------------------------------------------------


class TestRouting:
    def route_note(self, db, src):
        plan = compile_plan(db.schema, {}, db.parse(src))
        notes = [n for n in plan.notes if n.startswith("traverse route")]
        assert len(notes) == 1
        return notes[0]

    def test_green_route_for_small_depth(self, db):
        note = self.route_note(
            db, f"traverse(x in refs over next depth <= {GREEN_TRAVERSE_DEPTH})"
        )
        assert "green" in note

    def test_yellow_route_for_deep_bound(self, db):
        note = self.route_note(
            db,
            f"traverse(x in refs over next depth <= {GREEN_TRAVERSE_DEPTH + 1})",
        )
        assert "yellow" in note

    def test_red_route_for_unbounded(self, db):
        note = self.route_note(db, "traverse(x in refs over next)")
        assert "red" in note

    def test_auto_engine_compiles_traverse(self, db):
        decision = db.plan_decision("traverse(x in refs over next)")
        assert decision.engine == "compiled"

    def test_red_builds_index_on_acyclic_store(self):
        chain = graph_db({"a": "b", "b": "c", "c": None})
        chain.run("traverse(x in refs over next)", engine="compiled",
                  commit=False)
        assert len(chain._closure_indexes) == 1
        snap = chain._closure_indexes.snapshot()
        (entry,) = snap.values()
        assert entry["usable"] and not entry["cyclic"]
        assert entry["nodes"] == 3

    def test_red_falls_back_on_cyclic_store(self, db):
        res = db.run("traverse(x in refs over next)", engine="compiled",
                     commit=False)
        assert oids(res.value) == {"@r1", "@r2", "@r3", "@r4", "@leaf"}
        snap = db._closure_indexes.snapshot()
        (entry,) = snap.values()
        assert entry["cyclic"]

    def test_index_reused_across_queries(self):
        chain = graph_db({"a": "b", "b": None})
        for _ in range(3):
            chain.run("traverse(x in refs over next)", engine="compiled",
                      commit=False)
        assert chain._closure_indexes.rebuilds == 1


# ---------------------------------------------------------------------------
# The interval index itself
# ---------------------------------------------------------------------------


class TestClosureIndex:
    def build(self, edges):
        db = graph_db(edges)
        idx = build_closure_index(
            db.schema, db.ee, db.oe, "next", frozenset({"Node", "Ref"})
        )
        return db, idx

    def test_tree_closure_matches_model(self):
        edges = {
            "a": "c", "b": "c", "c": "e", "d": "e", "e": None, "f": None,
        }
        db, idx = self.build(edges)
        assert idx.usable and not idx.cyclic
        for start in (["a"], ["b", "d"], ["e"], ["f"], ["a", "f"]):
            got = idx.closure_of([f"@{s}" for s in start])
            assert got == frozenset(reachable(edges, start))

    def test_cycle_detected(self):
        _, idx = self.build({"a": "b", "b": "a"})
        assert idx.cyclic
        assert idx.closure_of(["@a"]) is None

    def test_unknown_start_defers(self):
        _, idx = self.build({"a": None})
        assert idx.closure_of(["@missing"]) is None

    def test_empty_graph(self):
        _, idx = self.build({})
        assert idx.usable
        assert idx.closure_of([]) == frozenset()


# ---------------------------------------------------------------------------
# Theorem 5 eviction discipline
# ---------------------------------------------------------------------------


class TestTheorem5Eviction:
    def warmed(self):
        db = graph_db({"a": "b", "b": "c", "c": None})
        db.run("traverse(x in refs over next)", engine="compiled",
               commit=False)
        assert len(db._closure_indexes) == 1
        return db

    def test_add_inside_cone_evicts(self):
        db = self.warmed()
        db.insert("Node", tag=99)  # A(Node), Node is in the cone
        assert len(db._closure_indexes) == 0

    def test_add_to_subclass_evicts(self):
        db = self.warmed()
        leaf = db.insert("Node", tag=1)
        # the insert above already evicted; rebuild then hit Ref
        db.run("traverse(x in refs over next)", commit=False)
        assert len(db._closure_indexes) == 1
        db.insert("Ref", tag=2, next=leaf)
        assert len(db._closure_indexes) == 0

    def test_add_outside_cone_promotes(self):
        db = self.warmed()
        before = db._closure_indexes.rebuilds
        db.insert("Other", x=1)  # A(Other) is disjoint from the cone
        assert len(db._closure_indexes) == 1
        db.run("traverse(x in refs over next)", commit=False)
        assert db._closure_indexes.rebuilds == before  # promoted, not rebuilt

    def test_update_drops_all(self):
        db = self.warmed()
        db._closure_indexes.note_write(
            db.schema, Effect.of(update("Other")), 0, 1
        )
        assert len(db._closure_indexes) == 0

    def test_eviction_unit_property(self):
        # pure-unit version: eviction is exactly cone-membership
        db = graph_db({"a": None})
        store = ClosureIndexes()
        for cone in (frozenset({"Node"}), frozenset({"Node", "Ref"})):
            store.get(db.schema, db.ee, db.oe, 0, "next", cone)
        assert len(store) == 2
        store.note_write(db.schema, Effect.of(add("Ref")), 0, 1)
        # only the cone containing Ref is dropped
        assert len(store) == 1
        (key,) = store._indexes.keys()
        assert key[1] == frozenset({"Node"})

    def test_answers_correct_after_eviction(self):
        db = self.warmed()
        leaf = db.insert("Node", tag=7)
        db.insert("Ref", tag=8, next=leaf)
        res = db.run("traverse(x in refs over next)", commit=False)
        model = {"@a", "@b", "@c", leaf.name}
        model.add(next(iter(oids(res.value) - model)))  # the new Ref oid
        assert oids(res.value) == model

    def test_shard_layout_change_invalidates(self):
        db = self.warmed()
        db.shard("Ref", k=2)
        assert len(db._closure_indexes) == 0
        res = db.run("traverse(x in refs over next)", commit=False)
        assert oids(res.value) == {"@a", "@b", "@c"}


# ---------------------------------------------------------------------------
# Budgets: fuel exhaustion mid-fixpoint degrades loudly
# ---------------------------------------------------------------------------


class TestBudgets:
    def big_cycle(self, n=50):
        edges = {f"c{i}": f"c{(i + 1) % n}" for i in range(n)}
        return graph_db(edges)

    @pytest.mark.parametrize("engine", ("bigstep", "compiled"))
    def test_fuel_exhaustion_raises(self, engine):
        db = self.big_cycle()
        with pytest.raises(FuelExhausted):
            db.run(
                "traverse(x in refs over next)",
                engine=engine,
                commit=False,
                budget=Budget(max_steps=10),
            )

    def test_reduction_charges_one_step_per_rule(self):
        # the machine's (Traverse) rule fires the whole closure as one
        # reduction — budget overshoot is bounded by one rule, by design
        db = self.big_cycle()
        res = db.run(
            "traverse(x in refs over next)",
            engine="reduction",
            commit=False,
            budget=Budget(max_steps=10),
        )
        assert len(res.value.items) == 50

    def test_enough_fuel_succeeds(self):
        db = self.big_cycle()
        res = db.run(
            "traverse(x in refs over next)",
            commit=False,
            budget=Budget(max_steps=10_000),
        )
        assert len(res.value.items) == 50

    def test_no_partial_commit_on_exhaustion(self):
        # a writing query whose source traversal exhausts fuel must
        # leave the store untouched — loud failure, no partial state
        db = self.big_cycle()
        before_nodes = len(db.extent("nodes"))
        before_version = db._state_version
        with pytest.raises(FuelExhausted):
            db.run(
                "{ new Node(tag: x.tag) | x <- traverse(x in refs over next) }",
                budget=Budget(max_steps=30),
            )
        assert len(db.extent("nodes")) == before_nodes
        assert db._state_version == before_version


# ---------------------------------------------------------------------------
# Fault injection at exec.traverse
# ---------------------------------------------------------------------------


class TestTraverseFaults:
    def test_fault_aborts_compiled_traverse(self, db):
        with inject(FaultPlan([FaultRule("exec.traverse", at=1)])):
            with pytest.raises(TransientFault):
                db.run("traverse(x in refs over next)", engine="compiled",
                       commit=False)

    def test_fault_leaves_state_unchanged(self, db):
        version = db._state_version
        with inject(FaultPlan([FaultRule("exec.traverse", at=1)])):
            with pytest.raises(TransientFault):
                db.run("traverse(x in refs over next)", engine="compiled")
        assert db._state_version == version

    def test_retry_gates_and_recovers(self, db):
        # read-only => replay_decision proves the retry safe; the
        # second attempt runs with no fault and must agree
        policy = RetryPolicy.seeded(0, base_delay=0.0, jitter=0.0)
        with inject(FaultPlan([FaultRule("exec.traverse", at=1)])):
            res = db.run("traverse(x in refs over next)", retry=policy,
                         commit=False)
        assert oids(res.value) == {"@r1", "@r2", "@r3", "@r4", "@leaf"}

    def test_every_route_hits_the_site(self):
        for src in (
            "traverse(x in refs over next depth <= 2)",
            "traverse(x in refs over next depth <= 20)",
            "traverse(x in refs over next)",
        ):
            chain = graph_db({"a": "b", "b": None})
            plan = FaultPlan()
            with inject(plan):
                chain.run(src, engine="compiled", commit=False)
            assert plan.hits.get("exec.traverse", 0) >= 1, src


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


class TestCostModel:
    def test_bounded_cardinality_scales_with_depth(self, db):
        from repro.optimizer.cost import CostModel

        model = CostModel.from_database(db)
        q1 = db.parse("traverse(x in refs over next depth <= 1)")
        q9 = db.parse("traverse(x in refs over next depth <= 9)")
        assert model.cardinality(q1) <= model.cardinality(q9)
        # and both are capped by the store size
        assert model.cardinality(q9) <= 5.0

    def test_unbounded_cardinality_is_store_bounded(self, db):
        from repro.optimizer.cost import CostModel

        model = CostModel.from_database(db)
        q = db.parse("traverse(x in refs over next)")
        assert model.cardinality(q) == 5.0

    def test_eval_cost_grows_with_closure(self, db):
        from repro.optimizer.cost import CostModel

        model = CostModel.from_database(db)
        shallow = model.eval_cost(
            db.parse("traverse(x in refs over next depth <= 0)")
        )
        deep = model.eval_cost(db.parse("traverse(x in refs over next)"))
        assert deep >= shallow

    def test_fanout_narrows_estimate(self):
        # heavy fan-in: 30 refs all pointing at one hub leaf — the
        # distinct count of `next` (1) should collapse the estimate
        edges = {f"r{i}": "hub" for i in range(30)}
        edges["hub"] = None
        db = graph_db(edges)
        from repro.optimizer.cost import CostModel

        model = CostModel.from_database(db)
        q = db.parse("traverse(x in refs over next depth <= 5)")
        est = model.cardinality(q)
        assert est <= 31.0  # 30 starts + 1 distinct target, not 30 * 6


# ---------------------------------------------------------------------------
# Replica freshness must cover the full reachable set
# ---------------------------------------------------------------------------


class TestReplicaFreshness:
    def open_chain(self, tmp_path):
        db = Database.open(str(tmp_path / "db"), NODE_REF_ODL)
        leaf = db.insert("Node", tag=0)
        db.insert("Ref", tag=1, next=leaf)
        return db

    def test_stale_reachable_class_blocks_routing(self, tmp_path):
        db = self.open_chain(tmp_path)
        rset = db.replicate(1, auto_poll=False)
        # the replica is now fresh; a write to Node (reachable from the
        # traversal but NOT its textual extent) must block routing
        db.insert("Node", tag=2)
        res = db.run("traverse(x in refs over next)")
        assert db._qstats["routed_reads"] == 0
        assert rset.snapshot()["degraded"] == 1
        assert len(res.value.items) == 2  # primary's fresh answer

    def test_fresh_replica_serves_traversal(self, tmp_path):
        db = self.open_chain(tmp_path)
        rset = db.replicate(1, auto_poll=False)
        res = db.run("traverse(x in refs over next)")
        assert db._qstats["routed_reads"] == 1
        assert len(res.value.items) == 2
        assert rset.snapshot()["degraded"] == 0

    def test_unrelated_write_still_routes(self, tmp_path):
        db = self.open_chain(tmp_path)
        db.replicate(1, auto_poll=False)
        db.insert("Other", x=1)  # outside the traversal's closure
        db.run("traverse(x in refs over next)")
        assert db._qstats["routed_reads"] == 1


# ---------------------------------------------------------------------------
# Health / shell surface
# ---------------------------------------------------------------------------


class TestSurface:
    def test_health_reports_closure_indexes(self):
        chain = graph_db({"a": "b", "b": None})
        chain.run("traverse(x in refs over next)", commit=False)
        stanza = chain.health()["closure_indexes"]
        assert stanza["entries"] == 1
        assert stanza["rebuilds"] == 1
        (entry,) = stanza["versions"].values()
        assert entry["nodes"] == 2

    def test_render_includes_closures(self):
        from repro.db.health import render

        chain = graph_db({"a": "b", "b": None})
        chain.run("traverse(x in refs over next)", commit=False)
        assert "closures" in render(chain.health())
