"""Tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.export import prometheus_text
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
)


@pytest.fixture
def reg():
    return Registry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, reg):
        c = reg.counter("steps_total")
        assert c.value == 0.0
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_negative_increment_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.counter("steps_total").inc(-1)

    def test_get_or_create_returns_same_object(self, reg):
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", rule="a") is reg.counter("x", rule="a")

    def test_labels_distinguish_series(self, reg):
        reg.counter("rule_fired_total", rule="Extent").inc()
        reg.counter("rule_fired_total", rule="ND comp").inc(2)
        values = reg.counter_values("rule_fired_total")
        assert values[(("rule", "Extent"),)] == 1
        assert values[(("rule", "ND comp"),)] == 2

    def test_label_order_is_normalised(self, reg):
        a = reg.counter("m", b="2", a="1")
        b = reg.counter("m", a="1", b="2")
        assert a is b


class TestGauge:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("live_objects")
        g.set(10)
        g.inc()
        g.dec(3)
        assert g.value == 8.0

    def test_gauge_and_counter_namespaces_are_separate(self, reg):
        reg.counter("x").inc(5)
        assert reg.gauge("x").value == 0.0


class TestHistogram:
    def test_count_sum_min_max_mean(self, reg):
        h = reg.histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 2.0, 20.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 22.5
        assert h.min == 0.5
        assert h.max == 20.0
        assert h.mean == pytest.approx(7.5)

    def test_buckets_are_cumulative(self, reg):
        h = reg.histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 2.0, 20.0):
            h.observe(v)
        # 0.5 lands in both buckets, 2.0 only in le=10
        assert h.counts == [1, 2]

    def test_empty_histogram_mean_is_zero(self, reg):
        assert reg.histogram("lat").mean == 0.0


class TestRegistry:
    def test_value_lookup_defaults_to_zero(self, reg):
        assert reg.value("never_touched") == 0.0
        reg.counter("touched").inc(3)
        assert reg.value("touched") == 3.0

    def test_reset_clears_everything(self, reg):
        reg.counter("a").inc()
        reg.gauge("b").set(2)
        reg.reset()
        assert len(reg) == 0
        assert reg.value("a") == 0.0

    def test_collect_is_sorted_and_complete(self, reg):
        reg.counter("zz").inc()
        reg.counter("aa").inc()
        reg.histogram("mm").observe(1)
        names = [m.name for m in reg.collect()]
        assert names == ["aa", "mm", "zz"]


class TestPrometheusText:
    def test_counter_and_gauge_lines(self, reg):
        reg.counter("rule_fired_total", rule="Extent").inc(7)
        reg.gauge("live_objects").set(3)
        text = prometheus_text(reg)
        assert "# TYPE rule_fired_total counter" in text
        assert 'rule_fired_total{rule="Extent"} 7.0' in text
        assert "live_objects 3.0" in text

    def test_histogram_exposition(self, reg):
        h = reg.histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 2.0, 20.0):
            h.observe(v)
        text = prometheus_text(reg)
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="10.0"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 22.5" in text
        assert "lat_count 3" in text

    def test_empty_registry_renders_empty(self, reg):
        assert prometheus_text(reg) == ""


class TestNameValidation:
    def test_valid_names_accepted(self, reg):
        reg.counter("wal_fsync_seconds_total")
        reg.gauge("ns:subsystem:value")
        reg.histogram("latency_seconds", rule="ND_comp")

    def test_bad_metric_name_rejected_loudly(self, reg):
        with pytest.raises(ValueError, match="metric name"):
            reg.counter("wal fsync latency")
        with pytest.raises(ValueError):
            reg.gauge("9starts_with_digit")
        with pytest.raises(ValueError):
            reg.histogram("dash-not-allowed")

    def test_bad_label_name_rejected(self, reg):
        with pytest.raises(ValueError, match="label"):
            reg.counter("ok_name", **{"bad-label": "v"})

    def test_colon_invalid_in_label_names(self, reg):
        with pytest.raises(ValueError):
            reg.counter("ok_name", **{"ns:label": "v"})

    def test_validation_only_on_creation_path(self, reg):
        # the get-or-create hit path must stay one dict lookup
        c = reg.counter("hot_path_total")
        assert reg.counter("hot_path_total") is c


class TestHistogramQuantile:
    def test_empty_is_zero(self, reg):
        assert reg.histogram("h").quantile(0.99) == 0.0

    def test_out_of_range_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.histogram("h").quantile(1.5)

    def test_interpolates_within_bucket(self, reg):
        h = reg.histogram("h", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 3.5):
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(1.5, abs=0.5)
        assert h.quantile(1.0) == 3.5  # clamped to the observed max

    def test_never_extrapolates_past_observed_range(self, reg):
        h = reg.histogram("h", bounds=(10.0,))
        h.observe(2.0)
        h.observe(3.0)
        assert h.quantile(0.99) <= 3.0
        assert h.quantile(0.0) >= 2.0 - 10.0  # sanity: finite

    def test_inf_bucket_returns_observed_max(self, reg):
        h = reg.histogram("h", bounds=(1.0,))
        h.observe(100.0)
        assert h.quantile(0.99) == 100.0
