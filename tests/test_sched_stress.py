"""Scheduler stress: 8 workers under an adversarial fault plan.

The CI concurrency job runs this file with ``-p no:cacheprovider`` as
a smoke gate: a batch of mixed readers and writers, with transient
faults and injected latency at the hot sites (including the scheduler's
own ``sched.admit``), must still terminate, record every failure in its
outcome slot, and leave the database in a state a sequential survivor
run would recognise.
"""

import pytest

from repro.db.database import Database
from repro.errors import TransientFault
from repro.lang.values import from_value
from repro.resilience.faults import FaultPlan, FaultRule, inject
from repro.resilience.retry import RetryPolicy

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
class Pet extends Object (extent Pets) {
    attribute string species;
}
"""

WORKERS = 8


def _db() -> Database:
    d = Database.from_odl(ODL)
    for i in range(8):
        d.insert("Person", name=f"p{i}", age=20 + i)
    for i in range(4):
        d.insert("Pet", species=f"s{i}")
    return d


def _batch() -> list[str]:
    sources: list[str] = []
    for i in range(24):
        if i % 4 == 3:
            sources.append(f'new Person(name: "w{i}", age: {i})')
        elif i % 4 == 1:
            sources.append(f"{{ p.name | p <- Persons, p.age > {18 + i % 7} }}")
        else:
            sources.append("size(Persons)" if i % 2 == 0 else "Pets")
    return sources


def _plan() -> FaultPlan:
    plan = FaultPlan(
        (
            FaultRule(site="store.read", every=40, kind="transient"),
            FaultRule(site="store.read", every=7, kind="latency", delay=0.0005),
            FaultRule(site="sched.admit", at=5, kind="transient"),
            FaultRule(site="commit", at=2, kind="transient"),
        ),
        seed=7,
    )
    return plan


class TestStress:
    def test_faulted_batch_terminates_with_errors_recorded(self):
        db = _db()
        sources = _batch()
        with inject(_plan()):
            result = db.run_many(sources, workers=WORKERS)
        assert len(result) == len(sources)
        # every slot resolved one way or the other
        for o in result:
            assert o.ok or o.error is not None
        # the admission fault landed somewhere and was contained
        assert any(
            isinstance(o.error, TransientFault) for o in result.errors
        )
        assert len(result.errors) < len(sources)

    def test_state_is_consistent_after_faults(self):
        db = _db()
        sources = _batch()
        with inject(_plan()):
            result = db.run_many(sources, workers=WORKERS)
        # exactly the successful writers grew the extent
        ok_writers = [o for o in result if o.ok and o.kind == "write"]
        assert len(db.extent("Persons")) == 8 + len(ok_writers)
        # no dangling oids: every extent member resolves in OE
        for extent in ("Persons", "Pets"):
            for oid in db.extent(extent):
                assert oid in db.oe

    def test_retry_masks_transient_faults(self):
        db = _db()
        sources = _batch()
        retry = RetryPolicy.seeded(11, max_attempts=4, base_delay=0.0)
        plan = FaultPlan(
            (FaultRule(site="store.read", every=25, kind="transient"),),
            seed=3,
        )
        with inject(plan):
            result = db.run_many(sources, workers=WORKERS, retry=retry)
        # with retries on, the sparse transient plan is fully absorbed
        assert not result.errors
        seq = _db()
        expected = [from_value(seq.run(s).value) for s in sources]
        got = [from_value(o.value) for o in result]
        assert got == expected

    def test_repeated_faulted_batches_stay_deterministic_in_shape(self):
        # the smoke loop CI runs: several faulted batches back to back
        db = _db()
        for round_no in range(3):
            with inject(_plan()):
                result = db.run_many(_batch(), workers=WORKERS)
            assert len(result) == 24, f"round {round_no}"
            for o in result:
                assert o.ok or o.error is not None
