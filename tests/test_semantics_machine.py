"""Unit tests for the reduction rules of Figures 2/4 (repro.semantics.machine)."""

import pytest

from repro.effects.algebra import EMPTY, Effect, add, read
from repro.errors import StuckError
from repro.lang.ast import IntLit, OidRef, SetLit, StrLit, Var
from repro.lang.parser import parse_program, parse_query
from repro.lang.values import make_set_value
from repro.model.odl_parser import parse_schema
from repro.db.store import ExtentEnv, ObjectEnv, OidSupply, populate
from repro.semantics.machine import Config, Machine
from repro.semantics.strategy import FIRST, LAST, ScriptedStrategy

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    int double_age() { return this.age + this.age; }
}
class Employee extends Person (extent Employees) {
    attribute int salary;
}
"""


@pytest.fixture(scope="module")
def schema():
    return parse_schema(ODL)


@pytest.fixture
def env(schema):
    ee = ExtentEnv.for_schema(schema)
    oe = ObjectEnv()
    supply = OidSupply()
    ee, oe, ada = populate(
        schema, ee, oe, supply, "Person", [("name", StrLit("Ada")), ("age", IntLit(36))]
    )
    machine = Machine(schema, oid_supply=supply)
    return machine, ee, oe, ada


def step_rule(machine, ee, oe, src_or_q, strategy=FIRST):
    q = src_or_q if not isinstance(src_or_q, str) else parse_query(src_or_q)
    return machine.step(Config(ee, oe, q), strategy)


class TestArithmeticRules:
    def test_addition(self, env):
        m, ee, oe, _ = env
        r = step_rule(m, ee, oe, "1 + 2")
        assert r.config.query == IntLit(3)
        assert r.rule == "Addition"
        assert r.effect == EMPTY

    def test_subtraction_and_mul(self, env):
        m, ee, oe, _ = env
        assert step_rule(m, ee, oe, "5 - 2").config.query == IntLit(3)
        assert step_rule(m, ee, oe, "5 * 2").config.query == IntLit(10)

    def test_int_eq(self, env):
        m, ee, oe, _ = env
        assert step_rule(m, ee, oe, "1 = 1").config.query == parse_query("true")
        assert step_rule(m, ee, oe, "1 = 2").config.query == parse_query("false")

    def test_string_eq(self, env):
        m, ee, oe, _ = env
        assert step_rule(m, ee, oe, '"a" = "a"').config.query == parse_query("true")

    def test_comparison(self, env):
        m, ee, oe, _ = env
        assert step_rule(m, ee, oe, "1 < 2").config.query == parse_query("true")

    def test_stuck_on_bad_operands(self, env):
        m, ee, oe, _ = env
        with pytest.raises(StuckError):
            step_rule(m, ee, oe, parse_query("{1} + {2}"))


class TestSetRules:
    def test_union(self, env):
        m, ee, oe, _ = env
        r = step_rule(m, ee, oe, "{1, 2} union {2, 3}")
        assert r.config.query == make_set_value([IntLit(1), IntLit(2), IntLit(3)])

    def test_intersect(self, env):
        m, ee, oe, _ = env
        r = step_rule(m, ee, oe, "{1, 2} intersect {2, 3}")
        assert r.config.query == make_set_value([IntLit(2)])

    def test_except(self, env):
        m, ee, oe, _ = env
        r = step_rule(m, ee, oe, "{1, 2} except {2, 3}")
        assert r.config.query == make_set_value([IntLit(1)])

    def test_size(self, env):
        m, ee, oe, _ = env
        assert step_rule(m, ee, oe, "size({1, 2})").config.query == IntLit(2)

    def test_set_canon_step(self, env):
        m, ee, oe, _ = env
        q = SetLit((IntLit(2), IntLit(1), IntLit(2)))
        r = step_rule(m, ee, oe, q)
        assert r.rule == "Set canon"
        assert r.config.query == make_set_value([IntLit(1), IntLit(2)])


class TestConditionalRules:
    def test_cond1(self, env):
        m, ee, oe, _ = env
        r = step_rule(m, ee, oe, "if true then 1 else 2")
        assert (r.config.query, r.rule) == (IntLit(1), "Cond1")

    def test_cond2(self, env):
        m, ee, oe, _ = env
        r = step_rule(m, ee, oe, "if false then 1 else 2")
        assert (r.config.query, r.rule) == (IntLit(2), "Cond2")

    def test_branch_not_evaluated(self, env):
        # laziness: the untaken branch would be stuck, but is discarded
        m, ee, oe, _ = env
        r = step_rule(m, ee, oe, parse_query("if true then 1 else ({2} + 3)"))
        assert r.config.query == IntLit(1)


class TestExtentAndObjectRules:
    def test_extent_read(self, env, schema):
        m, ee, oe, ada = env
        r = step_rule(m, ee, oe, parse_query("Persons", schema=schema))
        assert r.rule == "Extent"
        assert r.effect == Effect.of(read("Person"))
        assert r.config.query == make_set_value([ada])

    def test_attribute(self, env, schema):
        m, ee, oe, ada = env
        from repro.lang.ast import Field

        r = step_rule(m, ee, oe, Field(ada, "name"))
        assert r.config.query == StrLit("Ada")
        assert r.rule == "Attribute"

    def test_record_access(self, env):
        m, ee, oe, _ = env
        r = step_rule(m, ee, oe, "struct(a: 1, b: 2).b")
        assert (r.config.query, r.rule) == (IntLit(2), "Record")

    def test_object_eq(self, env):
        m, ee, oe, ada = env
        from repro.lang.ast import ObjEq

        r = step_rule(m, ee, oe, ObjEq(ada, ada))
        assert r.config.query == parse_query("true")

    def test_object_eq_dangling_oid_stuck(self, env):
        m, ee, oe, ada = env
        from repro.lang.ast import ObjEq
        from repro.errors import EvalError

        with pytest.raises(EvalError):
            step_rule(m, ee, oe, ObjEq(ada, OidRef("@ghost")))

    def test_upcast(self, env, schema):
        m, ee, oe, ada = env
        from repro.lang.ast import Cast

        r = step_rule(m, ee, oe, Cast("Object", ada))
        assert r.config.query == ada
        assert r.rule == "Upcast"

    def test_failed_cast_stuck(self, env):
        m, ee, oe, ada = env
        from repro.lang.ast import Cast

        with pytest.raises(StuckError, match="upcast"):
            step_rule(m, ee, oe, Cast("Employee", ada))

    def test_new_updates_both_environments(self, env, schema):
        m, ee, oe, _ = env
        q = parse_query('new Person(name: "Bob", age: 1)')
        r = step_rule(m, ee, oe, q)
        assert r.rule == "New"
        assert r.effect == Effect.of(add("Person"))
        oid = r.config.query
        assert isinstance(oid, OidRef)
        assert oid.name in r.config.oe
        assert oid.name in r.config.ee.members("Persons")
        # original environments untouched (persistence)
        assert oid.name not in oe
        assert oid.name not in ee.members("Persons")

    def test_method_invocation(self, env):
        m, ee, oe, ada = env
        from repro.lang.ast import MethodCall

        r = step_rule(m, ee, oe, MethodCall(ada, "double_age", ()))
        assert r.config.query == IntLit(72)
        assert r.rule == "Method"
        assert r.effect == EMPTY


class TestDefinitionRule:
    def test_beta_step(self, schema):
        p = parse_program("define inc(x: int) as x + 1; inc(2)", schema=schema)
        m = Machine(schema, {d.name: d for d in p.definitions})
        ee, oe = ExtentEnv.for_schema(schema), ObjectEnv()
        r = m.step(Config(ee, oe, p.query))
        assert r.rule == "Definition"
        assert r.config.query == parse_query("2 + 1")

    def test_unknown_definition_stuck(self, schema):
        m = Machine(schema)
        ee, oe = ExtentEnv.for_schema(schema), ObjectEnv()
        with pytest.raises(StuckError, match="unknown definition"):
            m.step(Config(ee, oe, parse_query("f(1)")))


class TestComprehensionRules:
    def test_empty_comp(self, env):
        m, ee, oe, _ = env
        r = step_rule(m, ee, oe, "{1 | }")
        assert (r.config.query, r.rule) == (make_set_value([IntLit(1)]), "Empty comp")

    def test_true_comp(self, env):
        m, ee, oe, _ = env
        r = step_rule(m, ee, oe, "{1 | true, false}")
        assert (r.config.query, r.rule) == (parse_query("{1 | false}"), "True comp")

    def test_false_comp(self, env):
        m, ee, oe, _ = env
        r = step_rule(m, ee, oe, "{1 | false, x <- s}")
        assert (r.config.query, r.rule) == (SetLit(()), "False comp")

    def test_triv_comp(self, env):
        m, ee, oe, _ = env
        r = step_rule(m, ee, oe, "{x | x <- {}}")
        assert (r.config.query, r.rule) == (SetLit(()), "Triv comp")

    def test_nd_comp_splits(self, env):
        m, ee, oe, _ = env
        r = step_rule(m, ee, oe, "{x + 1 | x <- {10, 20}}")
        assert r.rule == "ND comp"
        # FIRST picks the least element (10)
        expected = parse_query("({10 + 1 | }) union {x + 1 | x <- {20}}")
        assert r.config.query == expected

    def test_nd_comp_last_strategy(self, env):
        m, ee, oe, _ = env
        r = step_rule(m, ee, oe, "{x + 1 | x <- {10, 20}}", strategy=LAST)
        assert r.config.query == parse_query("({20 + 1 | }) union {x + 1 | x <- {10}}")

    def test_possible_steps_enumerates_choices(self, env):
        m, ee, oe, _ = env
        cfg = Config(ee, oe, parse_query("{x | x <- {1, 2, 3}}"))
        steps = m.possible_steps(cfg)
        assert len(steps) == 3
        assert all(s.rule == "ND comp" for s in steps)
        assert len({s.config.query for s in steps}) == 3

    def test_possible_steps_deterministic_redex(self, env):
        m, ee, oe, _ = env
        steps = m.possible_steps(Config(ee, oe, parse_query("1 + 2")))
        assert len(steps) == 1

    def test_possible_steps_of_value_empty(self, env):
        m, ee, oe, _ = env
        assert m.possible_steps(Config(ee, oe, IntLit(1))) == []

    def test_scripted_strategy_replays(self, env):
        m, ee, oe, _ = env
        cfg = Config(ee, oe, parse_query("{x | x <- {1, 2, 3}}"))
        r = m.step(cfg, ScriptedStrategy([2]))
        assert r.config.query == parse_query("({3 | }) union {x | x <- {1, 2}}")


class TestStuckStates:
    def test_unbound_variable_stuck(self, env):
        m, ee, oe, _ = env
        with pytest.raises(StuckError):
            step_rule(m, ee, oe, parse_query("x"))

    def test_step_on_value_raises(self, env):
        m, ee, oe, _ = env
        with pytest.raises(StuckError, match="already a value"):
            m.step(Config(ee, oe, IntLit(1)))
