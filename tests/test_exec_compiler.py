"""The plan compiler: operator coverage, predicate pushdown, hash joins.

Every answer is cross-checked against the reduction machine — the
compiled engine is an implementation of the same denotation, licensed
by Theorem 4 on read-only queries.
"""

import pytest

from repro.db.database import Database
from repro.exec.compiler import NotCompilable, compile_plan
from repro.methods.ast import AccessMode

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    int double_age() { return this.age + this.age; }
}
class Employee extends Person (extent Employees) {
    attribute int dept;
}
class Dept extends Object (extent Depts) {
    attribute int dno;
    attribute string dname;
}
"""


@pytest.fixture
def db() -> Database:
    d = Database.from_odl(ODL)
    d.insert("Person", name="Ada", age=36)
    d.insert("Person", name="Bob", age=17)
    d.insert("Employee", name="Cyd", age=44, dept=1)
    d.insert("Employee", name="Dan", age=23, dept=2)
    d.insert("Dept", dno=1, dname="R&D")
    d.insert("Dept", dno=2, dname="Ops")
    d.define("define seniors() as { p | p <- Persons, p.age >= 40 };")
    return d


COVERED = [
    "1 + 2 * 3 - 4",
    "10 - 2 * 3",
    '"a" = "b"',
    "1 < 2 and not (3 >= 4)",
    "{1, 2} union {2, 3}",
    "{1, 2, 3} intersect {2, 3, 4}",
    "{1, 2, 3} except {2}",
    "bag(1, 1, 2) union bag(2)",
    "toset(bag(1, 1, 2))",
    "list(1, 2) union list(3)",
    "size(Persons)",
    "size({1, 2} union {2})",
    "sum(bag(1, 2, 3))",
    "struct(a: 1, b: true).b",
    "if size(Persons) > 2 then 1 else 2",
    "{ p.name | p <- Persons }",
    "{ p.age + 1 | p <- Persons, p.age >= 18 }",
    "{ x + y | x <- {1, 2}, y <- {10, 20}, x < y }",
    "{ e.dept | e <- Employees }",
    "{ (Person) e | e <- Employees }",
    "{ p | p <- Persons, exists q in Persons : q.age > p.age }",
    "exists p in Persons : p.age = 36",
    "forall p in Persons : p.age > 0",
    "{ p.double_age() | p <- Persons }",
    "seniors()",
    "size(seniors())",
    "{ s.name | s <- seniors() }",
    "{ struct(e: e.name, d: d.dname) "
    "| e <- Employees, d <- Depts, d.dno = e.dept }",
    "{ struct(a: p.name, b: q.name) "
    "| p <- Persons, q <- Persons, p == q }",
]


class TestAgreementWithMachine:
    @pytest.mark.parametrize("src", COVERED)
    def test_compiled_equals_reduction(self, db, src):
        compiled = db.run(src, engine="compiled", commit=False)
        machine = db.run(src, engine="reduction", commit=False)
        assert compiled.value == machine.value
        # Theorem 5 analogue: the compiled dynamic trace stays within
        # the static bound
        static = db.effect_of(src)
        assert compiled.effect.subeffect_of(static)


class TestRefusals:
    def _compile(self, db, src):
        return compile_plan(
            db.schema,
            db._definitions,
            db.parse(src),
            method_mode=db.method_mode,
            method_fuel=1000,
        )

    def test_new_is_not_compilable(self, db):
        with pytest.raises(NotCompilable, match="new"):
            self._compile(db, 'new Person(name: "x", age: 0)')

    def test_unknown_definition_refused(self, db):
        with pytest.raises(NotCompilable):
            self._compile(db, "missing_def()")

    def test_effectful_method_mode_refuses_calls(self):
        odl = """
        class C extends Object (extent Cs) {
            attribute int n;
            int get() { return this.n; }
        }
        """
        d = Database.from_odl(odl, method_mode=AccessMode.EFFECTFUL)
        with pytest.raises(NotCompilable, match="method"):
            compile_plan(
                d.schema,
                d._definitions,
                d.parse("{ c.get() | c <- Cs }"),
                method_mode=d.method_mode,
                method_fuel=1000,
            )


class TestPlanShape:
    def _notes(self, db, src):
        return db.plan_decision(src).plan.notes

    def test_pushdown_noted(self, db):
        # compile the raw query directly: through plan_decision the
        # optimizer has already hoisted the predicate, so the compiler
        # has nothing left to push
        plan = compile_plan(
            db.schema,
            db._definitions,
            db.parse(
                "{ struct(a: p.name, b: x) "
                "| p <- Persons, x <- {1, 2}, p.age < 40 }"
            ),
            method_mode=db.method_mode,
            method_fuel=1000,
        )
        assert any("pushdown" in n for n in plan.notes)

    def test_equi_join_uses_attribute_index(self, db):
        notes = self._notes(
            db,
            "{ struct(e: e.name, d: d.dname) "
            "| e <- Employees, d <- Depts, d.dno = e.dept }",
        )
        assert any("via index Depts.dno" in n for n in notes)

    def test_oid_join_noted(self, db):
        notes = self._notes(
            db,
            "{ p.name | p <- Persons, q <- Persons, p == q }",
        )
        assert any("hash join" in n for n in notes)

    def test_correlated_generator_gets_no_join(self, db):
        # q's source depends on p: a hash table cannot be reused
        notes = self._notes(
            db,
            "{ q | p <- Persons, q <- { p.age }, q = p.age }",
        )
        assert not any("hash join" in n for n in notes)

    def test_duplicate_vars_get_no_join(self, db):
        notes = self._notes(
            db,
            "{ x | x <- {1, 2}, x <- {2, 3}, x = 2 }",
        )
        assert not any("hash join" in n for n in notes)

    def test_join_pairs_scale_subquadratically(self, db):
        # the join workload touches each row O(1) times: ops should be
        # far below |Employees| × |Depts| once both sides grow
        for i in range(40):
            db.insert("Employee", name=f"e{i}", age=20 + i % 30, dept=i % 7)
            db.insert("Dept", dno=100 + i, dname=f"d{i}")
        src = (
            "{ struct(e: e.name, d: d.dname) "
            "| e <- Employees, d <- Depts, d.dno = e.dept }"
        )
        compiled = db.run(src, engine="compiled", commit=False)
        n_emp = len(db.extent("Employees"))
        n_dep = len(db.extent("Depts"))
        assert compiled.steps < n_emp * n_dep / 2


class TestJoinSemantics:
    def test_empty_probe_side_never_builds(self, db):
        # no Employee has dept 99; the join finds nothing
        r = db.run(
            "{ d.dname | e <- Employees, d <- Depts, d.dno = e.dept, "
            "e.dept = 99 }",
            engine="compiled",
            commit=False,
        )
        assert r.python() == frozenset()

    def test_join_respects_filters_before_and_after(self, db):
        src = (
            "{ struct(e: e.name, d: d.dname) | e <- Employees, "
            "e.age > 30, d <- Depts, d.dno = e.dept, d.dname = \"R&D\" }"
        )
        compiled = db.run(src, engine="compiled", commit=False)
        machine = db.run(src, engine="reduction", commit=False)
        assert compiled.value == machine.value
        assert compiled.python() == frozenset(
            {(("d", "R&D"), ("e", "Cyd"))}
        ) or compiled.python() == machine.python()

    def test_dangling_oid_key_is_stuck(self, db):
        from repro.errors import EvalError
        from repro.exec.runtime import ExecContext

        ctx = ExecContext(
            db.ee,
            db.oe,
            db.schema,
            db._definitions,
            method_mode=db.method_mode,
            method_fuel=100,
            supply=db.supply,
            indexes=db._indexes,
            state_version=db._state_version,
        )
        from repro.exec.compiler import _check_key
        from repro.lang.ast import OidRef

        with pytest.raises(EvalError):
            _check_key(ctx, OidRef("@Person_999"), True)


class TestScopeDiscipline:
    def test_sibling_comprehensions_do_not_leak(self, db):
        r = db.run(
            "{ x | x <- {1} } union { x | x <- {2} }",
            engine="compiled",
        )
        assert r.python() == frozenset({1, 2})

    def test_shadowing_restores_outer_binding(self, db):
        src = "{ struct(a: x, b: size({ x | x <- {10, 20} })) | x <- {1} }"
        compiled = db.run(src, engine="compiled", commit=False)
        machine = db.run(src, engine="reduction", commit=False)
        assert compiled.value == machine.value
        assert compiled.python() == ({"a": 1, "b": 2},)

    def test_definition_params_fresh_per_call(self, db):
        db.define("define plus(x: int, y: int) as x + y;")
        r = db.run("plus(1, 2) + plus(10, 20)", engine="compiled")
        assert r.python() == 33
