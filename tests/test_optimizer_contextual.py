"""Tests for contextual-equivalence refutation (§7 future work)."""

import pytest

from repro.db.database import Database
from repro.optimizer.contextual import contexts, contextually_distinct

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
"""


@pytest.fixture
def db():
    d = Database.from_odl(ODL)
    d.insert("Person", name="a", age=1)
    d.insert("Person", name="b", age=2)
    return d


class TestContextGeneration:
    def test_identity_always_present(self, db):
        from repro.model.types import INT

        descs = [d for d, _ in contexts(INT, db.schema, depth=1)]
        assert "•" in descs

    def test_set_contexts_include_iteration(self, db):
        from repro.model.types import INT, SetType

        descs = [d for d, _ in contexts(SetType(INT), db.schema, depth=1)]
        assert any("x <- •" in d for d in descs)
        assert "size(•)" in descs

    def test_class_contexts_project_attributes(self, db):
        from repro.model.types import ClassType

        descs = [d for d, _ in contexts(ClassType("Person"), db.schema, depth=1)]
        assert "•.name" in descs
        assert "•.age" in descs

    def test_depth_two_composes(self, db):
        from repro.model.types import INT, SetType

        descs = [d for d, _ in contexts(SetType(INT), db.schema, depth=2)]
        assert any("∘" in d for d in descs)


class TestEquivalences:
    """Pairs that really are equivalent: no context distinguishes them."""

    @pytest.mark.parametrize(
        "a,b",
        [
            ("1 + 1", "2"),
            ("{1, 2}", "{2} union {1}"),
            ("{p | p <- Persons}", "Persons"),
            ("Persons union Persons", "Persons"),
            ("{p.age | p <- Persons, true}", "{p.age | p <- Persons}"),
            ("if 1 = 1 then Persons else {}", "Persons"),
        ],
    )
    def test_no_distinction_found(self, db, a, b):
        assert contextually_distinct(db, db.parse(a), db.parse(b)) is None


class TestDistinctions:
    """Pairs a context separates — each returned context is a
    certificate, re-checked here by construction."""

    def test_different_values(self, db):
        d = contextually_distinct(db, db.parse("1"), db.parse("2"))
        assert d is not None  # the identity context suffices

    def test_same_size_different_elements(self, db):
        d = contextually_distinct(db, db.parse("{1}"), db.parse("{2}"))
        assert d is not None

    def test_effects_distinguish(self, db):
        # same answer, different final database: creation is observable
        a = db.parse("size(Persons)")
        b = db.parse(
            'size(Persons intersect '
            '{ struct(x: p, y: new Person(name: "n", age: 0)).x | p <- Persons })'
        )
        d = contextually_distinct(db, a, b)
        assert d is not None

    def test_divergence_distinguishes(self):
        db2 = Database.from_odl(
            """
            class P extends Object (extent Ps) {
                attribute int n;
                int spin() { while (true) { } }
            }
            """,
            method_fuel=200,
        )
        db2.insert("P", n=1)
        a = db2.parse("{ p.n | p <- Ps }")
        b = db2.parse("{ p.spin() | p <- Ps }")
        d = contextually_distinct(db2, a, b, max_steps=500)
        assert d is not None
        assert "divergence" in d.reason

    def test_incompatible_types_reported(self, db):
        d = contextually_distinct(db, db.parse("1"), db.parse("true"))
        assert d is not None
        assert "incompatible" in d.reason


class TestOptimizerIntegration:
    """Every pipeline rewrite survives the contextual search."""

    @pytest.mark.parametrize(
        "src",
        [
            "{p.name | p <- Persons, 1 = 1}",
            "struct(a: size(Persons), b: 1 + 1).a",
            "{x | x <- {y | y <- {1, 2}}, x < 2}",
        ],
    )
    def test_rewrites_contextually_safe(self, db, src):
        from repro.optimizer.planner import optimize

        q = db.parse(src)
        res = optimize(db, q)
        assert res.changed
        assert contextually_distinct(db, q, res.query) is None
