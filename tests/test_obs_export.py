"""Tests for the exporters (repro.obs.export): JSONL safety, escaping."""

import io
import json
import threading

import pytest

from repro import obs
from repro.obs.export import (
    _prom_escape,
    export_jsonl,
    prometheus_text,
    read_jsonl,
    span_dicts,
)
from repro.obs.metrics import Registry
from repro.obs.spans import Tracer


@pytest.fixture
def clean_obs():
    obs.enable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestJsonlConcurrency:
    def test_concurrent_exports_never_tear_lines(self, clean_obs):
        # populate the shared stores with enough records to make a
        # torn interleaving overwhelmingly likely without the lock
        reg = Registry()
        for i in range(50):
            reg.counter(f"c{i}", worker="w").inc(i)
        tracer = Tracer()
        for i in range(20):
            sp = tracer.begin(f"span{i}", {"i": i})
            tracer.finish(sp)
        buf = io.StringIO()
        errors: list[BaseException] = []

        def export_many():
            try:
                for _ in range(20):
                    export_jsonl(buf, registry=reg, tracer=tracer)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=export_many) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        lines = [l for l in buf.getvalue().splitlines() if l]
        assert lines
        for line in lines:
            json.loads(line)  # a torn line would fail to parse

    def test_file_export_round_trips(self, clean_obs, tmp_path):
        obs.REGISTRY.counter("exported_total").inc(3)
        path = str(tmp_path / "out.jsonl")
        n = export_jsonl(path)
        records = read_jsonl(path)
        assert len(records) == n
        assert any(
            r["kind"] == "counter" and r["name"] == "exported_total"
            for r in records
        )


class TestSpanWallAnnotation:
    def test_span_dict_carries_wall_clock(self, clean_obs):
        with obs.span("outer"):
            pass
        rec = next(span_dicts(obs.TRACER.finished[-1]))
        assert rec["wall"] > 0

    def test_duration_immune_to_wall_clock_regression(self, monkeypatch):
        # wall clock jumps BACKWARDS mid-span (NTP step); the span's
        # duration comes from time.monotonic and must stay >= 0
        import repro.obs.spans as spans_mod

        tracer = Tracer()
        walls = iter([1_000_000.0, 999_000.0])  # time.time going backwards
        monkeypatch.setattr(
            spans_mod.time, "time", lambda: next(walls, 0.0)
        )
        sp = tracer.begin("regression", {})
        tracer.finish(sp)
        assert sp.duration >= 0.0
        assert sp.end >= sp.start
        assert sp.wall == 1_000_000.0  # annotation only, never subtracted


class TestPrometheusEscaping:
    def test_escape_backslash_quote_newline(self):
        assert _prom_escape('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_label_values_escaped_in_exposition(self):
        reg = Registry()
        reg.counter("queries_total", query='{ p | p <- "Ps" }\n').inc()
        text = prometheus_text(reg)
        line = next(
            l for l in text.splitlines()
            if "queries_total" in l and not l.startswith("#")
        )
        assert '\\"Ps\\"' in line
        assert "\\n" in line
        assert "\n" not in line  # the newline never reaches the output raw
