"""Metatheory with §5 effectful methods in the loop.

The paper proves soundness for the read-only core and asserts (for the
extended version) that soundness carries over to methods that read,
add to and update the database.  These tests sample that claim: every
theorem checker runs over a schema whose methods genuinely mutate
EE/OE through the (Method) rule.
"""

import pytest

from repro.db.database import Database
from repro.metatheory.theorems import (
    check_determinism,
    check_progress,
    check_subject_reduction,
    check_type_soundness,
)
from repro.methods.ast import AccessMode

ODL = """
class Node extends Object (extent Nodes) {
    attribute int val;
    attribute bool marked;
    int read_val() { return this.val; }
    int mark() effect U(Node) {
        this.marked := true;
        return this.val;
    }
    Node sprout(int v) effect A(Node) {
        return new Node(val: v, marked: false);
    }
    int population() effect R(Node) {
        var c : int := 0;
        for (n in extent(Nodes)) { c := c + 1; }
        return c;
    }
    int sprout_and_count() effect A(Node), R(Node) {
        var child : Node := this.sprout(this.val + 1);
        return this.population();
    }
}
"""

QUERIES = [
    "{ n.read_val() | n <- Nodes }",
    "{ n.mark() | n <- Nodes }",
    "{ n.sprout(9).val | n <- Nodes }",
    "{ n.population() | n <- Nodes }",
    "{ n.sprout_and_count() | n <- Nodes }",
    "size({ n | n <- Nodes, n.mark() > 0 })",
    "sum({ n.population() | n <- Nodes })",
]


@pytest.fixture
def db():
    d = Database.from_odl(ODL, method_mode=AccessMode.EFFECTFUL)
    d.insert("Node", val=1, marked=False)
    d.insert("Node", val=2, marked=False)
    return d


class TestExtendedSoundness:
    @pytest.mark.parametrize("src", QUERIES)
    def test_subject_reduction(self, db, src):
        report = check_subject_reduction(db.machine, db.ee, db.oe, db.parse(src))
        assert report, report.detail

    @pytest.mark.parametrize("src", QUERIES)
    def test_progress(self, db, src):
        report = check_progress(db.machine, db.ee, db.oe, db.parse(src))
        assert report, report.detail

    @pytest.mark.parametrize("src", QUERIES)
    def test_type_soundness(self, db, src):
        report = check_type_soundness(db.machine, db.ee, db.oe, db.parse(src))
        assert report, report.detail


class TestExtendedEffects:
    def test_method_effects_surface_in_static_analysis(self, db):
        eff = db.effect_of("{ n.sprout_and_count() | n <- Nodes }")
        assert "Node" in eff.adds()
        assert "Node" in eff.reads()

    def test_dynamic_trace_within_static(self, db):
        from repro.effects.checker import EffectChecker

        for src in QUERIES:
            q = db.parse(src)
            _, static = EffectChecker().check(db.type_context(), q)
            trace = db.run(q, commit=False).effect
            assert trace.subeffect_of(static), src

    def test_update_iteration_rejected_by_determinism(self, db):
        # U(Node) in the body self-interferes under nonint
        report = check_determinism(
            db.machine, db.ee, db.oe, db.parse("{ n.mark() | n <- Nodes }")
        )
        assert report  # vacuous: ⊢′ rejects — and that is the point
        assert "vacuous" in report.detail

    def test_read_only_method_iteration_accepted_and_agrees(self, db):
        q = db.parse("{ n.read_val() | n <- Nodes }")
        assert db.is_deterministic(q)
        ex = db.explore(q)
        assert ex.deterministic()

    def test_adding_method_iteration_deterministic_up_to_bijection(self, db):
        q = db.parse("{ n.sprout(7).val | n <- Nodes }")
        assert db.is_deterministic(q)  # add-only body
        ex = db.explore(q)
        assert ex.deterministic(up_to_bijection=True)

    def test_interfering_method_body_dynamically_nondeterministic(self, db):
        # read+add through a single method call per element; multiplying
        # by the element's own value makes the iteration order visible
        # (plain sprout_and_count is symmetric between the two nodes)
        q = db.parse("{ n.val * n.sprout_and_count() | n <- Nodes }")
        assert not db.is_deterministic(q)
        ex = db.explore(q)
        assert len(ex.distinct_values()) > 1


class TestEngineAgreementUnderEffects:
    @pytest.mark.parametrize("src", QUERIES)
    def test_bigstep_matches_machine(self, db, src):
        from repro.semantics.bigstep import evaluate_bigstep
        from repro.semantics.evaluator import evaluate

        def fresh():
            d = Database.from_odl(ODL, method_mode=AccessMode.EFFECTFUL)
            d.insert("Node", val=1, marked=False)
            d.insert("Node", val=2, marked=False)
            return d

        d1, d2 = fresh(), fresh()
        small = evaluate(d1.machine, d1.ee, d1.oe, d1.parse(src))
        big = evaluate_bigstep(d2.machine, d2.ee, d2.oe, d2.parse(src))
        assert big.value == small.value
        assert big.oe == small.oe
        assert big.effect == small.effect
