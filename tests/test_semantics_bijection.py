"""Unit tests for the oid-bijection ∼ (repro.semantics.bijection)."""

import pytest

from repro.lang.ast import IntLit, OidRef, RecordLit, StrLit
from repro.lang.values import make_set_value
from repro.db.store import ExtentEnv, ObjectEnv, ObjectRecord
from repro.semantics.bijection import equivalent, find_bijection, values_equivalent


def store(*objs, extents=None):
    """objs: (oid, cname, attrs-dict); extents: {name: (cname, {oids})}."""
    oe = ObjectEnv(
        {
            oid: ObjectRecord(cname, tuple(sorted(attrs.items())))
            for oid, cname, attrs in objs
        }
    )
    ee = ExtentEnv(
        {e: (c, frozenset(m)) for e, (c, m) in (extents or {}).items()}
    )
    return ee, oe


class TestIdentity:
    def test_identical_states(self):
        ee, oe = store(
            ("@a", "P", {"name": StrLit("x")}),
            extents={"Ps": ("P", {"@a"})},
        )
        assert equivalent(OidRef("@a"), ee, oe, OidRef("@a"), ee, oe)

    def test_literal_values(self):
        ee, oe = store()
        assert equivalent(IntLit(1), ee, oe, IntLit(1), ee, oe)
        assert not equivalent(IntLit(1), ee, oe, IntLit(2), ee, oe)


class TestRenaming:
    def test_simple_rename(self):
        ee1, oe1 = store(
            ("@a", "P", {"n": IntLit(1)}), extents={"Ps": ("P", {"@a"})}
        )
        ee2, oe2 = store(
            ("@b", "P", {"n": IntLit(1)}), extents={"Ps": ("P", {"@b"})}
        )
        bij = find_bijection(OidRef("@a"), ee1, oe1, OidRef("@b"), ee2, oe2)
        assert bij == {"@a": "@b"}

    def test_rename_through_attributes(self):
        ee1, oe1 = store(
            ("@a", "P", {"pal": OidRef("@b")}),
            ("@b", "P", {"pal": OidRef("@a")}),
            extents={"Ps": ("P", {"@a", "@b"})},
        )
        ee2, oe2 = store(
            ("@x", "P", {"pal": OidRef("@y")}),
            ("@y", "P", {"pal": OidRef("@x")}),
            extents={"Ps": ("P", {"@x", "@y"})},
        )
        assert equivalent(OidRef("@a"), ee1, oe1, OidRef("@x"), ee2, oe2)

    def test_class_mismatch(self):
        ee1, oe1 = store(("@a", "P", {}), extents={"Ps": ("P", {"@a"})})
        ee2, oe2 = store(("@a", "Q", {}), extents={"Ps": ("P", set())})
        assert not equivalent(OidRef("@a"), ee1, oe1, OidRef("@a"), ee2, oe2)

    def test_attr_value_mismatch(self):
        ee1, oe1 = store(("@a", "P", {"n": IntLit(1)}), extents={"Ps": ("P", {"@a"})})
        ee2, oe2 = store(("@b", "P", {"n": IntLit(2)}), extents={"Ps": ("P", {"@b"})})
        assert not equivalent(OidRef("@a"), ee1, oe1, OidRef("@b"), ee2, oe2)

    def test_extent_membership_must_match(self):
        ee1, oe1 = store(("@a", "P", {}), extents={"Ps": ("P", {"@a"})})
        ee2, oe2 = store(("@b", "P", {}), extents={"Ps": ("P", set())})
        assert not equivalent(OidRef("@a"), ee1, oe1, OidRef("@b"), ee2, oe2)

    def test_object_count_must_match(self):
        ee1, oe1 = store(("@a", "P", {}), extents={"Ps": ("P", {"@a"})})
        ee2, oe2 = store(
            ("@a", "P", {}),
            ("@b", "P", {}),
            extents={"Ps": ("P", {"@a", "@b"})},
        )
        assert not equivalent(OidRef("@a"), ee1, oe1, OidRef("@a"), ee2, oe2)


class TestStructuredValues:
    def test_sets_of_oids_reordered(self):
        ee1, oe1 = store(
            ("@a", "P", {"n": IntLit(1)}),
            ("@b", "P", {"n": IntLit(2)}),
            extents={"Ps": ("P", {"@a", "@b"})},
        )
        ee2, oe2 = store(
            ("@z", "P", {"n": IntLit(2)}),
            ("@y", "P", {"n": IntLit(1)}),
            extents={"Ps": ("P", {"@y", "@z"})},
        )
        v1 = make_set_value([OidRef("@a"), OidRef("@b")])
        v2 = make_set_value([OidRef("@y"), OidRef("@z")])
        bij = find_bijection(v1, ee1, oe1, v2, ee2, oe2)
        assert bij == {"@a": "@y", "@b": "@z"}

    def test_record_values(self):
        ee1, oe1 = store(("@a", "P", {}), extents={"Ps": ("P", {"@a"})})
        ee2, oe2 = store(("@b", "P", {}), extents={"Ps": ("P", {"@b"})})
        v1 = RecordLit((("who", OidRef("@a")), ("n", IntLit(3))))
        v2 = RecordLit((("who", OidRef("@b")), ("n", IntLit(3))))
        assert equivalent(v1, ee1, oe1, v2, ee2, oe2)

    def test_inconsistent_sharing_rejected(self):
        # v1 mentions the same oid twice; v2 mentions two distinct ones
        ee1, oe1 = store(
            ("@a", "P", {}), ("@c", "P", {}),
            extents={"Ps": ("P", {"@a", "@c"})},
        )
        ee2, oe2 = store(
            ("@x", "P", {}), ("@y", "P", {}),
            extents={"Ps": ("P", {"@x", "@y"})},
        )
        v1 = RecordLit((("l", OidRef("@a")), ("r", OidRef("@a"))))
        v2 = RecordLit((("l", OidRef("@x")), ("r", OidRef("@y"))))
        assert not equivalent(v1, ee1, oe1, v2, ee2, oe2)


class TestEquivalenceLaws:
    def _fresh(self, n1, n2):
        ee, oe = store(
            (n1, "P", {"pal": OidRef(n2)}),
            (n2, "P", {"pal": OidRef(n1)}),
            extents={"Ps": ("P", {n1, n2})},
        )
        return OidRef(n1), ee, oe

    def test_reflexive(self):
        v, ee, oe = self._fresh("@a", "@b")
        assert equivalent(v, ee, oe, v, ee, oe)

    def test_symmetric(self):
        v1, ee1, oe1 = self._fresh("@a", "@b")
        v2, ee2, oe2 = self._fresh("@x", "@y")
        assert equivalent(v1, ee1, oe1, v2, ee2, oe2)
        assert equivalent(v2, ee2, oe2, v1, ee1, oe1)

    def test_transitive(self):
        v1, ee1, oe1 = self._fresh("@a", "@b")
        v2, ee2, oe2 = self._fresh("@x", "@y")
        v3, ee3, oe3 = self._fresh("@m", "@n")
        assert equivalent(v1, ee1, oe1, v2, ee2, oe2)
        assert equivalent(v2, ee2, oe2, v3, ee3, oe3)
        assert equivalent(v1, ee1, oe1, v3, ee3, oe3)


class TestValuesOnly:
    def test_values_equivalent_ignores_unreachable(self):
        _, oe1 = store(("@a", "P", {}), ("@junk", "Q", {}))
        _, oe2 = store(("@b", "P", {}))
        assert values_equivalent(OidRef("@a"), oe1, OidRef("@b"), oe2)
