"""Unit tests for →→ driving (repro.semantics.evaluator)."""

import pytest

from repro.effects.algebra import EMPTY, Effect, add, read
from repro.errors import FuelExhausted, StuckError
from repro.lang.ast import IntLit, StrLit
from repro.lang.parser import parse_program, parse_query
from repro.lang.values import make_set_value
from repro.model.odl_parser import parse_schema
from repro.db.store import ExtentEnv, ObjectEnv, OidSupply, populate
from repro.semantics.evaluator import evaluate, trace_steps
from repro.semantics.machine import Config, Machine
from repro.semantics.strategy import FIRST, LAST, RandomStrategy

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    int forever() { while (true) { } }
}
"""


@pytest.fixture(scope="module")
def schema():
    return parse_schema(ODL)


@pytest.fixture
def env(schema):
    ee = ExtentEnv.for_schema(schema)
    oe = ObjectEnv()
    supply = OidSupply()
    for name, age in (("Ada", 36), ("Bob", 17), ("Cyd", 60)):
        ee, oe, _ = populate(
            schema, ee, oe, supply, "Person",
            [("name", StrLit(name)), ("age", IntLit(age))],
        )
    return Machine(schema, oid_supply=supply, method_fuel=200), ee, oe


def run(env, src, **kw):
    m, ee, oe = env
    return evaluate(m, ee, oe, parse_query(src, extents={"Persons"}), **kw)


class TestBasicEvaluation:
    def test_arithmetic(self, env):
        assert run(env, "(1 + 2) * (3 + 4)").value == IntLit(21)

    def test_value_is_zero_steps(self, env):
        r = run(env, "42")
        assert r.steps == 0
        assert r.effect == EMPTY

    def test_comprehension(self, env):
        r = run(env, "{p.age + 1 | p <- Persons, p.age < 40}")
        assert r.value == make_set_value([IntLit(37), IntLit(18)])

    def test_select_sugar(self, env):
        r = run(env, "select p.name from p in Persons where p.age >= 36")
        assert r.python() == frozenset({"Ada", "Cyd"})

    def test_quantifiers(self, env):
        assert run(env, "exists p in Persons : p.age > 50").python() is True
        assert run(env, "forall p in Persons : p.age > 50").python() is False
        assert run(env, "forall p in Persons : p.age > 5").python() is True

    def test_nested_comprehension(self, env):
        r = run(env, "{ size({q | q <- Persons, q.age < p.age}) | p <- Persons }")
        # ranks: Bob(17)→0, Ada(36)→1, Cyd(60)→2
        assert r.python() == frozenset({0, 1, 2})

    def test_strategy_agreement_for_pure_queries(self, env):
        a = run(env, "{p.name | p <- Persons}", strategy=FIRST)
        b = run(env, "{p.name | p <- Persons}", strategy=LAST)
        c = run(env, "{p.name | p <- Persons}", strategy=RandomStrategy(7))
        assert a.value == b.value == c.value


class TestEffectTracing:
    def test_read_trace(self, env):
        assert run(env, "size(Persons)").effect == Effect.of(read("Person"))

    def test_add_trace(self, env):
        r = run(env, 'new Person(name: "Zed", age: 0)')
        assert r.effect == Effect.of(add("Person"))

    def test_pure_trace(self, env):
        assert run(env, "1 + 2 + 3").effect == EMPTY

    def test_combined_trace(self, env):
        r = run(env, '{ new Person(name: p.name, age: 0) | p <- Persons }')
        assert r.effect == Effect.of(read("Person"), add("Person"))

    def test_false_branch_effects_not_traced(self, env):
        # dynamic trace is more precise than the static bound
        r = run(env, "if 1 = 2 then size(Persons) else 0")
        assert r.effect == EMPTY

    def test_rules_recorded(self, env):
        r = run(env, "1 + 2", keep_rules=True)
        assert r.rules == ("Addition",)


class TestEnvironmentThreading:
    def test_new_persists_in_result_env(self, env):
        m, ee, oe = env
        r = run(env, 'new Person(name: "Zed", age: 0)')
        assert len(r.ee.members("Persons")) == len(ee.members("Persons")) + 1
        assert len(r.oe) == len(oe) + 1

    def test_multiple_news(self, env):
        r = run(env, '{ new Person(name: p.name, age: 99) | p <- Persons }')
        assert len(r.ee.members("Persons")) == 6

    def test_input_environments_untouched(self, env):
        m, ee, oe = env
        before = len(ee.members("Persons"))
        run(env, 'new Person(name: "Zed", age: 0)')
        assert len(ee.members("Persons")) == before


class TestDivergenceAndFuel:
    def test_step_budget(self, env):
        with pytest.raises(FuelExhausted):
            run(env, "{p.age | p <- Persons}", max_steps=2)

    def test_fuel_exhausted_reports_steps(self, env):
        try:
            run(env, "{p.age | p <- Persons}", max_steps=3)
        except FuelExhausted as exc:
            assert exc.steps == 3
        else:
            pytest.fail("expected FuelExhausted")

    def test_diverging_method(self, env):
        with pytest.raises(FuelExhausted):
            run(env, "{ p.forever() | p <- Persons }")

    def test_trace_steps_yields_each(self, env):
        m, ee, oe = env
        cfg = Config(ee, oe, parse_query("1 + (2 + 3)"))
        rules = [s.rule for s in trace_steps(m, cfg)]
        assert rules == ["Addition", "Addition"]
