"""Unit tests for the EE/OE environments and oid supply (repro.db.store)."""

import pytest

from repro.errors import EvalError
from repro.lang.ast import IntLit, OidRef, StrLit, Var
from repro.model.odl_parser import parse_schema
from repro.db.store import (
    ExtentEnv,
    ObjectEnv,
    ObjectRecord,
    OidSupply,
    populate,
)

ODL = """
class P extends Object (extent Ps) { attribute int x; }
class Q extends P (extent Qs) { attribute int y; }
"""


@pytest.fixture(scope="module")
def schema():
    return parse_schema(ODL)


class TestObjectRecord:
    def test_attr_lookup(self):
        rec = ObjectRecord("P", (("x", IntLit(1)),))
        assert rec.attr("x") == IntLit(1)

    def test_missing_attr(self):
        rec = ObjectRecord("P", (("x", IntLit(1)),))
        with pytest.raises(EvalError, match="no attribute"):
            rec.attr("y")

    def test_non_value_attr_rejected(self):
        with pytest.raises(EvalError, match="non-value"):
            ObjectRecord("P", (("x", Var("q")),))

    def test_with_attr_replaces(self):
        rec = ObjectRecord("P", (("x", IntLit(1)), ("y", IntLit(2))))
        rec2 = rec.with_attr("x", IntLit(9))
        assert rec2.attr("x") == IntLit(9)
        assert rec2.attr("y") == IntLit(2)
        assert rec.attr("x") == IntLit(1)  # original immutable

    def test_with_attr_unknown(self):
        rec = ObjectRecord("P", (("x", IntLit(1)),))
        with pytest.raises(EvalError):
            rec.with_attr("zz", IntLit(0))

    def test_str(self):
        assert "P" in str(ObjectRecord("P", (("x", IntLit(1)),)))


class TestObjectEnv:
    def test_empty(self):
        oe = ObjectEnv()
        assert len(oe) == 0
        assert "@a" not in oe

    def test_with_object_is_persistent(self):
        oe = ObjectEnv()
        oe2 = oe.with_object("@a", ObjectRecord("P", ()))
        assert "@a" in oe2
        assert "@a" not in oe

    def test_dangling_lookup(self):
        with pytest.raises(EvalError, match="dangling"):
            ObjectEnv().get("@ghost")

    def test_equality_and_hash(self):
        a = ObjectEnv().with_object("@a", ObjectRecord("P", ()))
        b = ObjectEnv().with_object("@a", ObjectRecord("P", ()))
        assert a == b
        assert hash(a) == hash(b)

    def test_class_of(self):
        oe = ObjectEnv().with_object("@a", ObjectRecord("Q", ()))
        assert oe.class_of("@a") == "Q"

    def test_items_sorted(self):
        oe = (
            ObjectEnv()
            .with_object("@b", ObjectRecord("P", ()))
            .with_object("@a", ObjectRecord("P", ()))
        )
        assert [k for k, _ in oe.items()] == ["@a", "@b"]


class TestExtentEnv:
    def test_for_schema(self, schema):
        ee = ExtentEnv.for_schema(schema)
        assert ee.names() == frozenset({"Ps", "Qs"})
        assert ee.members("Ps") == frozenset()
        assert ee.class_of("Qs") == "Q"

    def test_with_member_persistent(self, schema):
        ee = ExtentEnv.for_schema(schema)
        ee2 = ee.with_member("Ps", "@a")
        assert ee2.members("Ps") == frozenset({"@a"})
        assert ee.members("Ps") == frozenset()

    def test_unknown_extent(self, schema):
        with pytest.raises(EvalError, match="unknown extent"):
            ExtentEnv.for_schema(schema).members("Zs")

    def test_equality_hash(self, schema):
        a = ExtentEnv.for_schema(schema).with_member("Ps", "@a")
        b = ExtentEnv.for_schema(schema).with_member("Ps", "@a")
        assert a == b and hash(a) == hash(b)


class TestOidSupply:
    def test_fresh_oids_distinct(self):
        supply = OidSupply()
        oe = ObjectEnv()
        a = supply.fresh("P", oe)
        b = supply.fresh("P", oe)
        assert a != b

    def test_freshness_respects_oe(self):
        supply = OidSupply()
        oe = ObjectEnv().with_object("@P_0", ObjectRecord("P", ()))
        assert supply.fresh("P", oe) != "@P_0"

    def test_name_mentions_class(self):
        assert "Q" in OidSupply().fresh("Q", ObjectEnv())


class TestPopulate:
    def test_joins_class_extent_only(self, schema):
        """populate mirrors (New): the object joins its *own* class's
        extent (the paper attaches one extent per class)."""
        ee, oe, supply = ExtentEnv.for_schema(schema), ObjectEnv(), OidSupply()
        ee, oe, q = populate(
            schema, ee, oe, supply, "Q", [("x", IntLit(1)), ("y", IntLit(2))]
        )
        assert q.name in ee.members("Qs")
        assert q.name not in ee.members("Ps")
        assert oe.get(q.name).cname == "Q"


class TestCopyOnWriteDiscipline:
    """The _adopt fast path must not change equality/hash semantics."""

    def test_with_object_shares_nothing_mutable(self):
        base = ObjectEnv()
        a = base.with_object("@P_0", ObjectRecord("P", (("x", IntLit(1)),)))
        b = a.with_object("@P_1", ObjectRecord("P", (("x", IntLit(2)),)))
        assert "@P_1" not in a
        assert "@P_0" in b

    def test_equal_envs_hash_equal(self):
        rec = ObjectRecord("P", (("x", IntLit(1)),))
        a = ObjectEnv().with_object("@P_0", rec)
        b = ObjectEnv({"@P_0": rec})
        assert a == b
        assert hash(a) == hash(b)

    def test_hash_stable_after_caching(self):
        env = ObjectEnv().with_object(
            "@P_0", ObjectRecord("P", (("x", IntLit(1)),))
        )
        first = hash(env)
        assert hash(env) == first  # second call served from the cache

    def test_without_objects_noop_returns_self(self):
        env = ObjectEnv().with_object(
            "@P_0", ObjectRecord("P", (("x", IntLit(1)),))
        )
        assert env.without_objects(()) is env

    def test_extent_env_updates_equal_fresh_construction(self, schema):
        a = ExtentEnv.for_schema(schema).with_member("Ps", "@P_0")
        b = ExtentEnv(
            {"Ps": ("P", frozenset({"@P_0"})), "Qs": ("Q", frozenset())}
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_slots_reject_stray_attributes(self):
        env = ObjectEnv()
        with pytest.raises(AttributeError):
            env.stray = 1
        ee = ExtentEnv()
        with pytest.raises(AttributeError):
            ee.stray = 1
