"""Unit tests for the value grammar and canonical sets (repro.lang.values)."""

import pytest

from repro.errors import IOQLTypeError
from repro.lang.ast import (
    BoolLit,
    IntLit,
    IntOp,
    IntOpKind,
    OidRef,
    RecordLit,
    SetLit,
    StrLit,
    Var,
)
from repro.lang.values import (
    EMPTY_SET,
    canonicalize,
    from_value,
    is_value,
    is_value_shaped,
    make_set_value,
    oids_in,
    set_except,
    set_intersect,
    set_remove,
    set_union,
    to_value,
    value_sort_key,
    values_equal,
)


class TestIsValue:
    def test_literals(self):
        assert is_value(IntLit(1))
        assert is_value(BoolLit(True))
        assert is_value(StrLit("x"))
        assert is_value(OidRef("@P_0"))

    def test_var_is_not_value(self):
        assert not is_value(Var("x"))

    def test_non_value_inside_set(self):
        assert not is_value(SetLit((IntOp(IntOpKind.ADD, IntLit(1), IntLit(1)),)))

    def test_canonical_set_is_value(self):
        assert is_value(make_set_value([IntLit(2), IntLit(1)]))

    def test_non_canonical_set_is_not_value(self):
        # duplicates
        assert not is_value(SetLit((IntLit(1), IntLit(1))))
        # wrong order
        assert not is_value(SetLit((IntLit(2), IntLit(1))))

    def test_value_shaped_but_not_value(self):
        s = SetLit((IntLit(1), IntLit(1)))
        assert is_value_shaped(s)
        assert not is_value(s)

    def test_record_of_values(self):
        assert is_value(RecordLit((("a", IntLit(1)),)))
        assert not is_value(RecordLit((("a", Var("x")),)))


class TestCanonicalisation:
    def test_dedup_and_sort(self):
        s = make_set_value([IntLit(3), IntLit(1), IntLit(3), IntLit(2)])
        assert s == SetLit((IntLit(1), IntLit(2), IntLit(3)))

    def test_set_equality_is_structural_after_canon(self):
        a = make_set_value([IntLit(1), IntLit(2)])
        b = make_set_value([IntLit(2), IntLit(1)])
        assert a == b

    def test_nested_canonicalisation(self):
        inner1 = SetLit((IntLit(2), IntLit(1)))
        v = canonicalize(SetLit((inner1,)))
        assert v == SetLit((SetLit((IntLit(1), IntLit(2))),))

    def test_canonicalize_inside_record(self):
        r = canonicalize(RecordLit((("a", SetLit((IntLit(2), IntLit(1)))),)))
        assert r == RecordLit((("a", SetLit((IntLit(1), IntLit(2)))),))

    def test_values_equal(self):
        assert values_equal(SetLit((IntLit(2), IntLit(1))), SetLit((IntLit(1), IntLit(2))))

    def test_mixed_types_sort_consistently(self):
        v = make_set_value([StrLit("a"), IntLit(1), BoolLit(False), OidRef("@x")])
        assert is_value(v)
        # bool < int < string < oid by the documented order
        assert isinstance(v.items[0], BoolLit)
        assert isinstance(v.items[1], IntLit)
        assert isinstance(v.items[2], StrLit)
        assert isinstance(v.items[3], OidRef)

    def test_sort_key_rejects_non_values(self):
        with pytest.raises(TypeError):
            value_sort_key(Var("x"))


class TestSetOperations:
    a = make_set_value([IntLit(1), IntLit(2)])
    b = make_set_value([IntLit(2), IntLit(3)])

    def test_union(self):
        assert set_union(self.a, self.b) == make_set_value(
            [IntLit(1), IntLit(2), IntLit(3)]
        )

    def test_intersect(self):
        assert set_intersect(self.a, self.b) == make_set_value([IntLit(2)])

    def test_except(self):
        assert set_except(self.a, self.b) == make_set_value([IntLit(1)])

    def test_remove(self):
        assert set_remove(self.a, IntLit(1)) == make_set_value([IntLit(2)])

    def test_remove_absent_is_noop(self):
        assert set_remove(self.a, IntLit(9)) == self.a

    def test_empty_set_constant(self):
        assert EMPTY_SET == SetLit(())
        assert is_value(EMPTY_SET)


class TestOidsIn:
    def test_flat(self):
        assert oids_in(OidRef("@a")) == frozenset({"@a"})
        assert oids_in(IntLit(1)) == frozenset()

    def test_nested(self):
        v = make_set_value(
            [RecordLit((("p", OidRef("@a")), ("q", OidRef("@b")))), OidRef("@c")]
        )
        assert oids_in(v) == frozenset({"@a", "@b", "@c"})


class TestConversions:
    def test_roundtrip_primitives(self):
        for x in (1, True, False, "s", 0):
            assert from_value(to_value(x)) == x

    def test_bool_not_confused_with_int(self):
        assert to_value(True) == BoolLit(True)
        assert to_value(1) == IntLit(1)

    def test_set_conversion(self):
        v = to_value({1, 2})
        assert v == make_set_value([IntLit(1), IntLit(2)])
        assert from_value(v) == frozenset({1, 2})

    def test_dict_to_record(self):
        v = to_value({"a": 1, "b": "x"})
        assert v == RecordLit((("a", IntLit(1)), ("b", StrLit("x"))))
        assert from_value(v) == {"a": 1, "b": "x"}

    def test_set_of_records_falls_back_to_tuple(self):
        # dicts are unhashable, so the set of records becomes a tuple
        # in canonical order
        v = to_value([{"a": 2}, {"a": 1}])
        assert from_value(v) == ({"a": 1}, {"a": 2})

    def test_to_value_rejects_open_query(self):
        with pytest.raises(IOQLTypeError):
            to_value(Var("x"))

    def test_from_value_rejects_non_value(self):
        with pytest.raises(IOQLTypeError):
            from_value(Var("x"))

    def test_to_value_rejects_unknown(self):
        with pytest.raises(IOQLTypeError):
            to_value(object())
