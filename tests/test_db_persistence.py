"""Tests for database save/load (repro.db.persistence)."""

import json

import pytest

from repro.db.database import Database
from repro.db.persistence import (
    PersistenceError,
    dump_database,
    load,
    load_database,
    save,
    value_from_json,
    value_to_json,
)
from repro.lang.ast import IntLit, OidRef, RecordLit, SetLit, StrLit
from repro.lang.values import make_bag_value, make_set_value

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    attribute Person buddy;
    int twice() { return this.age + this.age; }
}
"""


@pytest.fixture
def db():
    from repro.db.store import ObjectRecord

    d = Database.from_odl(ODL)
    # bootstrap a *self-referential* object at store level (insert()
    # type-checks against live oids, so a cycle needs the low road) —
    # this also exercises cyclic object graphs through persistence
    oid = d.supply.fresh("Person", d.oe)
    rec = ObjectRecord(
        "Person",
        (("name", StrLit("Ada")), ("age", IntLit(36)), ("buddy", OidRef(oid))),
    )
    d.oe = d.oe.with_object(oid, rec)
    d.ee = d.ee.with_member("Persons", oid)
    d.insert("Person", name="Bob", age=17, buddy=OidRef(oid))
    d.define("define adults() as { p | p <- Persons, p.age >= 18 };")
    return d


class TestValueCodec:
    @pytest.mark.parametrize(
        "v",
        [
            IntLit(7),
            StrLit("héllo"),
            OidRef("@P_0"),
            make_set_value([IntLit(2), IntLit(1)]),
            make_bag_value([IntLit(1), IntLit(1)]),
            RecordLit((("a", IntLit(1)), ("b", SetLit(())))),
        ],
    )
    def test_roundtrip(self, v):
        assert value_from_json(value_to_json(v)) == v

    def test_roundtrip_is_json_safe(self):
        v = make_set_value([StrLit("x"), IntLit(1)])
        doc = json.loads(json.dumps(value_to_json(v)))
        assert value_from_json(doc) == v

    def test_malformed_rejected(self):
        with pytest.raises(PersistenceError):
            value_from_json({"nope": 1})
        with pytest.raises(PersistenceError):
            value_from_json({"t": "alien", "v": 0})


class TestRoundTrip:
    def test_full_roundtrip(self, db, tmp_path):
        path = str(tmp_path / "db.json")
        save(db, ODL, path)
        db2 = load(path)
        assert db2.extent("Persons") == db.extent("Persons")
        r1 = db.query("{ p.name | p <- adults() }", commit=False)
        r2 = db2.query("{ p.name | p <- adults() }", commit=False)
        assert r1.value == r2.value

    def test_object_graph_preserved(self, db, tmp_path):
        path = str(tmp_path / "db.json")
        save(db, ODL, path)
        db2 = load(path)
        for oid in db.extent("Persons"):
            assert db2.attr(oid, "buddy") == db.attr(oid, "buddy")

    def test_methods_still_work_after_load(self, db, tmp_path):
        path = str(tmp_path / "db.json")
        save(db, ODL, path)
        db2 = load(path)
        r = db2.query("{ p.twice() | p <- Persons }", commit=False)
        assert r.python() == frozenset({72, 34})

    def test_fresh_oids_after_load_do_not_collide(self, db, tmp_path):
        path = str(tmp_path / "db.json")
        save(db, ODL, path)
        db2 = load(path)
        new = db2.run('new Person(name: "C", age: 1, buddy: @Person_0)')
        assert new.value.name not in db.extent("Persons")
        assert len(db2.extent("Persons")) == 3


class TestValidationOnLoad:
    def _doc(self, db):
        return dump_database(db, ODL)

    def test_unknown_format(self, db):
        doc = self._doc(db)
        doc["format"] = 99
        with pytest.raises(PersistenceError, match="format"):
            load_database(doc)

    def test_unknown_class(self, db):
        doc = self._doc(db)
        oid = next(iter(doc["objects"]))
        doc["objects"][oid]["class"] = "Ghost"
        with pytest.raises(PersistenceError, match="Ghost"):
            load_database(doc)

    def test_attribute_set_mismatch(self, db):
        doc = self._doc(db)
        oid = next(iter(doc["objects"]))
        del doc["objects"][oid]["attrs"]["age"]
        with pytest.raises(PersistenceError, match="attribute set"):
            load_database(doc)

    def test_extent_references_missing_object(self, db):
        doc = self._doc(db)
        doc["extents"]["Persons"].append("@Person_99")
        with pytest.raises(PersistenceError, match="missing object"):
            load_database(doc)

    def test_extent_class_mismatch(self, db):
        doc = self._doc(db)
        doc["objects"]["@Ghost_0"] = doc["objects"]["@Person_0"]
        # Ghost_0 is a Person object but we claim it in a wrong extent…
        # simpler: put a Person oid into an extent of another class —
        # needs a second class; emulate by renaming the extent check
        doc["extents"]["Persons"].append("@Ghost_0")
        # @Ghost_0 IS a Person, so this is fine; force the mismatch:
        doc["objects"]["@Ghost_0"] = {
            "class": "Person",
            "attrs": doc["objects"]["@Person_0"]["attrs"],
        }
        load_database(doc)  # still consistent — no error expected

    def test_bad_json_file(self, tmp_path):
        p = tmp_path / "junk.json"
        p.write_text("{not json")
        with pytest.raises(PersistenceError, match="not a database dump"):
            load(str(p))

    def test_native_methods_refuse_to_serialise(self, tmp_path):
        from repro.methods.ast import NativeMethod

        db = Database.from_odl(
            "class P extends Object (extent Ps) { attribute int n; int m() native; }"
        )
        mdef = db.schema.mbody("P", "m")
        object.__setattr__(mdef, "body", NativeMethod(lambda c, o, a: IntLit(0)))
        with pytest.raises(PersistenceError, match="native"):
            dump_database(db, "…")

    def test_definitions_retypechecked(self, db):
        doc = self._doc(db)
        doc["definitions"] = ["define broken() as 1 + true;"]
        with pytest.raises(Exception):
            load_database(doc)

    def test_truncated_dump_rejected(self, db, tmp_path):
        path = tmp_path / "db.json"
        save(db, ODL, str(path))
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(PersistenceError, match="truncated or invalid"):
            load(str(path))

    def test_non_object_document_rejected(self, tmp_path):
        p = tmp_path / "list.json"
        p.write_text("[1, 2, 3]")
        with pytest.raises(PersistenceError, match="expected a JSON object"):
            load(str(p))


class TestAtomicSave:
    """save() goes through a temp file + os.replace: a crash mid-save
    leaves either the old dump or the new one, never a torn mixture."""

    def _crash_plan(self):
        from repro.resilience.faults import FaultPlan, FaultRule, inject

        return inject(
            FaultPlan((FaultRule(site="persistence.save", at=1),))
        )

    def test_failed_save_preserves_the_old_dump(self, db, tmp_path):
        from repro.errors import TransientFault

        path = str(tmp_path / "db.json")
        save(db, ODL, path)
        old_bytes = (tmp_path / "db.json").read_bytes()
        db.insert("Person", name="Eve", age=30, buddy=OidRef("@Person_0"))
        with self._crash_plan():
            with pytest.raises(TransientFault):
                save(db, ODL, path)
        # the old dump is intact and still loads
        assert (tmp_path / "db.json").read_bytes() == old_bytes
        assert len(load(path).extent("Persons")) == 2

    def test_failed_save_leaves_no_temp_droppings(self, db, tmp_path):
        from repro.errors import TransientFault

        path = str(tmp_path / "db.json")
        with self._crash_plan():
            with pytest.raises(TransientFault):
                save(db, ODL, path)
        assert list(tmp_path.iterdir()) == []

    def test_retried_save_succeeds(self, db, tmp_path):
        from repro.errors import TransientFault

        path = str(tmp_path / "db.json")
        with self._crash_plan():
            with pytest.raises(TransientFault):
                save(db, ODL, path)
            save(db, ODL, path)  # the at=1 rule is spent; this lands
        assert load(path).extent("Persons") == db.extent("Persons")
