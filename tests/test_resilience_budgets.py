"""Resource budgets: step fuel, wall-clock deadline, new-object quota."""

import pytest

from repro.db.database import Database
from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    EvalError,
    FuelExhausted,
    ObjectQuotaExceeded,
)
from repro.resilience.budget import Budget

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
}
"""


@pytest.fixture
def db() -> Database:
    d = Database.from_odl(ODL)
    for n in ("Ada", "Grace", "Tim"):
        d.insert("Person", name=n)
    return d


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestHierarchy:
    def test_fuel_is_a_budget_violation(self):
        assert issubclass(FuelExhausted, BudgetExceeded)

    def test_deadline_is_a_budget_violation(self):
        assert issubclass(DeadlineExceeded, BudgetExceeded)

    def test_quota_is_a_budget_violation(self):
        assert issubclass(ObjectQuotaExceeded, BudgetExceeded)

    def test_budget_violations_are_eval_errors(self):
        assert issubclass(BudgetExceeded, EvalError)

    def test_resources_named(self):
        assert FuelExhausted().resource == "steps"
        assert DeadlineExceeded().resource == "deadline"
        assert ObjectQuotaExceeded().resource == "objects"


class TestBudgetObject:
    def test_unlimited_never_raises(self):
        b = Budget()
        b.charge_steps(10_000_000)
        b.charge_objects(10_000_000)
        b.check_deadline()
        assert b.is_unlimited()

    def test_step_limit(self):
        b = Budget(max_steps=3)
        b.charge_steps(3)
        with pytest.raises(FuelExhausted) as exc:
            b.charge_steps(1)
        assert exc.value.steps == 4

    def test_object_quota(self):
        b = Budget(max_new_objects=2)
        b.charge_objects(2)
        with pytest.raises(ObjectQuotaExceeded) as exc:
            b.charge_objects(1)
        assert exc.value.created == 3

    def test_nonpositive_object_charge_is_free(self):
        b = Budget(max_new_objects=0)
        b.charge_objects(0)
        b.charge_objects(-5)
        assert b.objects_created == 0

    def test_deadline_with_fake_clock(self):
        clock = FakeClock()
        b = Budget(deadline=1.0, clock=clock, check_interval=1)
        b.start()
        b.charge_steps(1)  # within deadline
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded) as exc:
            b.charge_steps(1)
        assert exc.value.elapsed == pytest.approx(2.0)

    def test_deadline_checked_on_interval_only(self):
        clock = FakeClock()
        b = Budget(deadline=1.0, clock=clock, check_interval=64)
        b.start()
        clock.advance(5.0)
        for _ in range(63):
            b.charge_steps(1)  # steps 1..63: clock never read
        with pytest.raises(DeadlineExceeded):
            b.charge_steps(1)  # step 64: read and fail

    def test_fresh_resets_consumption(self):
        b = Budget(max_steps=10, max_new_objects=5)
        b.charge_steps(7)
        b.charge_objects(4)
        f = b.fresh()
        assert f.steps_used == 0 and f.objects_created == 0
        assert f.max_steps == 10 and f.max_new_objects == 5

    def test_remaining_accounting(self):
        b = Budget(max_steps=10)
        b.charge_steps(4)
        assert b.remaining_steps() == 6
        assert b.remaining_objects() is None

    def test_remaining_never_negative(self):
        b = Budget(max_new_objects=1)
        with pytest.raises(ObjectQuotaExceeded):
            b.charge_objects(5)
        assert b.remaining_objects() == 0

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Budget(max_steps=-1)
        with pytest.raises(ValueError):
            Budget(check_interval=0)

    def test_describe(self):
        assert Budget().describe() == "unlimited"
        b = Budget(max_steps=5, deadline=2.0, max_new_objects=1)
        b.charge_steps(2)
        assert "steps 2/5" in b.describe()
        assert "deadline 2s" in b.describe()
        assert "objects 0/1" in b.describe()

    def test_start_is_idempotent(self):
        clock = FakeClock()
        b = Budget(deadline=10.0, clock=clock)
        b.start()
        clock.advance(3.0)
        b.start()  # must not reset the origin
        assert b.elapsed() == pytest.approx(3.0)


class TestReductionEngine:
    def test_step_budget_enforced(self, db):
        with pytest.raises(FuelExhausted):
            db.run(
                "{ p.name | p <- Persons }",
                engine="reduction",
                budget=Budget(max_steps=2),
            )

    def test_sufficient_budget_consumed(self, db):
        b = Budget(max_steps=10_000)
        result = db.run(
            "{ p.name | p <- Persons }", engine="reduction", budget=b
        )
        assert result.python() == frozenset({"Ada", "Grace", "Tim"})
        assert b.steps_used == result.steps

    def test_object_quota_enforced(self, db):
        q = '{ struct(x: new Person(name: "c")).x | p <- Persons }'
        with pytest.raises(ObjectQuotaExceeded):
            db.run(q, budget=Budget(max_new_objects=2))

    def test_object_quota_roomy_enough(self, db):
        q = 'new Person(name: "c")'
        db.run(q, budget=Budget(max_new_objects=1))
        assert len(db.extent("Persons")) == 4

    def test_deadline_enforced(self, db):
        # every clock read advances time, so a multi-step query must
        # cross the deadline partway through evaluation
        class TickingClock:
            def __init__(self):
                self.now = 0.0

            def __call__(self) -> float:
                self.now += 0.2
                return self.now

        b = Budget(deadline=0.5, clock=TickingClock(), check_interval=1)
        with pytest.raises(DeadlineExceeded):
            db.run("{ p.name | p <- Persons }", engine="reduction", budget=b)

    def test_failed_budget_run_commits_nothing(self, db):
        before_ee, before_oe = db.ee, db.oe
        q = '{ struct(x: new Person(name: "c")).x | p <- Persons }'
        with pytest.raises(BudgetExceeded):
            db.run(q, budget=Budget(max_new_objects=1))
        assert db.ee == before_ee and db.oe == before_oe


class TestBigstepEngine:
    def test_step_budget_enforced(self, db):
        with pytest.raises(FuelExhausted):
            db.run(
                "{ p.name | p <- Persons }",
                engine="bigstep",
                budget=Budget(max_steps=2),
            )

    def test_object_quota_enforced(self, db):
        q = '{ struct(x: new Person(name: "c")).x | p <- Persons }'
        with pytest.raises(ObjectQuotaExceeded):
            db.run(q, engine="bigstep", budget=Budget(max_new_objects=2))

    def test_answers_match_reduction_under_budget(self, db):
        b1, b2 = Budget(max_steps=100_000), Budget(max_steps=100_000)
        r1 = db.run("{ p.name | p <- Persons }", budget=b1)
        r2 = db.run("{ p.name | p <- Persons }", engine="bigstep", budget=b2)
        assert r1.python() == r2.python()


class TestExplorerDegradation:
    def test_budget_truncates_instead_of_raising(self, db):
        ex = db.explore(
            "{ p.name | p <- Persons }", budget=Budget(max_steps=3)
        )
        assert ex.truncated
        assert not ex.deterministic()  # a sample proves nothing

    def test_unlimited_budget_explores_fully(self, db):
        ex = db.explore("{ p.name | p <- Persons }", budget=Budget())
        assert not ex.truncated
        assert ex.deterministic()

    def test_deadline_truncates(self, db):
        clock = FakeClock()
        b = Budget(deadline=0.0, clock=clock, check_interval=1)
        b.start()
        clock.advance(1.0)
        ex = db.explore("{ p.name | p <- Persons }", budget=b)
        assert ex.truncated
