"""Differential certification of durability under concurrent batches.

Twin databases are built from the same seed — identical random
schemas, stores and oid supplies (the idiom of
``test_sched_differential``).  One is volatile and runs every batch
sequentially in admission order (the reference semantics); the other
journals into a write-ahead log and runs the same batches through
``run_many(workers=3)``.  Because writers commit in admission order
under the commit lock, **log order = admission order**, so the j-th
log record corresponds to the reference run's j-th committed write.

After every batch the suite crashes the durable twin *on paper*: it
copies the checkpoint plus a truncated log — cut at a record boundary
and again mid-record — recovers from the copy, and asserts the result
is ∼-equivalent to the reference run's state after exactly that many
committed writes.  A final full-log recovery must match the reference
end state.  The driver's acceptance bar is ≥ 200 seeded batches with
zero divergences; this suite runs 40 seeds × 5 batches = 200.
"""

import random
import shutil
import struct

import pytest

from repro.db import recovery
from repro.db.database import Database
from repro.db.wal import MAGIC
from repro.metatheory.generators import (
    QueryGenerator,
    make_random_schema,
    make_random_store,
)
from repro.semantics.bijection import equivalent

N_SEEDS = 40
BATCHES_PER_SEED = 5
QUERIES_PER_BATCH = 6
WORKERS = 3

_FRAME = struct.Struct(">II")


def _build_db(seed: int) -> Database:
    rng = random.Random(71_000 + seed)
    schema = make_random_schema(rng)
    ee, oe, supply = make_random_store(schema, rng)
    db = Database(schema)
    db.ee, db.oe = ee, oe
    db.supply = supply
    return db


def _twins(seed: int, wal_dir: str):
    db_ref = _build_db(seed)
    db_wal = _build_db(seed)
    assert db_ref.ee == db_wal.ee and db_ref.oe == db_wal.oe
    db_wal.attach_wal(wal_dir)
    gen = QueryGenerator(
        db_ref.schema,
        db_ref.oe,
        random.Random(72_000 + seed),
        allow_new=True,
        allow_methods=True,
        max_depth=3,
    )
    return db_ref, db_wal, gen


def _reference_run(db: Database, sources, states: list) -> None:
    """Sequential semantics; appends the state after each logged commit.

    The durable twin appends one record per successful write-effect
    statement, so the reference grows ``states`` on exactly those.
    """
    for src in sources:
        try:
            q = db.parse(src)
            db.typecheck_with_effect(q)
            res = db.run(q, typecheck=False)
        except Exception:  # noqa: BLE001 - failures commit nothing
            continue
        if res.effect.writes():
            states.append((db.ee, db.oe))


def _record_boundaries(raw: bytes) -> list[int]:
    boundaries = [len(MAGIC)]
    off = len(MAGIC)
    while off < len(raw):
        length, _ = _FRAME.unpack_from(raw, off)
        off += _FRAME.size + length
        boundaries.append(off)
    return boundaries


def _recover_crashed_copy(wal_dir: str, crash_dir: str, log_bytes: bytes):
    shutil.copy(
        recovery.checkpoint_path(wal_dir), recovery.checkpoint_path(crash_dir)
    )
    with open(recovery.wal_path(crash_dir), "wb") as fh:
        fh.write(log_bytes)
    return recovery.recover(crash_dir, attach=False).db


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_recovery_matches_some_sequential_prefix(seed, tmp_path):
    wal_dir = str(tmp_path / "durable")
    crash_dir = str(tmp_path / "crash")
    (tmp_path / "crash").mkdir()
    db_ref, db_wal, gen = _twins(seed, wal_dir)
    one = db_ref.parse("1")
    rng = random.Random(73_000 + seed)
    # ref_states[j] = reference state after j committed writes; index 0
    # is the initial checkpoint the durable twin wrote at attach time
    ref_states = [(db_ref.ee, db_ref.oe)]

    for batch_no in range(BATCHES_PER_SEED):
        sources = [
            gen.query(gen.random_type()) for _ in range(QUERIES_PER_BATCH)
        ]
        _reference_run(db_ref, sources, ref_states)
        db_wal.run_many(sources, workers=WORKERS)
        label = f"seed={seed} batch={batch_no}"

        # live states agree after every batch (WAL must not perturb
        # the schedule) …
        assert equivalent(
            one, db_ref.ee, db_ref.oe, one, db_wal.ee, db_wal.oe
        ), f"{label}: live EE/OE diverge"

        raw = open(recovery.wal_path(wal_dir), "rb").read()
        boundaries = _record_boundaries(raw)
        assert len(boundaries) == len(ref_states), (
            f"{label}: {len(boundaries) - 1} log records != "
            f"{len(ref_states) - 1} reference commits"
        )

        # … and a crash at a random record boundary recovers exactly
        # the reference prefix with that many commits …
        k = rng.randrange(len(boundaries))
        db_crash = _recover_crashed_copy(
            wal_dir, crash_dir, raw[: boundaries[k]]
        )
        ref_ee, ref_oe = ref_states[k]
        assert equivalent(
            one, ref_ee, ref_oe, one, db_crash.ee, db_crash.oe
        ), f"{label}: boundary crash at record {k} is not prefix {k}"

        # … while a crash *inside* record k+1 tears it off, landing on
        # the same prefix
        if k + 1 < len(boundaries):
            cut = rng.randrange(boundaries[k] + 1, boundaries[k + 1])
            db_torn = _recover_crashed_copy(wal_dir, crash_dir, raw[:cut])
            assert equivalent(
                one, ref_ee, ref_oe, one, db_torn.ee, db_torn.oe
            ), f"{label}: torn crash at byte {cut} is not prefix {k}"

    # a full-log recovery is the whole reference history
    raw = open(recovery.wal_path(wal_dir), "rb").read()
    db_final = _recover_crashed_copy(wal_dir, crash_dir, raw)
    assert equivalent(
        one, db_ref.ee, db_ref.oe, one, db_final.ee, db_final.oe
    ), f"seed={seed}: full recovery diverges from the reference end state"
    db_wal.close()


def test_total_batch_count_meets_acceptance_bar():
    assert N_SEEDS * BATCHES_PER_SEED >= 200
