"""Unit tests for the ⊢″ safe-commutativity system (Theorem 8 gate)."""

import pytest

from repro.effects.commutativity import (
    analyze_commutativity,
    check_commutable,
    may_commute,
)
from repro.errors import IOQLEffectError
from repro.lang.parser import parse_query
from repro.model.odl_parser import parse_schema

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute string address;
}
class Employee extends Person (extent Employees) {
    attribute int salary;
}
"""


@pytest.fixture(scope="module")
def schema():
    return parse_schema(ODL)


def q(schema, src):
    return parse_query(src, schema=schema)


class TestAccepted:
    def test_pure_operands(self, schema):
        assert not analyze_commutativity(schema, q(schema, "{1} union {2}"))[2]

    def test_read_read(self, schema):
        src = "Persons intersect Persons"
        _, _, conflicts = analyze_commutativity(schema, q(schema, src))
        assert not conflicts

    def test_add_add_same_class(self, schema):
        # two creations commute up to oid bijection
        src = (
            '{new Person(name: "a", address: "x")} union '
            '{new Person(name: "b", address: "y")}'
        )
        _, _, conflicts = analyze_commutativity(schema, q(schema, src))
        assert not conflicts

    def test_write_left_read_right_different_class(self, schema):
        src = '{ (Person) e | e <- Employees } union {new Person(name: "a", address: "x")}'
        _, _, conflicts = analyze_commutativity(schema, q(schema, src))
        # left reads Employee, right adds Person — distinct classes
        assert not conflicts

    def test_except_never_checked(self, schema):
        # \\ is not commutative as a set function: ⊢″ has nothing to say
        src = 'Persons except { new Person(name: "x", address: "y") | p <- Persons }'
        _, _, conflicts = analyze_commutativity(schema, q(schema, src))
        assert not conflicts


class TestRejected:
    # the §4 example: the right operand of ∩ creates a Person while the
    # left operand reads the Person extent
    PAPER_SRC = (
        "Persons intersect "
        '{ struct(a: p, b: new Person(name: p.name, address: "Utah")).a '
        "  | p <- Persons }"
    )

    def test_paper_intersection_rejected(self, schema):
        _, _, conflicts = analyze_commutativity(schema, q(schema, self.PAPER_SRC))
        assert len(conflicts) == 1
        c = conflicts[0]
        assert "Person" in str(c.left_effect) or "Person" in str(c.right_effect)

    def test_check_raises(self, schema):
        with pytest.raises(IOQLEffectError, match="⊢″"):
            check_commutable(schema, q(schema, self.PAPER_SRC))

    def test_union_read_vs_add(self, schema):
        src = 'Persons union {new Person(name: "x", address: "y")}'
        _, _, conflicts = analyze_commutativity(schema, q(schema, src))
        assert len(conflicts) == 1

    def test_nested_conflict_found(self, schema):
        src = "{ size(Persons union {new Person(name: p.name, address: p.name)}) | p <- Persons }"
        _, _, conflicts = analyze_commutativity(schema, q(schema, src))
        assert conflicts


class TestMayCommute:
    def test_pairwise_pure(self, schema):
        assert may_commute(schema, q(schema, "{1}"), q(schema, "{2}"))

    def test_pairwise_reads(self, schema):
        assert may_commute(schema, q(schema, "Persons"), q(schema, "Employees"))

    def test_pairwise_conflict(self, schema):
        left = q(schema, "Persons")
        right = q(schema, '{new Person(name: "x", address: "y")}')
        assert not may_commute(schema, left, right)
        assert not may_commute(schema, right, left)

    def test_pairwise_add_add(self, schema):
        a = q(schema, '{new Person(name: "a", address: "x")}')
        b = q(schema, '{new Person(name: "b", address: "y")}')
        assert may_commute(schema, a, b)


class TestListOperands:
    """List concatenation is order-dependent: ⊢″ must never license it.

    Regression: ``may_commute`` used to look only at the operands'
    effects, so two *pure* list expressions (empty effects, trivially
    non-interfering) were reported commutable even though swapping the
    operands of ``@`` visibly reorders the answer.
    """

    def test_pure_lists_do_not_commute(self, schema):
        l = q(schema, "list(1, 2)")
        r = q(schema, "list(3)")
        assert not may_commute(schema, l, r)
        assert not may_commute(schema, r, l)

    def test_list_against_set_does_not_commute(self, schema):
        assert not may_commute(schema, q(schema, "list(1)"), q(schema, "{2}"))
        assert not may_commute(schema, q(schema, "{2}"), q(schema, "list(1)"))

    def test_sets_still_commute(self, schema):
        # guard against over-rejection: the set case is unchanged
        assert may_commute(schema, q(schema, "{1}"), q(schema, "{2}"))
