"""Mutation testing of the semantics: do the theorem checkers have teeth?

A metatheory harness that never fails is worthless evidence.  Here we
*break* the machine in controlled ways — each mutant violates one rule
of Figure 2/4 — and assert the corresponding theorem checker catches
it.  This validates the checkers themselves, so that their silence on
the real machine means something.
"""

import pytest

from repro.db.database import Database
from repro.effects.algebra import EMPTY, Effect, add, read
from repro.lang.ast import BoolLit, IntLit, OidRef, SetLit
from repro.metatheory.theorems import (
    check_determinism,
    check_progress,
    check_subject_reduction,
    check_type_soundness,
)
from repro.semantics.machine import Config, Machine, StepResult

ODL = """
class P extends Object (extent Ps) {
    attribute int n;
}
"""


@pytest.fixture
def db():
    d = Database.from_odl(ODL)
    d.insert("P", n=1)
    d.insert("P", n=2)
    return d


class WrongTypeMachine(Machine):
    """Mutant: (Addition) returns a boolean — breaks subject reduction."""

    def _apply(self, config, decomp, *, strategy):
        from repro.lang.ast import IntOp

        if isinstance(decomp.redex, IntOp):
            cfg = Config(config.ee, config.oe, decomp.plug(BoolLit(True)))
            return [StepResult(cfg, EMPTY, "Addition")]
        return super()._apply(config, decomp, strategy=strategy)


class UntrackedEffectMachine(Machine):
    """Mutant: (Extent) forgets its R(C) label — breaks Theorem 5."""

    def _apply(self, config, decomp, *, strategy):
        results = super()._apply(config, decomp, strategy=strategy)
        return [
            StepResult(r.config, EMPTY, r.rule)
            if r.rule == "Extent"
            else r
            for r in results
        ]


class PhantomEffectMachine(Machine):
    """Mutant: pure (Addition) claims an A(P) effect — also Theorem 5.

    Note the direction: claiming *more* than inferred is the violation;
    the checker verifies step-effect ⊆ inferred-effect.
    """

    def _apply(self, config, decomp, *, strategy):
        results = super()._apply(config, decomp, strategy=strategy)
        return [
            StepResult(r.config, Effect.of(add("P")), r.rule)
            if r.rule == "Addition"
            else r
            for r in results
        ]


class LeakyNewMachine(Machine):
    """Mutant: (New) returns the oid but forgets to register the object
    in OE — the residual configuration no longer typechecks (the oid is
    dangling), which subject reduction flags."""

    def _apply(self, config, decomp, *, strategy):
        from repro.lang.ast import New

        if isinstance(decomp.redex, New):
            oid = self.supply.fresh(decomp.redex.cname, config.oe)
            cfg = Config(config.ee, config.oe, decomp.plug(OidRef(oid)))
            return [StepResult(cfg, Effect.of(add(decomp.redex.cname)), "New")]
        return super()._apply(config, decomp, strategy=strategy)


class StuckUnionMachine(Machine):
    """Mutant: (Union) refuses singleton operands — breaks progress."""

    def _apply(self, config, decomp, *, strategy):
        from repro.errors import StuckError
        from repro.lang.ast import SetOp

        r = decomp.redex
        if (
            isinstance(r, SetOp)
            and isinstance(r.left, SetLit)
            and len(r.left.items) == 1
        ):
            raise StuckError("mutant: cannot union singletons")
        return super()._apply(config, decomp, strategy=strategy)


class BiasedChoiceMachine(Machine):
    """Mutant: possible_steps hides all but one (ND comp) choice AND the
    comprehension body leaks the order — used to check the determinism
    checker is driven by real exploration, not wishful thinking."""


def _mutant(db, cls):
    return cls(db.schema, db.machine.defs, oid_supply=db.supply)


class TestCheckersCatchMutants:
    def test_wrong_type_caught_by_subject_reduction(self, db):
        m = _mutant(db, WrongTypeMachine)
        q = db.parse("1 + 2")
        report = check_subject_reduction(m, db.ee, db.oe, q)
        assert not report
        assert "broke typing" in report.detail or "≰" in report.detail

    def test_untracked_effect_not_a_violation(self, db):
        """Dropping a label is sound w.r.t. Theorem 5 (⊆ still holds) —
        the checker must NOT flag it; this guards against the checker
        demanding equality instead of inclusion."""
        m = _mutant(db, UntrackedEffectMachine)
        q = db.parse("size(Ps)")
        assert check_subject_reduction(m, db.ee, db.oe, q)

    def test_phantom_effect_caught(self, db):
        m = _mutant(db, PhantomEffectMachine)
        q = db.parse("1 + 2")
        report = check_subject_reduction(m, db.ee, db.oe, q)
        assert not report
        assert "effect" in report.detail

    def test_leaky_new_caught(self, db):
        m = _mutant(db, LeakyNewMachine)
        q = db.parse("new P(n: 9)")
        report = check_subject_reduction(m, db.ee, db.oe, q)
        assert not report

    def test_stuck_union_caught_by_progress_and_soundness(self, db):
        m = _mutant(db, StuckUnionMachine)
        q = db.parse("{1} union {2}")
        assert not check_progress(m, db.ee, db.oe, q)
        assert not check_type_soundness(m, db.ee, db.oe, q)

    def test_real_machine_passes_everything(self, db):
        """Control: the unmutated machine sails through the same inputs."""
        for src in ["1 + 2", "size(Ps)", "new P(n: 9)", "{1} union {2}"]:
            q = db.parse(src)
            assert check_subject_reduction(db.machine, db.ee, db.oe, q)
            assert check_progress(db.machine, db.ee, db.oe, q)
            assert check_type_soundness(db.machine, db.ee, db.oe, q)


class TestAnalysisTeeth:
    def test_determinism_checker_not_vacuous(self, db):
        """A genuinely racy query must produce multiple outcomes in the
        explorer — if our explorer only ever found one outcome, Theorem
        7 checks would pass vacuously."""
        racy = db.parse(
            "{ (if size(Ps) = 2 then struct(a: p.n, b: new P(n: 0)).a "
            "   else 0 - p.n) | p <- Ps }"
        )
        ex = db.explore(racy)
        assert len(ex.distinct_values()) > 1

    def test_determinism_report_vacuous_marker(self, db):
        racy = db.parse(
            "{ (if size(Ps) = 2 then struct(a: p.n, b: new P(n: 0)).a "
            "   else 0 - p.n) | p <- Ps }"
        )
        report = check_determinism(db.machine, db.ee, db.oe, racy)
        assert report  # vacuously true: ⊢′ rejects
        assert "vacuous" in report.detail
