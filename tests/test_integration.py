"""End-to-end scenarios exercising the whole pipeline together."""

import pytest

import repro
from repro.db.database import Database
from repro.methods.ast import AccessMode


class TestTopLevelApi:
    def test_quickstart_from_docs(self):
        db = repro.open_database(
            """
            class Person extends Object (extent Persons) {
                attribute string name;
                attribute int age;
            }
            """
        )
        db.insert("Person", name="Ada", age=36)
        result = repro.run(db, "{ p.name | p <- Persons, p.age > 30 }")
        assert result.python() == frozenset({"Ada"})

    def test_typecheck_effects_explore(self):
        db = repro.open_database(
            "class P extends Object (extent Ps) { attribute int n; }"
        )
        db.insert("P", n=1)
        assert str(repro.typecheck(db, "{ p.n | p <- Ps }")) == "set<int>"
        assert "R(P)" in str(repro.effects(db, "Ps"))
        assert repro.is_deterministic(db, "{ p.n | p <- Ps }")
        ex = repro.explore(db, "{ p.n | p <- Ps }")
        assert ex.deterministic()

    def test_optimize_api(self):
        db = repro.open_database(
            "class P extends Object (extent Ps) { attribute int n; }"
        )
        assert repro.optimize(db, "1 + 1") == db.parse("2")


class TestHrScenario:
    """A realistic multi-step workload over the §2-style schema."""

    def test_full_session(self, hr_db):
        db = hr_db
        # 1. definitions building on each other
        db.define("define tax() as 500;")
        db.define(
            "define net(e: Employee) as e.NetSalary(tax());"
        )
        db.define(
            "define well_paid(limit: int) as "
            "{ e | e <- Employees, net(e) > limit };"
        )
        # 2. a query through the definition stack
        r = db.query("{ e.name | e <- well_paid(4000) }")
        assert r.python() == frozenset({"Ada"})
        # 3. the effect of the definition-based query is still visible
        assert "Employee" in db.effect_of("well_paid(0)").reads()
        # 4. insert another employee, then re-query
        (mgr,) = db.extent("Managers")
        from repro.lang.ast import OidRef

        db.insert(
            "Employee",
            name="Niklaus", age=40, address="Zurich", EmpID=3,
            GrossSalary=9000, UniqueManager=OidRef(mgr),
        )
        r2 = db.query("{ e.name | e <- well_paid(4000) }")
        assert r2.python() == frozenset({"Ada", "Niklaus"})

    def test_upcast_and_heterogeneous_sets(self, hr_db):
        r = hr_db.query(
            "{ p.name | p <- { (Person) e | e <- Employees } union Persons }"
        )
        # Persons extent holds only direct Person instances (none were
        # inserted), so the union is exactly the upcast employees
        assert r.python() == frozenset({"Ada", "Edsger"})

    def test_aggregation_style_query(self, hr_db):
        r = hr_db.query(
            "{ struct(mgr: m.name, n: size({ e | e <- Employees, "
            "e.UniqueManager == m })) | m <- Managers }"
        )
        assert r.python() == ({"mgr": "Grace", "n": 2},)


class TestEffectfulMethodScenario:
    """The §5 design point end-to-end: methods that update the database."""

    ODL = """
    class Account extends Object (extent Accounts) {
        attribute int balance;
        attribute int version;
        int deposit(int amount) effect U(Account) {
            this.balance := this.balance + amount;
            this.version := this.version + 1;
            return this.balance;
        }
        Account spawn() effect A(Account) {
            return new Account(balance: 0, version: 0);
        }
        int bank_total() effect R(Account) {
            var t : int := 0;
            for (a in extent(Accounts)) { t := t + a.balance; }
            return t;
        }
    }
    """

    @pytest.fixture
    def db(self):
        d = Database.from_odl(self.ODL, method_mode=AccessMode.EFFECTFUL)
        d.insert("Account", balance=100, version=0)
        d.insert("Account", balance=50, version=0)
        return d

    def test_updating_method_via_query(self, db):
        (a, b) = sorted(db.extent("Accounts"))
        from repro.lang.ast import MethodCall, OidRef, IntLit

        r = db.run(MethodCall(OidRef(a), "deposit", (IntLit(25),)))
        assert r.python() == 125
        assert db.attr(a, "balance").value == 125
        assert db.attr(a, "version").value == 1
        assert "Account" in r.effect.updates()

    def test_creating_method_via_query(self, db):
        (a, _) = sorted(db.extent("Accounts"))
        from repro.lang.ast import MethodCall, OidRef

        before = len(db.extent("Accounts"))
        db.run(MethodCall(OidRef(a), "spawn", ()))
        assert len(db.extent("Accounts")) == before + 1

    def test_reading_method_effect_propagates(self, db):
        eff = db.effect_of("{ a.bank_total() | a <- Accounts }")
        assert "Account" in eff.reads()

    def test_updating_iteration_is_flagged_nondeterministic(self, db):
        """Per-element updates + reads: ⊢′ must reject."""
        src = "{ a.deposit(a.bank_total()) | a <- Accounts }"
        assert not db.is_deterministic(src)

    def test_pure_update_iteration_also_flagged(self, db):
        # updates alone self-interfere (could hit the same object)
        src = "{ a.deposit(1) | a <- Accounts }"
        assert not db.is_deterministic(src)

    def test_update_order_actually_observable(self, db):
        """Dynamic confirmation of the static warning above."""
        src = "{ a.deposit(a.bank_total()) | a <- Accounts }"
        ex = db.explore(src)
        assert len(ex.distinct_values()) > 1


class TestCrossFeatureSmoke:
    def test_everything_at_once(self, hr_db):
        """One query touching records, sets, paths, methods, sugar,
        casts and quantifiers, checked and executed."""
        src = (
            "select struct(who: e.name, boss: e.UniqueManager.name, "
            "ok: e.is_adult() and e.NetSalary(100) > 4000) "
            "from e in Employees "
            "where exists m in Managers : m == e.UniqueManager"
        )
        t = hr_db.typecheck(src)
        assert "who: string" in str(t)
        r = hr_db.query(src)
        rows = r.python()
        rows = set(tuple(sorted(d.items())) for d in (rows if isinstance(rows, tuple) else rows))
        assert rows == {
            (("boss", "Grace"), ("ok", True), ("who", "Ada")),
            (("boss", "Grace"), ("ok", True), ("who", "Edsger")),
        }
