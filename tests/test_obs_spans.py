"""Tests for span tracing (repro.obs.spans)."""

import pytest

from repro import obs
from repro.obs.spans import NULL_SPAN, Span, Tracer, span


@pytest.fixture
def clean_obs():
    """Instrumentation on for the test, everything wiped afterwards."""
    obs.enable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestDisabledMode:
    def test_span_returns_the_shared_null_singleton(self):
        assert not obs.enabled()
        assert span("anything") is NULL_SPAN
        assert span("other", a=1) is NULL_SPAN

    def test_null_span_is_inert(self):
        with span("x") as sp:
            sp.set(a=1)
        assert len(obs.TRACER.finished) == 0

    def test_nothing_recorded_when_disabled(self):
        with span("outer"):
            with span("inner"):
                pass
        assert obs.TRACER.finished == []
        assert obs.TRACER.stack == []


class TestEnabledMode:
    def test_span_records_duration(self, clean_obs):
        with span("work") as sp:
            pass
        assert sp.end is not None
        assert sp.duration >= 0.0
        assert obs.TRACER.finished == [sp]

    def test_nesting_builds_a_tree(self, clean_obs):
        with span("query") as outer:
            with span("parse") as p:
                pass
            with span("eval") as e:
                with span("step"):
                    pass
        assert obs.TRACER.finished == [outer]
        assert [c.name for c in outer.children] == ["parse", "eval"]
        assert [c.name for c in e.children] == ["step"]
        assert p.children == []

    def test_attrs_at_entry_and_via_set(self, clean_obs):
        with span("typecheck", query="q") as sp:
            sp.set(result="set<int>")
        assert sp.attrs == {"query": "q", "result": "set<int>"}

    def test_name_is_a_valid_attribute_key(self, clean_obs):
        with span("bench", name="inner") as sp:
            pass
        assert sp.name == "bench"
        assert sp.attrs == {"name": "inner"}

    def test_parent_duration_covers_children(self, clean_obs):
        with span("outer") as outer:
            with span("inner") as inner:
                pass
        assert outer.duration >= inner.duration

    def test_reset_clears_tracer(self, clean_obs):
        with span("x"):
            pass
        obs.reset()
        assert obs.TRACER.finished == []


class TestTracerRobustness:
    def test_exception_unwinds_spans(self, clean_obs):
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("inner"):
                    raise RuntimeError("boom")
        assert obs.TRACER.stack == []
        assert len(obs.TRACER.finished) == 1

    def test_private_tracer_is_independent(self):
        t = Tracer()
        sp = t.begin("solo", {})
        with sp:
            pass
        assert t.finished == [sp]
        assert obs.TRACER.finished == []

    def test_finished_buffer_is_bounded(self):
        from repro.obs import spans as spans_mod

        t = Tracer()
        for i in range(spans_mod.MAX_FINISHED_ROOTS + 10):
            with t.begin(f"s{i}", {}):
                pass
        assert len(t.finished) == spans_mod.MAX_FINISHED_ROOTS


class TestPipelineSpans:
    def test_db_run_produces_the_phase_tree(self, clean_obs):
        from repro.db.database import Database

        db = Database.from_odl(
            "class P extends Object (extent Ps) { attribute int n; }"
        )
        db.insert("P", n=1)
        db.run("{ p.n | p <- Ps }")
        roots = [sp.name for sp in obs.TRACER.finished]
        assert "query" in roots
        query_span = next(
            sp for sp in obs.TRACER.finished if sp.name == "query"
        )
        child_names = [c.name for c in query_span.children]
        for phase in ("parse", "typecheck", "eval", "commit"):
            assert phase in child_names, child_names

    def test_instrument_context_manager_restores_state(self):
        import repro

        assert not obs.enabled()
        with repro.instrument():
            assert obs.enabled()
        assert not obs.enabled()
        obs.reset()
