"""Hypothesis property tests over the core data structures and theorems.

These encode the paper's meta-level claims as machine-checked
properties over randomly drawn inputs:

* the fundamental property of evaluation contexts (unique
  decomposition / plugging);
* parser ∘ pretty-printer = identity;
* the substitution lemma (Lemma 1);
* the value-effect lemma (Lemma 2.1);
* subject reduction + progress + effect consistency (Theorems 1/2/5/6)
  on generated well-typed configurations;
* determinism theorems (4, 7) and commutation (8) on small configs;
* the effect algebra is a bounded join-semilattice;
* set-value canonicalisation is idempotent and order-insensitive.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.effects.algebra import EMPTY, AccessKind, Atom, Effect
from repro.lang.ast import SetOp, SetOpKind
from repro.lang.parser import parse_query
from repro.lang.pprint import pretty
from repro.lang.traversal import free_vars, subst
from repro.lang.values import canonicalize, is_value, make_set_value
from repro.metatheory.generators import (
    QueryGenerator,
    make_random_schema,
    make_random_store,
)
from repro.metatheory.theorems import (
    check_determinism,
    check_functional_determinism,
    check_progress,
    check_safe_commutativity,
    check_subject_reduction,
    check_type_soundness,
)
from repro.model.types import ClassType, SetType
from repro.semantics.contexts import decompose
from repro.semantics.machine import Machine
from repro.semantics.strategy import RandomStrategy
from repro.typing.checker import check_query
from repro.typing.context import TypeContext

# ---------------------------------------------------------------------------
# effect algebra laws
# ---------------------------------------------------------------------------

atoms = st.builds(
    Atom,
    st.sampled_from(list(AccessKind)),
    st.sampled_from(["A", "B", "C", "D"]),
)
effects = st.frozensets(atoms, max_size=6).map(Effect)


class TestEffectAlgebraProperties:
    @given(effects, effects, effects)
    def test_join_semilattice(self, a, b, c):
        assert (a | b) | c == a | (b | c)
        assert a | b == b | a
        assert a | a == a
        assert a | EMPTY == a

    @given(effects, effects)
    def test_subeffect_is_join_order(self, a, b):
        assert a.subeffect_of(a | b)
        assert (a | b == b) == a.subeffect_of(b)

    @given(effects, effects)
    def test_interference_symmetric(self, a, b):
        assert a.interferes_with(b) == b.interferes_with(a)

    @given(effects)
    def test_pure_never_interferes(self, a):
        assert not EMPTY.interferes_with(a)

    @given(effects)
    def test_nonint_matches_self_interference_modulo_adds(self, a):
        # nonint(ε) is interference of ε with itself, except that A/A on
        # one class is tolerated (fresh objects commute up to ∼)
        if a.noninterfering():
            assert not (a.reads() & a.writes())
            assert not a.updates()


# ---------------------------------------------------------------------------
# generated configurations — shared machinery
# ---------------------------------------------------------------------------


def _config(seed: int, *, allow_new=True, depth=4):
    rng = random.Random(seed)
    schema = make_random_schema(rng)
    ee, oe, supply = make_random_store(schema, rng)
    gen = QueryGenerator(schema, oe, rng, allow_new=allow_new, max_depth=depth)
    machine = Machine(schema, oid_supply=supply)
    ctx = TypeContext(
        schema, vars={oid: ClassType(rec.cname) for oid, rec in oe.items()}
    )
    return schema, ee, oe, machine, gen, ctx


seeds = st.integers(min_value=0, max_value=10_000)


# ---------------------------------------------------------------------------
# syntax-level properties
# ---------------------------------------------------------------------------


class TestSyntaxProperties:
    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_pretty_parse_roundtrip(self, seed):
        schema, ee, oe, machine, gen, ctx = _config(seed)
        q = gen.query(gen.random_type())
        extents = frozenset(schema.extents)
        assert parse_query(pretty(q), extents=extents) == q

    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_unique_decomposition(self, seed):
        """Any query is a value xor decomposes, and plugging restores it."""
        schema, ee, oe, machine, gen, ctx = _config(seed)
        q = gen.query(gen.random_type())
        d = decompose(q)
        if d is None:
            assert is_value(q)
        else:
            assert not is_value(q)
            assert d.plug(d.redex) == q

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_generated_queries_typecheck(self, seed):
        schema, ee, oe, machine, gen, ctx = _config(seed)
        target = gen.random_type()
        q = gen.query(target)
        assert schema.subtype(check_query(ctx, q), target)

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_substitution_lemma(self, seed):
        """Lemma 1: substituting a value of a subtype preserves typing."""
        from repro.model.types import INT

        schema, ee, oe, machine, gen, ctx = _config(seed)
        q = gen.query(gen.random_type(), env={"hole": INT})
        if "hole" not in free_vars(q):
            return
        t_before = check_query(ctx.extend("hole", INT), q)
        out = subst(q, "hole", gen.query(INT, env={}))
        # replace the free variable by a closed int query and retype
        t_after = check_query(ctx, canonicalize_if_value(out))
        assert schema.subtype(t_after, t_before)


def canonicalize_if_value(q):
    return canonicalize(q) if is_value(q) else q


def _schema_to_odl(schema) -> str:
    """Render a generated schema back to ODL (generated schemas have no
    method bodies, so this is a plain syntax dump)."""
    out = []
    for name in sorted(schema.classes):
        cd = schema.classes[name]
        attrs = "\n".join(
            f"    attribute {a.type} {a.name};" for a in cd.attributes
        )
        out.append(
            f"class {cd.name} extends {cd.superclass} "
            f"(extent {cd.extent}) {{\n{attrs}\n}}"
        )
    return "\n".join(out)


# ---------------------------------------------------------------------------
# value properties
# ---------------------------------------------------------------------------

value_ints = st.lists(st.integers(-5, 5), max_size=8)


class TestValueProperties:
    @given(value_ints)
    def test_canonicalisation_idempotent(self, xs):
        from repro.lang.ast import IntLit

        v = make_set_value(IntLit(x) for x in xs)
        assert canonicalize(v) == v
        assert make_set_value(v.items) == v

    @given(value_ints)
    def test_order_insensitive(self, xs):
        from repro.lang.ast import IntLit

        a = make_set_value(IntLit(x) for x in xs)
        b = make_set_value(IntLit(x) for x in reversed(xs))
        assert a == b

    @given(value_ints, value_ints)
    def test_union_is_set_union(self, xs, ys):
        from repro.lang.ast import IntLit
        from repro.lang.values import set_union

        a = make_set_value(IntLit(x) for x in xs)
        b = make_set_value(IntLit(y) for y in ys)
        u = set_union(a, b)
        assert {i.value for i in u.items} == set(xs) | set(ys)


# ---------------------------------------------------------------------------
# metatheory properties (the paper's theorems, randomly probed)
# ---------------------------------------------------------------------------


class TestTheoremProperties:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_subject_reduction_and_progress(self, seed):
        schema, ee, oe, machine, gen, ctx = _config(seed)
        q = gen.query(gen.random_type())
        assert check_subject_reduction(machine, ee, oe, q)
        assert check_progress(machine, ee, oe, q)

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_type_soundness_random_schedule(self, seed):
        schema, ee, oe, machine, gen, ctx = _config(seed)
        q = gen.query(gen.random_type())
        report = check_type_soundness(
            machine, ee, oe, q, strategies=(RandomStrategy(seed),)
        )
        assert report, report.detail

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_functional_determinism(self, seed):
        schema, ee, oe, machine, gen, ctx = _config(seed, allow_new=False, depth=3)
        q = gen.query(SetType(gen.random_type(depth=0)))
        report = check_functional_determinism(machine, ee, oe, q, max_paths=2_000)
        assert report, report.detail

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_determinism_theorem(self, seed):
        schema, ee, oe, machine, gen, ctx = _config(seed, depth=3)
        q = gen.query(SetType(gen.random_type(depth=0)))
        report = check_determinism(machine, ee, oe, q, max_paths=2_000)
        assert report, f"{report.detail}\n{q}"

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_safe_commutativity(self, seed):
        schema, ee, oe, machine, gen, ctx = _config(seed, depth=2)
        elem = gen.random_type(depth=0)
        q = SetOp(
            SetOpKind.UNION, gen.query(SetType(elem)), gen.query(SetType(elem))
        )
        report = check_safe_commutativity(machine, ee, oe, q, max_paths=2_000)
        assert report, f"{report.detail}\n{q}"

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_value_effect_lemma(self, seed):
        """Lemma 2.1: every value types with effect ∅."""
        from repro.effects.checker import EffectChecker

        schema, ee, oe, machine, gen, ctx = _config(seed, depth=2)
        q = gen.query(gen.random_type())
        if is_value(q):
            _, eff = EffectChecker().check(ctx, q)
            assert eff == EMPTY

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_bigstep_agrees_with_machine(self, seed):
        """The two presentations of §3.3 compute the same function."""
        from repro.errors import FuelExhausted
        from repro.db.store import OidSupply
        from repro.semantics.bigstep import BigStepEvaluator
        from repro.semantics.evaluator import evaluate

        schema, ee, oe, machine, gen, ctx = _config(seed, depth=3)
        q = gen.query(gen.random_type())
        m = Machine(schema, oid_supply=OidSupply())
        try:
            small = evaluate(m, ee, oe, q, max_steps=3_000)
        except FuelExhausted:
            return
        big = BigStepEvaluator(schema, oid_supply=OidSupply()).evaluate(
            ee, oe, q
        )
        assert big.value == small.value
        assert big.ee == small.ee
        assert big.oe == small.oe
        assert big.effect == small.effect

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_persistence_roundtrip_random_store(self, seed):
        """save ∘ load is the identity on random object graphs."""
        import json
        import random as _random

        from repro.db.database import Database
        from repro.db.persistence import dump_database, load_database
        from repro.lang.pprint import pretty

        rng = _random.Random(seed)
        schema, ee, oe, machine, gen, ctx = _config(seed, depth=2)
        # rebuild a Database wrapper around the generated store
        db = Database(schema)
        db.ee, db.oe = ee, oe
        odl = _schema_to_odl(schema)
        doc = json.loads(json.dumps(dump_database(db, odl)))
        db2 = load_database(doc)
        assert db2.oe == db.oe
        for e in db.ee.names():
            assert db2.extent(e) == db.extent(e)

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_dynamic_effect_within_static(self, seed):
        """Theorem 5's corollary: the full trace ⊆ the inferred effect."""
        from repro.effects.checker import EffectChecker
        from repro.errors import FuelExhausted
        from repro.semantics.evaluator import evaluate

        schema, ee, oe, machine, gen, ctx = _config(seed, depth=3)
        q = gen.query(gen.random_type())
        _, static = EffectChecker().check(ctx, q)
        try:
            result = evaluate(machine, ee, oe, q, max_steps=3_000)
        except FuelExhausted:
            return
        assert result.effect.subeffect_of(static)
