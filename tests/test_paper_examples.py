"""Integration tests reproducing the paper's worked examples exactly.

E1 — §1 non-determinism: the Jack/Jill query has exactly the two
observable answers the paper lists, and ⊢′ rejects it.

E2 — §1 non-termination: the ``loop`` variant terminates when Jill is
visited first and diverges when Jack is visited first.

E3 — §4 commutation: the intersection whose operands interfere returns
the singleton; the commuted query returns "the empty set!"; ⊢″ refuses.
"""

import pytest

from repro.errors import FuelExhausted
from repro.lang.ast import SetOp, SetOpKind
from repro.semantics.strategy import FIRST, LAST
from tests.conftest import JACK_JILL_LOOP_QUERY, JACK_JILL_QUERY


class TestE1NonDeterminism:
    def test_exactly_two_observable_answers(self, jack_jill_db):
        ex = jack_jill_db.explore(JACK_JILL_QUERY)
        values = sorted(str(v) for v in ex.distinct_values())
        assert values == ['{"Jack", "Peter"}', '{"Jill", "Peter"}']

    def test_jack_first_gives_peter_jill(self, jack_jill_db):
        # oids sort @P_0 (Jack) < @P_1 (Jill): FIRST visits Jack first
        r = jack_jill_db.run(JACK_JILL_QUERY, strategy=FIRST, commit=False)
        assert r.python() == frozenset({"Peter", "Jill"})

    def test_jill_first_gives_peter_jack(self, jack_jill_db):
        r = jack_jill_db.run(JACK_JILL_QUERY, strategy=LAST, commit=False)
        assert r.python() == frozenset({"Peter", "Jack"})

    def test_side_effect_one_f_created_either_way(self, jack_jill_db):
        for strat in (FIRST, LAST):
            r = jack_jill_db.run(JACK_JILL_QUERY, strategy=strat, commit=False)
            assert len(r.ee.members("Fs")) == 1

    def test_effect_is_read_and_add_of_F(self, jack_jill_db):
        eff = jack_jill_db.effect_of(JACK_JILL_QUERY)
        assert "F" in eff.reads()
        assert "F" in eff.adds()
        assert "P" in eff.reads()

    def test_determinism_analysis_rejects(self, jack_jill_db):
        """⊢′ statically detects the non-determinism (the paper's pitch)."""
        assert not jack_jill_db.is_deterministic(JACK_JILL_QUERY)
        (witness,) = jack_jill_db.determinism_witnesses(JACK_JILL_QUERY)
        assert witness.conflicting == frozenset({"F"})

    def test_analysis_is_conservative_but_not_vacuous(self, jack_jill_db):
        # a genuinely deterministic projection is accepted
        assert jack_jill_db.is_deterministic("{ p.name | p <- Ps }")


class TestE2NonTermination:
    def test_jill_first_terminates(self, jack_jill_db):
        r = jack_jill_db.run(JACK_JILL_LOOP_QUERY, strategy=LAST, commit=False)
        assert r.python() == frozenset({"Jack", "Jill"})

    def test_jack_first_diverges(self, jack_jill_db):
        with pytest.raises(FuelExhausted):
            jack_jill_db.run(
                JACK_JILL_LOOP_QUERY, strategy=FIRST, commit=False, max_steps=2_000
            )

    def test_explorer_sees_both_behaviours(self, jack_jill_db):
        ex = jack_jill_db.explore(JACK_JILL_LOOP_QUERY, max_steps=2_000)
        assert ex.diverged
        assert [str(v) for v in ex.distinct_values()] == ['{"Jack", "Jill"}']

    def test_loop_method_typechecks(self, jack_jill_db):
        """The paper's loop method is *well-typed* — soundness says
        nothing about termination."""
        from repro.model.types import STRING

        assert jack_jill_db.schema.mtype("P", "loop").result == STRING


class TestE3IntersectionCommutation:
    """§4: one Person "Jack"/"Utah", one Employee "Jill"/"NYC"."""

    ODL = """
    class Person extends Object (extent Persons) {
        attribute string name;
        attribute string address;
    }
    class Employee extends Person (extent Employees) {
    }
    """

    CREATOR = (
        '{ new Person(name: e.name, address: "Utah") | e <- Employees }'
    )

    @pytest.fixture
    def db(self):
        from repro.db.database import Database

        d = Database.from_odl(self.ODL)
        d.insert("Person", name="Jack", address="Utah")
        d.insert("Employee", name="Jill", address="NYC")
        return d

    def _query(self, db, commuted: bool) -> SetOp:
        creator = db.parse(self.CREATOR)
        reader = db.parse("Persons")
        if commuted:
            return SetOp(SetOpKind.INTERSECT, reader, creator)
        return SetOp(SetOpKind.INTERSECT, creator, reader)

    def test_original_returns_jill_utah_singleton(self, db):
        r = db.run(self._query(db, commuted=False), commit=False)
        (only,) = r.value.items
        rec = r.oe.get(only.name)
        assert rec.attr("name").value == "Jill"
        assert rec.attr("address").value == "Utah"

    def test_original_is_deterministic(self, db):
        """The paper: "There is no non-determinism in this query"."""
        ex = db.explore(self._query(db, commuted=False))
        assert ex.deterministic()

    def test_commuted_returns_empty_set(self, db):
        r = db.run(self._query(db, commuted=True), commit=False)
        assert r.value.items == ()

    def test_effects_interfere(self, db):
        from repro.effects.checker import effect_of

        le = effect_of(db.schema, db.parse(self.CREATOR))
        re_ = effect_of(db.schema, db.parse("Persons"))
        assert le.interferes_with(re_)

    def test_commutativity_checker_refuses(self, db):
        conflicts = db.commutation_conflicts(self._query(db, commuted=False))
        assert len(conflicts) == 1

    def test_optimizer_refuses_the_rewrite(self, db):
        from repro.optimizer.planner import try_commute

        res = try_commute(db, self._query(db, commuted=False))
        assert not res.changed

    def test_safe_variant_commutes_fine(self, db):
        """Reading-only operands: commuting is licensed and harmless."""
        from repro.optimizer.equivalence import observationally_equal
        from repro.optimizer.planner import try_commute

        q = db.parse("Persons intersect Employees")
        res = try_commute(db, q)
        assert res.changed
        report = observationally_equal(db, q, res.query)
        assert report.equal
