"""Unit tests for the random generators (repro.metatheory.generators)."""

import random

import pytest

from repro.lang.ast import New
from repro.lang.traversal import walk
from repro.metatheory.generators import (
    QueryGenerator,
    make_random_schema,
    make_random_store,
)
from repro.model.types import ClassType, SetType
from repro.typing.checker import check_query
from repro.typing.context import TypeContext

SEEDS = range(20)


class TestRandomSchemas:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_schemas_are_well_formed(self, seed):
        # Schema() validates on construction; reaching here is the test
        schema = make_random_schema(random.Random(seed))
        assert schema.class_names()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_class_has_extent(self, seed):
        schema = make_random_schema(random.Random(seed))
        for c in schema.class_names():
            assert schema.extent_class(schema.class_extent(c)) == c


class TestRandomStores:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_objects_respect_schema(self, seed):
        rng = random.Random(seed)
        schema = make_random_schema(rng)
        ee, oe, _ = make_random_store(schema, rng)
        for oid, rec in oe.items():
            declared = dict(schema.atypes(rec.cname))
            assert set(a for a, _ in rec.attrs) == set(declared)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_class_inhabited(self, seed):
        rng = random.Random(seed)
        schema = make_random_schema(rng)
        ee, oe, _ = make_random_store(schema, rng)
        classes_present = {rec.cname for _, rec in oe.items()}
        assert classes_present == schema.class_names()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_object_refs_are_live_and_well_classed(self, seed):
        from repro.lang.ast import OidRef

        rng = random.Random(seed)
        schema = make_random_schema(rng)
        ee, oe, _ = make_random_store(schema, rng)
        for oid, rec in oe.items():
            for a, v in rec.attrs:
                if isinstance(v, OidRef):
                    target = oe.get(v.name)  # live
                    want = dict(schema.atypes(rec.cname))[a]
                    assert isinstance(want, ClassType)
                    assert schema.hierarchy.is_subclass(target.cname, want.name)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_extents_consistent_with_oe(self, seed):
        rng = random.Random(seed)
        schema = make_random_schema(rng)
        ee, oe, _ = make_random_store(schema, rng)
        for e in ee.names():
            for oid in ee.members(e):
                assert oe.class_of(oid) == ee.class_of(e)


class TestQueryGenerator:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_queries_are_well_typed(self, seed):
        """Type-directed generation agrees with the Figure 1 checker."""
        rng = random.Random(seed)
        schema = make_random_schema(rng)
        ee, oe, _ = make_random_store(schema, rng)
        gen = QueryGenerator(schema, oe, rng, max_depth=5)
        ctx = TypeContext(
            schema,
            vars={oid: ClassType(rec.cname) for oid, rec in oe.items()},
        )
        for _ in range(10):
            target = gen.random_type()
            q = gen.query(target)
            got = check_query(ctx, q)
            assert schema.subtype(got, target), f"{q} : {got} ≰ {target}"

    @pytest.mark.parametrize("seed", range(10))
    def test_allow_new_false_is_functional(self, seed):
        rng = random.Random(seed)
        schema = make_random_schema(rng)
        ee, oe, _ = make_random_store(schema, rng)
        gen = QueryGenerator(schema, oe, rng, allow_new=False, max_depth=5)
        for _ in range(10):
            q = gen.query(gen.random_type())
            assert not any(isinstance(n, New) for n in walk(q))

    def test_determinism_of_generation(self):
        """Same seed ⇒ same query (replayability)."""

        def one(seed):
            rng = random.Random(seed)
            schema = make_random_schema(rng)
            ee, oe, _ = make_random_store(schema, rng)
            gen = QueryGenerator(schema, oe, rng, max_depth=4)
            return gen.query(SetType(gen.random_type(depth=0)))

        assert one(99) == one(99)

    def test_depth_zero_produces_leaves(self):
        rng = random.Random(5)
        schema = make_random_schema(rng)
        ee, oe, _ = make_random_store(schema, rng)
        gen = QueryGenerator(schema, oe, rng, max_depth=0)
        from repro.lang.traversal import query_depth

        for _ in range(20):
            q = gen.query(gen.random_type(depth=0))
            assert query_depth(q) <= 2  # literals / oids / tiny records
