"""Differential certification of the compiled engine (Theorem 4).

The metatheory generators produce random *functional* (``new``-free,
method-free) well-typed queries over random schemas and stores; every
one must (a) be accepted by the compiled engine, (b) produce exactly
the small-step machine's value — no oid bijection is needed because a
functional query creates no objects — and (c) leave the environments
untouched with a dynamic effect inside the static bound (Theorem 5).

The driver's acceptance bar is ≥ 500 generated queries with zero
mismatches; this suite runs 600 (30 seeds × 20 queries).
"""

import random

import pytest

from repro.db.database import Database
from repro.metatheory.generators import (
    QueryGenerator,
    make_random_schema,
    make_random_store,
)
from repro.semantics.evaluator import evaluate

N_SEEDS = 30
QUERIES_PER_SEED = 20


def _db_for(seed: int) -> tuple[Database, QueryGenerator, random.Random]:
    rng = random.Random(77_000 + seed)
    schema = make_random_schema(rng)
    ee, oe, supply = make_random_store(schema, rng)
    db = Database(schema)
    db.ee, db.oe = ee, oe
    db.supply = supply
    gen = QueryGenerator(
        schema, oe, rng, allow_new=False, allow_methods=False, max_depth=4
    )
    return db, gen, rng


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_compiled_matches_small_step_machine(seed):
    db, gen, rng = _db_for(seed)
    for i in range(QUERIES_PER_SEED):
        q = db.parse(gen.query(gen.random_type()))
        static_t, static_eff = db.typecheck_with_effect(q)
        label = f"seed={seed} i={i} q={q}"

        # (a) every functional query is accepted by the compiled engine
        decision = db.plan_decision(q)
        assert decision.engine == "compiled", (
            f"{label}: refused ({decision.reason})"
        )

        # (b) exact value agreement with the Figure 2/4 machine
        small = evaluate(db.machine, db.ee, db.oe, q)
        compiled = db.run(q, engine="compiled", commit=False)
        assert compiled.value == small.value, label

        # (c) read-only execution over unchanged environments, dynamic
        # trace bounded by the static effect (Theorem 5)
        assert small.ee == db.ee and small.oe == db.oe, label
        assert compiled.effect.subeffect_of(static_eff), label
        assert not compiled.effect.writes(), label


def test_total_query_count_meets_acceptance_bar():
    assert N_SEEDS * QUERIES_PER_SEED >= 500


def test_repeat_runs_hit_result_cache_with_same_answer():
    db, gen, _ = _db_for(999)
    for i in range(25):
        q = db.parse(gen.query(gen.random_type()))
        first = db.run(q, commit=False)
        second = db.run(q, commit=False)
        assert first.value == second.value, f"i={i} q={q}"
    assert db._plan_cache.hits > 0
