"""Graph-shape differential certification of `traverse`.

Every query runs through all three engines — the big-step fixpoint (the
spec), the reduction machine's (Traverse) rule, and the compiled
pipeline with its GREEN / YELLOW / RED complexity routing — and all
three must agree exactly with an *independent* model-level closure
(:func:`tests.traverse_helpers.reachable`).  The compiled run's dynamic
effect must additionally stay inside the static Figure-3 bound.

Shapes are chosen to stress the fixpoint's edge rules: self-loops
(1-cycles), 2-cycles, diamonds (converging chains, where naive
frontier handling double-visits), chains deeper than 1000 nodes (well
past the GREEN unrolling bound and any plausible stack limit),
disconnected components, and mixed Ref/Node chains whose leaves lack
the traversed attribute.  Depths cover every route: 0/2/8 unroll GREEN,
9/50 take the YELLOW iterative chase, unbounded takes RED (interval
index when acyclic, chase fallback otherwise).

The grid is 6 shapes x 10 seeds x 6 depths = 360 differential queries,
plus sharded-extent and ``run_many`` batches over the same stores.
"""

from __future__ import annotations

import random

import pytest

from repro.effects.algebra import Effect, read

from tests.traverse_helpers import graph_db, oids, reachable

DEPTHS = (0, 2, 8, 9, 50, None)
SEEDS = range(10)
ENGINES = ("bigstep", "reduction", "compiled")


# ---------------------------------------------------------------------------
# shape generators: seed -> edges dict
# ---------------------------------------------------------------------------


def shape_selfloop(rng: random.Random) -> dict:
    """Self-loops sprinkled among short chains."""
    edges: dict = {}
    n = rng.randrange(4, 12)
    for i in range(n):
        kind = rng.randrange(3)
        if kind == 0:
            edges[f"s{i}"] = f"s{i}"  # 1-cycle
        elif kind == 1:
            edges[f"s{i}"] = f"s{(i + 1) % n}"
        else:
            edges[f"s{i}"] = None
    return edges


def shape_two_cycle(rng: random.Random) -> dict:
    """Disjoint 2-cycles, some with tails feeding into them."""
    edges: dict = {}
    pairs = rng.randrange(2, 6)
    for p in range(pairs):
        a, b = f"p{p}a", f"p{p}b"
        edges[a], edges[b] = b, a
        if rng.random() < 0.5:
            edges[f"p{p}t"] = a  # a tail entering the cycle
    return edges


def shape_diamond(rng: random.Random) -> dict:
    """Converging chains: many roots funnel into one shared spine."""
    edges: dict = {}
    spine = rng.randrange(3, 8)
    for i in range(spine - 1):
        edges[f"m{i}"] = f"m{i + 1}"
    edges[f"m{spine - 1}"] = None
    for r in range(rng.randrange(2, 7)):
        edges[f"d{r}"] = f"m{rng.randrange(spine)}"
    return edges


def shape_deep_chain(rng: random.Random) -> dict:
    """A single chain > 1000 nodes — far past the GREEN bound."""
    n = 1001 + rng.randrange(50)
    edges = {f"c{i:05d}": f"c{i + 1:05d}" for i in range(n - 1)}
    edges[f"c{n - 1:05d}"] = None
    return edges


def shape_disconnected(rng: random.Random) -> dict:
    """Several islands: chains, cycles, and isolated leaves."""
    edges: dict = {}
    for isle in range(rng.randrange(3, 6)):
        kind = rng.randrange(3)
        size = rng.randrange(1, 5)
        names = [f"i{isle}n{j}" for j in range(size)]
        for j, name in enumerate(names):
            if kind == 0:  # chain
                edges[name] = names[j + 1] if j + 1 < size else None
            elif kind == 1:  # ring
                edges[name] = names[(j + 1) % size]
            else:  # isolated leaves
                edges[name] = None
    return edges


def shape_mixed(rng: random.Random) -> dict:
    """Random functional graph over Ref and Node objects."""
    n = rng.randrange(6, 20)
    names = [f"x{i}" for i in range(n)]
    edges: dict = {}
    for name in names:
        if rng.random() < 0.3:
            edges[name] = None  # Node leaf: no `next` at all
        else:
            edges[name] = names[rng.randrange(n)]
    return edges


SHAPES = {
    "selfloop": shape_selfloop,
    "two_cycle": shape_two_cycle,
    "diamond": shape_diamond,
    "deep_chain": shape_deep_chain,
    "disconnected": shape_disconnected,
    "mixed": shape_mixed,
}


def pick_start(rng: random.Random, edges: dict) -> tuple[str, list[str]]:
    """A query source string and the model-level start names."""
    refs = sorted(n for n, t in edges.items() if t is not None)
    nodes = sorted(n for n, t in edges.items() if t is None)
    choice = rng.randrange(3)
    if choice == 0 and refs:
        return "refs", refs
    if choice == 1 and nodes:
        return "nodes", nodes
    pool = sorted(edges)
    starts = sorted(rng.sample(pool, min(len(pool), 3)))
    literal = "{" + ", ".join(f"@{s}" for s in starts) + "}"
    return literal, starts


def query_src(source: str, depth) -> str:
    bound = f" depth <= {depth}" if depth is not None else ""
    return f"traverse(x in {source} over next{bound})"


# ---------------------------------------------------------------------------
# the 360-query differential grid
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("seed", SEEDS)
def test_all_engines_agree_with_model(shape, seed):
    rng = random.Random(f"{shape}-{seed}")
    edges = SHAPES[shape](rng)
    db = graph_db(edges)
    for depth in DEPTHS:
        source, starts = pick_start(rng, edges)
        src = query_src(source, depth)
        expected = reachable(edges, starts, depth)
        static = db.effect_of(src)
        answers = {}
        for engine in ENGINES:
            res = db.run(src, engine=engine, commit=False)
            answers[engine] = oids(res.value)
            assert res.effect.subeffect_of(static), (
                f"{shape}/{seed}/{engine}: dynamic effect escapes static "
                f"bound for {src}"
            )
        for engine, got in answers.items():
            assert got == expected, (
                f"{shape}/{seed}/{engine}: {src} diverged from model "
                f"({len(got)} vs {len(expected)} oids)"
            )


def test_static_effect_is_closure_not_syntax():
    # the differential grid checks containment; pin the exact bound
    db = graph_db({"a": "b", "b": None})
    assert db.effect_of("traverse(x in refs over next)") == Effect.of(
        read("Node"), read("Ref")
    )


# ---------------------------------------------------------------------------
# sharded extents answer identically
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("shape", ("diamond", "mixed", "two_cycle"))
@pytest.mark.parametrize("seed", range(4))
def test_sharded_store_agrees(shape, seed):
    rng = random.Random(f"shard-{shape}-{seed}")
    edges = SHAPES[shape](rng)
    plain = graph_db(edges)
    sharded = graph_db(edges)
    sharded.shard("Ref", k=4)
    sharded.shard("Node", k=2)
    for depth in (0, 8, 9, None):
        src = query_src("refs", depth)
        a = oids(plain.run(src, commit=False).value)
        b = oids(sharded.run(src, engine="compiled", commit=False).value)
        assert a == b, f"{shape}/{seed}: sharded diverged on {src}"


# ---------------------------------------------------------------------------
# run_many batches answer as-if sequential
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(3))
def test_run_many_traversals_match_sequential(seed):
    rng = random.Random(f"batch-{seed}")
    edges = shape_mixed(rng)
    db = graph_db(edges)
    sources = []
    for depth in DEPTHS:
        source, _ = pick_start(rng, edges)
        sources.append(query_src(source, depth))
    expected = [oids(db.run(s, commit=False).value) for s in sources]
    result = db.run_many(sources, workers=4)
    assert len(result) == len(sources)
    for i, outcome in enumerate(result):
        assert outcome.ok, f"batch query {i} raised {outcome.error!r}"
        assert oids(outcome.value) == expected[i]


def test_run_many_traverse_interleaved_with_writes():
    # a traverse's widened R-closure must serialize against an A(Node)
    # writer admitted earlier — the batch answers as-if sequential
    db = graph_db({"a": "b", "b": None})
    sources = [
        "traverse(x in refs over next)",
        "new Node(tag: 99)",
        "traverse(x in nodes over next)",
    ]
    result = db.run_many(sources, workers=4)
    assert all(o.ok for o in result)
    assert oids(result[0].value) == {"@a", "@b"}
    # the third query sees the Node created by the second
    assert len(result[2].value.items) == 2
