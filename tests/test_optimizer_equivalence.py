"""Tests for the observational-equivalence oracle (all its verdicts)."""

import pytest

from repro.db.database import Database
from repro.optimizer.equivalence import observationally_equal

ODL = """
class P extends Object (extent Ps) {
    attribute int n;
    int spin() { while (true) { } }
}
"""


@pytest.fixture
def db():
    d = Database.from_odl(ODL, method_fuel=100)
    d.insert("P", n=1)
    d.insert("P", n=2)
    return d


class TestVerdicts:
    def test_equal_pure(self, db):
        r = observationally_equal(db, db.parse("1 + 1"), db.parse("2"))
        assert r.equal

    def test_equal_up_to_bijection(self, db):
        a = db.parse('{ struct(x: p.n, y: new P(n: 0)).x | p <- Ps }')
        r = observationally_equal(db, a, a)
        assert r.equal, r.reason

    def test_value_mismatch(self, db):
        r = observationally_equal(db, db.parse("{1}"), db.parse("{2}"))
        assert not r.equal

    def test_divergence_mismatch(self, db):
        a = db.parse("{ p.n | p <- Ps }")
        b = db.parse("{ p.spin() | p <- Ps }")
        r = observationally_equal(db, a, b, max_steps=300)
        assert not r.equal
        assert "divergence" in r.reason

    def test_outcome_count_mismatch(self, db):
        # one deterministic vs one genuinely racy query
        det = db.parse("{ 7 | p <- Ps }")
        racy = db.parse(
            "{ (if size(Ps) = 2 then struct(a: p.n, b: new P(n: 0)).a "
            "   else 0 - p.n) | p <- Ps }"
        )
        r = observationally_equal(db, det, racy)
        assert not r.equal

    def test_truncation_reported(self, db):
        a = db.parse("{ x | x <- {1, 2, 3, 4, 5, 6} }")
        r = observationally_equal(db, a, a, max_paths=5)
        assert not r.equal
        assert "truncated" in r.reason

    def test_side_effect_difference_detected(self, db):
        # same value, different final extents
        a = db.parse("size(Ps)")
        b = db.parse("size(Ps except { new P(n: 99) | x <- {1} })")
        r = observationally_equal(db, a, b)
        assert not r.equal

    def test_report_carries_explorations(self, db):
        r = observationally_equal(db, db.parse("1"), db.parse("1"))
        assert r.left.paths == 1
        assert r.right.paths == 1
