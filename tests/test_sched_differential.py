"""Differential certification of the scheduler (Theorems 7 & 8).

Twin databases are built from the same seed — identical schemas,
stores and oid supplies.  One runs each batch sequentially in
admission order through the plain ``Database.run`` path (the reference
semantics); the other runs the *same* batch through
``run_many(workers=4)``.  Every outcome must agree up to the paper's
oid bijection ∼, and so must the final (EE, OE) after every batch —
batches are cumulative per seed, so a single divergence would compound
and be caught by the next state check.

The driver's acceptance bar is ≥ 300 mixed read/write batches with
zero divergences; this suite runs 60 seeds × 5 batches = 300.
"""

import random

import pytest

from repro.db.database import Database
from repro.metatheory.generators import (
    QueryGenerator,
    make_random_schema,
    make_random_store,
)
from repro.semantics.bijection import equivalent, values_equivalent

N_SEEDS = 60
BATCHES_PER_SEED = 5
QUERIES_PER_BATCH = 6
WORKERS = 4


def _build_db(seed: int) -> Database:
    rng = random.Random(41_000 + seed)
    schema = make_random_schema(rng)
    ee, oe, supply = make_random_store(schema, rng)
    db = Database(schema)
    db.ee, db.oe = ee, oe
    db.supply = supply
    return db


def _twins(seed: int) -> tuple[Database, Database, QueryGenerator]:
    """Two databases with bit-identical state, plus a query generator.

    Both are grown from the same rng seed, so extents, objects *and*
    oid spellings coincide — generated queries (which may embed oid
    literals from the store) parse against either.
    """
    db_seq = _build_db(seed)
    db_par = _build_db(seed)
    assert db_seq.ee == db_par.ee and db_seq.oe == db_par.oe
    gen = QueryGenerator(
        db_seq.schema,
        db_seq.oe,
        random.Random(42_000 + seed),
        allow_new=True,
        allow_methods=True,
        max_depth=3,
    )
    return db_seq, db_par, gen


def _reference_run(db: Database, sources) -> list[tuple[str, object]]:
    """The sequential admission-order semantics the scheduler must match."""
    outs: list[tuple[str, object]] = []
    for src in sources:
        try:
            q = db.parse(src)
            db.typecheck_with_effect(q)
            res = db.run(q, typecheck=False)
            outs.append(("ok", res.value))
        except Exception as exc:  # noqa: BLE001 - the *type* is the spec
            outs.append(("error", type(exc)))
    return outs


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_run_many_matches_sequential_semantics(seed):
    db_seq, db_par, gen = _twins(seed)
    one = db_seq.parse("1")
    for batch_no in range(BATCHES_PER_SEED):
        sources = [
            gen.query(gen.random_type()) for _ in range(QUERIES_PER_BATCH)
        ]
        expected = _reference_run(db_seq, sources)
        result = db_par.run_many(sources, workers=WORKERS)
        assert len(result) == len(sources)

        for i, (status, payload) in enumerate(expected):
            o = result[i]
            label = f"seed={seed} batch={batch_no} i={i} q={sources[i]}"
            if status == "error":
                assert not o.ok, f"{label}: scheduler succeeded, reference raised"
                assert type(o.error) is payload, (
                    f"{label}: {type(o.error).__name__} != {payload.__name__}"
                )
            else:
                assert o.ok, f"{label}: scheduler raised {o.error!r}"
                assert values_equivalent(
                    payload, db_seq.oe, o.value, db_par.oe
                ), f"{label}: values diverge"

        # cumulative state equivalence up to ∼ after every batch
        assert equivalent(
            one, db_seq.ee, db_seq.oe, one, db_par.ee, db_par.oe
        ), f"seed={seed} batch={batch_no}: final EE/OE diverge"


def test_total_batch_count_meets_acceptance_bar():
    assert N_SEEDS * BATCHES_PER_SEED >= 300
