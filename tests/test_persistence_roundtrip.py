"""Property-based certification of the persistence codec and dump files.

Two layers:

* **value codec** — ``value_to_json`` / ``value_from_json`` round-trip
  over randomly grown stores (``metatheory.generators``) and over an
  adversarial gallery: non-ASCII and combining-character strings,
  records nested in sets in bags, oid graphs with cycles, duplicate
  bag elements, empty collections.  Collections are built through the
  machine's own canonical constructors, so equality after the
  round-trip is structural equality, not ∼.

* **dump corruption** — the integrity digest means a saved database
  never loads *silently wrong*: every sampled single-bit flip and
  every truncation of the dump file either loads the original value
  or raises :class:`PersistenceError`.  (The WAL twin of this property
  lives in ``test_db_wal.py``.)
"""

import json
import os
import random

import pytest

from repro.db.database import Database
from repro.db.persistence import (
    PersistenceError,
    load,
    save,
    value_from_json,
    value_to_json,
)
from repro.lang.ast import (
    BoolLit,
    IntLit,
    ListLit,
    OidRef,
    RecordLit,
    StrLit,
)
from repro.lang.values import make_bag_value, make_set_value
from repro.metatheory.generators import make_random_schema, make_random_store

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute Person friend;
}
"""


def _roundtrip(v):
    doc = value_to_json(v)
    # through real JSON text, not just the dict: encoding must survive
    return value_from_json(json.loads(json.dumps(doc, ensure_ascii=False)))


# ---------------------------------------------------------------------------
# Value codec properties
# ---------------------------------------------------------------------------


ADVERSARIAL_STRINGS = [
    "",
    "żółć — jeść",
    "☃☃ snowman twice",
    "é vs é",  # combining accent vs precomposed: distinct!
    "line\nbreak\ttab\x00nul",
    '"quoted" \\back\\slashed',
    "𝔘𝔫𝔦𝔠𝔬𝔡𝔢 beyond the BMP 🜁🜂🜃🜄",
    "‮right-to-left override",
    " leading and trailing ",
]


class TestAdversarialValues:
    @pytest.mark.parametrize("s", ADVERSARIAL_STRINGS)
    def test_string_payloads_survive_exactly(self, s):
        got = _roundtrip(StrLit(s))
        assert got == StrLit(s)
        assert got.value == s  # codepoint-exact, no normalisation

    def test_records_nested_in_sets_in_bags(self):
        rec = lambda n: RecordLit(  # noqa: E731
            (("name", StrLit(f"π{n}")), ("rank", IntLit(n)))
        )
        v = make_bag_value(
            [
                make_set_value([rec(1), rec(2)]),
                make_set_value([rec(1), rec(2)]),  # duplicate bag element
                make_set_value([]),
            ]
        )
        assert _roundtrip(v) == v

    def test_set_canonical_order_is_restored(self):
        a = make_set_value([IntLit(3), IntLit(1), IntLit(2)])
        b = make_set_value([IntLit(2), IntLit(3), IntLit(1)])
        assert a == b
        assert _roundtrip(a) == _roundtrip(b) == a

    def test_oid_heavy_record(self):
        v = RecordLit(
            (
                ("self", OidRef("@Person_0")),
                ("friends", make_set_value([OidRef("@Person_1"), OidRef("@Person_2")])),
                ("flags", ListLit((BoolLit(True), BoolLit(False)))),
            )
        )
        assert _roundtrip(v) == v

    def test_extreme_ints(self):
        for n in (0, -1, 2**63, -(2**63) - 7, 10**30):
            assert _roundtrip(IntLit(n)) == IntLit(n)

    def test_cyclic_oid_graph_survives_a_full_dump(self, tmp_path):
        db, (a, b) = _cyclic_pair()
        path = str(tmp_path / "cycle.json")
        save(db, ODL, path)
        db2 = load(path)
        assert db2.oe.get(a).attrs[1][1] == OidRef(b)
        assert db2.oe.get(b).attrs[1][1] == OidRef(a)


class TestRandomStoreRoundTrip:
    @pytest.mark.parametrize("seed", range(30))
    def test_every_stored_value_roundtrips(self, seed):
        rng = random.Random(81_000 + seed)
        schema = make_random_schema(rng)
        _, oe, _ = make_random_store(schema, rng)
        for oid, rec in oe.items():
            for attr, v in rec.attrs:
                assert _roundtrip(v) == v, f"seed={seed} {oid}.{attr}"

    @pytest.mark.parametrize("seed", range(12))
    def test_random_database_dump_roundtrips(self, seed, tmp_path):
        from repro.db.persistence import schema_to_odl

        rng = random.Random(82_000 + seed)
        schema = make_random_schema(rng)
        ee, oe, supply = make_random_store(schema, rng)
        db = Database(schema)
        db.ee, db.oe = ee, oe
        db.supply = supply
        path = str(tmp_path / "dump.json")
        save(db, schema_to_odl(schema), path)
        db2 = load(path)
        assert db2.ee == db.ee
        assert db2.oe == db.oe


# ---------------------------------------------------------------------------
# Dump corruption: loud or lossless, never silently wrong
# ---------------------------------------------------------------------------


def _cyclic_pair(name_a="Ada", name_b="Bob"):
    """A two-object reference cycle, bootstrapped at store level
    (``insert`` type-checks against live oids, so a cycle needs the
    low road — the idiom of ``test_db_persistence``)."""
    from repro.db.store import ObjectRecord

    db = Database.from_odl(ODL)
    a = db.supply.fresh("Person", db.oe)
    b = db.supply.fresh("Person", db.oe)
    db.oe = db.oe.with_object(
        a, ObjectRecord("Person", (("name", StrLit(name_a)), ("friend", OidRef(b))))
    ).with_object(
        b, ObjectRecord("Person", (("name", StrLit(name_b)), ("friend", OidRef(a))))
    )
    db.ee = db.ee.with_member("Persons", a).with_member("Persons", b)
    return db, (a, b)


def _reference_dump(tmp_path):
    db, _ = _cyclic_pair(name_a="Żułta Ada")
    path = str(tmp_path / "dump.json")
    save(db, ODL, path)
    return db, path


class TestDumpCorruption:
    def test_pristine_dump_loads(self, tmp_path):
        db, path = _reference_dump(tmp_path)
        assert load(path).oe == db.oe

    def test_every_sampled_bit_flip_is_loud_or_lossless(self, tmp_path):
        db, path = _reference_dump(tmp_path)
        raw = bytearray(open(path, "rb").read())
        rng = random.Random(17)
        positions = sorted(rng.sample(range(len(raw)), min(300, len(raw))))
        silent = []
        for pos in positions:
            for bit in (0, 5):
                flipped = bytearray(raw)
                flipped[pos] ^= 1 << bit
                with open(path, "wb") as fh:
                    fh.write(flipped)
                try:
                    db2 = load(path)
                except PersistenceError:
                    continue
                except UnicodeDecodeError:
                    continue  # utf-8 itself rejected the flip: loud enough
                if db2.oe != db.oe or db2.ee != db.ee:
                    silent.append(pos)
        assert not silent, f"silently wrong loads after flips at {silent}"

    def test_every_truncation_is_loud(self, tmp_path):
        _, path = _reference_dump(tmp_path)
        raw = open(path, "rb").read()
        for cut in range(0, len(raw), 7):
            with open(path, "wb") as fh:
                fh.write(raw[:cut])
            with pytest.raises(PersistenceError):
                load(path)

    def test_digest_flip_itself_is_detected(self, tmp_path):
        _, path = _reference_dump(tmp_path)
        doc = json.load(open(path, encoding="utf-8"))
        digest = doc["integrity"]
        doc["integrity"] = ("0" if digest[0] != "0" else "1") + digest[1:]
        json.dump(doc, open(path, "w", encoding="utf-8"))
        with pytest.raises(PersistenceError, match="integrity"):
            load(path)

    def test_payload_swap_with_valid_json_is_detected(self, tmp_path):
        # the attack JSON alone cannot catch: swap two valid values
        db, path = _reference_dump(tmp_path)
        text = open(path, encoding="utf-8").read()
        assert "Bob" in text
        swapped = text.replace("Bob", "Eve")
        open(path, "w", encoding="utf-8").write(swapped)
        with pytest.raises(PersistenceError, match="integrity"):
            load(path)
