"""Unit tests for the rewriting pipeline and optimizer equivalence."""

import pytest

from repro.db.database import Database
from repro.errors import IOQLTypeError
from repro.lang.ast import SetLit, SetOp
from repro.optimizer.equivalence import observationally_equal
from repro.optimizer.planner import explain_commutation, optimize, try_commute

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
"""


@pytest.fixture
def db():
    d = Database.from_odl(ODL)
    d.insert("Person", name="a", age=1)
    d.insert("Person", name="b", age=20)
    return d


class TestPipeline:
    def test_constant_folding_cascades(self, db):
        res = optimize(db, db.parse("if 1 + 1 = 2 then 10 else 20"))
        assert res.query == db.parse("10")
        assert "arith-fold" in res.rules_fired()
        assert "if-const-fold" in res.rules_fired()

    def test_dead_branch_removal_composes(self, db):
        res = optimize(db, db.parse("{p | p <- Persons, 1 < 2}"))
        assert res.query == db.parse("{p | p <- Persons}")

    def test_false_pred_collapse(self, db):
        res = optimize(db, db.parse("{p | p <- Persons, 2 < 1}"))
        assert res.query == SetLit(())

    def test_union_identity(self, db):
        res = optimize(db, db.parse("Persons union ({} union {})"))
        assert res.query == db.parse("Persons")

    def test_unchanged_query(self, db):
        q = db.parse("{p.name | p <- Persons, p.age < 10}")
        res = optimize(db, q)
        assert res.query == q
        assert not res.changed

    def test_fixpoint_reached(self, db):
        # deeply foldable expression requires several passes
        res = optimize(db, db.parse("((1 + 1) + (1 + 1)) * ((2 + 2) + 1)"))
        assert res.query == db.parse("20")

    def test_pushdown_step_reduction(self, db):
        """The optimizer's point: fewer reduction steps at run time."""
        q = db.parse(
            "{ struct(a: p.name, b: x) | p <- Persons, x <- {1, 2, 3}, p.age < 5 }"
        )
        res = optimize(db, q)
        assert "pred-pushdown" in res.rules_fired()
        # measured on the reduction machine: the compiled engine
        # normalises through the optimizer itself, so both forms cost
        # the same there
        before = db.run(q, commit=False, engine="reduction").steps
        after = db.run(res.query, commit=False, engine="reduction").steps
        assert after < before

    def test_rewrites_under_binders(self, db):
        q = db.parse("{ p.age + (1 + 1) | p <- Persons }")
        res = optimize(db, q)
        assert res.query == db.parse("{ p.age + 2 | p <- Persons }")

    def test_ill_typed_rejected(self, db):
        with pytest.raises(IOQLTypeError):
            optimize(db, db.parse("1 + true"))

    def test_provenance_recorded(self, db):
        res = optimize(db, db.parse("1 + 1"))
        (step,) = res.steps
        assert step.rule == "arith-fold"
        assert step.before == db.parse("1 + 1")
        assert step.after == db.parse("2")


class TestOptimizerPreservesSemantics:
    @pytest.mark.parametrize(
        "src",
        [
            "{p.name | p <- Persons, 1 = 1}",
            "{p.name | p <- Persons, 1 = 2}",
            "Persons union {}",
            "{x + 0 * 2 | x <- {1, 2}}",
            "{ struct(a: p.name, b: x) | p <- Persons, x <- {1}, p.age < 5 }",
            "size({x | x <- {y | y <- {1, 2, 3}, y < 3}})",
            "struct(a: size(Persons), b: 2 + 2).a",
        ],
    )
    def test_observational_equivalence(self, db, src):
        q = db.parse(src)
        res = optimize(db, q)
        report = observationally_equal(db, q, res.query)
        assert report.equal, report.reason


class TestCommutation:
    def test_try_commute_safe(self, db):
        res = try_commute(db, db.parse("{} union Persons"))
        assert res.changed
        assert isinstance(res.query, SetOp)
        assert res.query == db.parse("Persons union {}")

    def test_try_commute_refused(self, db):
        src = 'Persons union {new Person(name: "x", age: 0)}'
        res = try_commute(db, db.parse(src))
        assert not res.changed

    def test_explain_safe(self, db):
        msg = explain_commutation(db, db.parse("Persons intersect Persons"))
        assert msg.startswith("safe")

    def test_explain_unsafe(self, db):
        src = 'Persons intersect {new Person(name: "x", age: 0)}'
        msg = explain_commutation(db, db.parse(src))
        assert "UNSAFE" in msg
        assert "Theorem 8" in msg

    def test_explain_non_setop(self, db):
        assert "not a commutative" in explain_commutation(db, db.parse("1 + 1"))

    def test_commuted_query_equivalent(self, db):
        q = db.parse("{p | p <- Persons, p.age < 5} union Persons")
        res = try_commute(db, q)
        assert res.changed
        report = observationally_equal(db, q, res.query)
        assert report.equal, report.reason

    def test_unsafe_commute_would_change_semantics(self, db):
        """The §4 lesson: commuting interfering operands IS observable.

        The paper's shape: the left operand *creates* a Person, the
        right operand *reads* the Person extent.  Evaluated
        left-to-right the created object is already in the extent when
        it is read, so the intersection is the singleton; commuted, the
        extent is read before the creation and the intersection is
        empty.  We verify the optimizer's refusal is not over-caution.
        """
        creator = db.parse('{ new Person(name: "fresh", age: 0) | x <- {1} }')
        reader = db.parse("Persons")
        from repro.lang.ast import SetOpKind

        q1 = SetOp(SetOpKind.INTERSECT, creator, reader)
        q2 = SetOp(SetOpKind.INTERSECT, reader, creator)
        r1 = db.run(q1, commit=False)
        r2 = db.run(q2, commit=False)
        assert len(r1.value.items) == 1  # the fresh object
        assert len(r2.value.items) == 0  # the paper's "empty set!"
        report = observationally_equal(db, q1, q2, max_paths=20000)
        assert not report.equal
