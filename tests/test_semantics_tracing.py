"""Tests for the derivation tracer (repro.semantics.tracing)."""

import pytest

from repro.db.database import Database
from repro.effects.algebra import Effect, read
from repro.semantics.tracing import trace

ODL = """
class P extends Object (extent Ps) {
    attribute int n;
    int spin() { while (true) { } }
}
"""


@pytest.fixture
def db():
    d = Database.from_odl(ODL, method_fuel=100)
    d.insert("P", n=5)
    return d


def tr(db, src, **kw):
    q = db.parse(src)
    return trace(db.machine, db.ee, db.oe, q, **kw)


class TestTraceStructure:
    def test_value_outcome(self, db):
        t = tr(db, "1 + 2 + 3")
        assert t.outcome == "value"
        assert t.steps == 2
        assert str(t.final) == "6"

    def test_rules_histogram(self, db):
        t = tr(db, "{ p.n + 1 | p <- Ps }")
        hist = t.rules_used()
        assert hist["Extent"] == 1
        assert hist["ND comp"] == 1
        assert hist["Attribute"] == 1

    def test_trace_effect_accumulates(self, db):
        t = tr(db, "size(Ps)")
        assert t.effect() == Effect.of(read("P"))

    def test_extent_sizes_recorded(self, db):
        t = tr(db, 'new P(n: 7)')
        assert t.lines[-1].extents_after == {"Ps": 2}

    def test_divergence_recorded_not_raised(self, db):
        t = tr(db, "{ p.spin() | p <- Ps }", max_steps=50)
        assert t.outcome == "diverged"

    def test_stuck_recorded_not_raised(self, db):
        t = tr(db, "zz")  # unbound identifier
        assert t.outcome == "stuck"


class TestRendering:
    def test_render_shows_rules_and_effects(self, db):
        text = tr(db, "size(Ps)").render()
        assert "(Extent)" in text
        assert "R(P)" in text
        assert "value after" in text

    def test_render_truncates_long_traces(self, db):
        text = tr(db, "{ x | x <- {1, 2, 3, 4, 5} }").render(max_lines=3)
        assert "more steps" in text

    def test_render_truncates_wide_queries(self, db):
        t = tr(db, "{ struct(a: x, b: x, c: x, d: x, e: x) | x <- {1, 2} }")
        text = t.render(max_width=30)
        assert any("…" in line for line in text.splitlines())

    def test_render_truncates_the_header_too(self, db):
        # regression: max_width used to apply to reduced queries only,
        # letting a long *initial* query overflow the header line
        t = tr(db, "{ struct(a: x, b: x, c: x, d: x, e: x) | x <- {1, 2} }")
        text = t.render(max_width=30)
        header = text.splitlines()[0]
        assert len(header) <= 30 + len("      ")
        assert header.endswith("…")

    def test_shell_trace_command(self, db):
        from repro.shell import Shell

        out = Shell(db).handle(".trace 1 + 1")
        assert "(Addition)" in out

    def test_shell_trace_json_command(self, db):
        import json

        from repro.shell import Shell

        out = Shell(db).handle(".trace --json 1 + 1")
        records = [json.loads(line) for line in out.splitlines()]
        assert records == [
            {
                "kind": "event",
                "rule": "Addition",
                "effect": "∅",
                "depth": 0,
                "extents": {"Ps": 1},
            }
        ]
