"""Unit tests for the ODL class-definition parser (§2 grammar)."""

import pytest

from repro.effects.algebra import EMPTY, Effect, add, read, update
from repro.errors import ParseError, SchemaError
from repro.methods.ast import MethodBody
from repro.model.odl_parser import parse_class_defs, parse_schema
from repro.model.types import INT, STRING, ClassType


class TestBasicParsing:
    def test_minimal_class(self):
        (cd,) = parse_class_defs("class A extends Object (extent As) { }")
        assert cd.name == "A"
        assert cd.superclass == "Object"
        assert cd.extent == "As"
        assert cd.attributes == ()
        assert cd.methods == ()

    def test_attributes(self):
        (cd,) = parse_class_defs(
            """
            class Employee extends Object (extent Employees) {
                attribute int EmpID;
                attribute string name;
                attribute Manager boss;
            }
            """
        )
        assert [a.name for a in cd.attributes] == ["EmpID", "name", "boss"]
        assert cd.attributes[2].type == ClassType("Manager")

    def test_paper_example(self):
        """The §2 Employee class definition, verbatim modulo syntax."""
        schema = parse_schema(
            """
            class Person extends Object (extent Persons) {
                attribute string name;
            }
            class Manager extends Person (extent Managers) { }
            class Employee extends Person (extent Employees) {
                attribute int EmpID;
                attribute int GrossSalary;
                attribute Manager UniqueManager;
                int NetSalary(int TaxRate);
            }
            """
        )
        assert schema.extent_class("Employees") == "Employee"
        assert schema.mtype("Employee", "NetSalary").params == (INT,)

    def test_multiple_classes(self):
        defs = parse_class_defs(
            "class A extends Object (extent As) { } "
            "class B extends A (extent Bs) { }"
        )
        assert [d.name for d in defs] == ["A", "B"]

    def test_comments_allowed(self):
        parse_class_defs(
            """
            // a comment
            class A extends Object (extent As) {
                /* block */ attribute int x;
            }
            """
        )


class TestMethods:
    def test_declaration_only(self):
        (cd,) = parse_class_defs(
            "class A extends Object (extent As) { int m(int x); }"
        )
        assert cd.methods[0].body is None
        assert cd.methods[0].params == (("x", INT),)

    def test_native_marker(self):
        (cd,) = parse_class_defs(
            "class A extends Object (extent As) { int m() native; }"
        )
        assert cd.methods[0].body is None

    def test_inline_body(self):
        (cd,) = parse_class_defs(
            "class A extends Object (extent As) { attribute int x; "
            "int m() { return this.x; } }"
        )
        assert isinstance(cd.methods[0].body, MethodBody)

    def test_declared_effects(self):
        (cd,) = parse_class_defs(
            "class A extends Object (extent As) { "
            "int m() effect R(A), A(A), U(A) { return 1; } }"
        )
        assert cd.methods[0].effect == Effect.of(read("A"), add("A"), update("A"))

    def test_effect_defaults_empty(self):
        (cd,) = parse_class_defs(
            "class A extends Object (extent As) { int m(); }"
        )
        assert cd.methods[0].effect == EMPTY

    def test_bad_effect_atom(self):
        with pytest.raises(ParseError, match="effect atom"):
            parse_class_defs(
                "class A extends Object (extent As) { int m() effect X(A); }"
            )


class TestSchemaIntegration:
    def test_schema_validation_runs(self):
        with pytest.raises(SchemaError, match="cycle"):
            parse_schema(
                "class A extends B (extent As) { } "
                "class B extends A (extent Bs) { }"
            )

    def test_effectful_needs_flag(self):
        src = (
            "class A extends Object (extent As) { "
            "int m() effect R(A) { var c : int := 0; "
            "for (x in extent(As)) { c := c + 1; } return c; } }"
        )
        with pytest.raises(SchemaError, match="read-only"):
            parse_schema(src)
        parse_schema(src, allow_method_effects=True)  # ok with the flag


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "class A (extent As) { }",  # missing extends
            "class A extends Object { }",  # missing extent
            "class A extends Object (extent As) { attribute int; }",
            "class A extends Object (extent As) { int m() }",
            "class A extends Object (extent As)",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_class_defs(bad)
