"""Unit tests for MJava type/effect checking (repro.methods.typing)."""

import pytest

from repro.effects.algebra import EMPTY, Effect, add, read, update
from repro.errors import MethodError
from repro.methods.ast import AccessMode
from repro.methods.parser import parse_method_body
from repro.methods.typing import check_method, check_schema_methods
from repro.model.odl_parser import parse_schema
from repro.model.schema import MethodDef
from repro.model.types import BOOL, INT, STRING

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    attribute Person buddy;
}
"""


@pytest.fixture(scope="module")
def schema():
    return parse_schema(ODL)


def method(body_src, result=INT, params=(), effect=EMPTY):
    return MethodDef("m", params, result, parse_method_body(body_src), effect)


class TestWellTyped:
    def test_return_literal(self, schema):
        assert check_method(schema, "Person", method("{ return 1; }")) == EMPTY

    def test_this_attribute(self, schema):
        check_method(schema, "Person", method("{ return this.age; }"))

    def test_path_through_buddy(self, schema):
        check_method(
            schema, "Person", method("{ return this.buddy.age; }")
        )

    def test_params_and_locals(self, schema):
        check_method(
            schema,
            "Person",
            method(
                "{ var y : int := x + 1; return y * 2; }",
                params=(("x", INT),),
            ),
        )

    def test_branches_both_return(self, schema):
        check_method(
            schema,
            "Person",
            method("{ if (this.age < 1) { return 0; } else { return 1; } }"),
        )

    def test_while_then_return(self, schema):
        check_method(
            schema,
            "Person",
            method(
                "{ var i : int := 0; while (i < 10) { i := i + 1; } return i; }"
            ),
        )

    def test_while_true_counts_as_terminal(self, schema):
        """The §1 loop method must type-check."""
        check_method(schema, "Person", method("{ while (true) { } }", result=STRING))

    def test_object_valued_return(self, schema):
        check_method(
            schema,
            "Person",
            MethodDef(
                "m", (), schema.atype("Person", "buddy"),
                parse_method_body("{ return this; }"),
            ),
        )


class TestIllTyped:
    def test_missing_return(self, schema):
        with pytest.raises(MethodError, match="not all paths return"):
            check_method(schema, "Person", method("{ var x : int := 1; }"))

    def test_branch_missing_return(self, schema):
        with pytest.raises(MethodError, match="not all paths return"):
            check_method(
                schema, "Person", method("{ if (true) { return 1; } }")
            )

    def test_unreachable_after_return(self, schema):
        with pytest.raises(MethodError, match="unreachable"):
            check_method(
                schema, "Person", method("{ return 1; return 2; }")
            )

    def test_wrong_return_type(self, schema):
        with pytest.raises(MethodError, match="return type"):
            check_method(schema, "Person", method("{ return true; }"))

    def test_unbound_local(self, schema):
        with pytest.raises(MethodError, match="unbound"):
            check_method(schema, "Person", method("{ return zz; }"))

    def test_redeclared_local(self, schema):
        with pytest.raises(MethodError, match="redeclared"):
            check_method(
                schema,
                "Person",
                method("{ var x : int := 1; var x : int := 2; return x; }"),
            )

    def test_assign_this_rejected_by_parser(self, schema):
        from repro.errors import ParseError

        with pytest.raises(ParseError, match="assignable"):
            parse_method_body("{ this := this; return 1; }")

    def test_assign_this_rejected_by_checker(self, schema):
        # constructible directly in the AST, rejected by typing
        from repro.lang.ast import Var
        from repro.methods.ast import Assign, MethodBody, Return
        from repro.lang.ast import IntLit

        body = MethodBody((Assign("this", Var("this")), Return(IntLit(1))))
        with pytest.raises(MethodError, match="not assignable"):
            check_method(schema, "Person", MethodDef("m", (), INT, body))

    def test_assignment_type_mismatch(self, schema):
        with pytest.raises(MethodError):
            check_method(
                schema,
                "Person",
                method("{ var x : int := 1; x := true; return x; }"),
            )

    def test_unknown_attribute(self, schema):
        with pytest.raises(MethodError, match="no attribute"):
            check_method(schema, "Person", method("{ return this.salary; }"))

    def test_non_bool_condition(self, schema):
        with pytest.raises(MethodError):
            check_method(
                schema, "Person", method("{ while (1) { } return 1; }")
            )

    def test_comprehension_rejected(self, schema):
        """Note 1: the method language has no bulk types."""
        with pytest.raises(MethodError, match="not an MJava expression"):
            check_method(
                schema, "Person", method("{ return size({1, 2}); }")
            )

    def test_extent_expression_rejected(self, schema):
        with pytest.raises(MethodError, match="not an MJava value"):
            check_method(
                schema,
                "Person",
                method("{ return this == extent(Persons); }", result=BOOL),
            )


class TestAccessModes:
    def test_new_rejected_readonly(self, schema):
        body = "{ return new Person(name: \"x\", age: 1, buddy: this).age; }"
        with pytest.raises(MethodError, match="read-only"):
            check_method(schema, "Person", method(body))

    def test_attr_update_rejected_readonly(self, schema):
        with pytest.raises(MethodError, match="read-only"):
            check_method(
                schema, "Person", method("{ this.age := 1; return 1; }")
            )

    def test_foreach_rejected_readonly(self, schema):
        body = "{ var c : int := 0; for (p in extent(Persons)) { c := c + 1; } return c; }"
        with pytest.raises(MethodError, match="read-only"):
            check_method(schema, "Person", method(body))

    def test_effectful_mode_infers_effects(self, schema):
        body = "{ this.age := this.age + 1; return this.age; }"
        eff = check_method(
            schema,
            "Person",
            method(body, effect=Effect.of(update("Person"))),
            AccessMode.EFFECTFUL,
        )
        assert eff == Effect.of(update("Person"))

    def test_inferred_must_be_within_declared(self, schema):
        body = "{ this.age := 1; return 1; }"
        with pytest.raises(MethodError, match="exceeds declared"):
            check_method(schema, "Person", method(body), AccessMode.EFFECTFUL)

    def test_foreach_effect(self, schema):
        body = "{ var c : int := 0; for (p in extent(Persons)) { c := c + p.age; } return c; }"
        eff = check_method(
            schema,
            "Person",
            method(body, effect=Effect.of(read("Person"))),
            AccessMode.EFFECTFUL,
        )
        assert eff == Effect.of(read("Person"))

    def test_new_effect(self, schema):
        body = "{ return new Person(name: \"x\", age: 1, buddy: this).age; }"
        eff = check_method(
            schema,
            "Person",
            method(body, effect=Effect.of(add("Person"))),
            AccessMode.EFFECTFUL,
        )
        assert eff == Effect.of(add("Person"))


class TestSchemaSweep:
    def test_check_schema_methods(self):
        schema = parse_schema(
            """
            class A extends Object (extent As) {
                attribute int x;
                int get() { return this.x; }
                int twice() { return this.get() + this.get(); }
            }
            """
        )
        effects = check_schema_methods(schema)
        assert effects == {("A", "get"): EMPTY, ("A", "twice"): EMPTY}
