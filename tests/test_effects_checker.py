"""Unit tests for the Figure 3 effect system (repro.effects.checker)."""

import pytest

from repro.effects.algebra import EMPTY, Effect, add, read, update
from repro.effects.checker import EffectChecker, effect_of
from repro.errors import IOQLTypeError
from repro.lang.parser import parse_program, parse_query
from repro.model.odl_parser import parse_schema
from repro.model.types import INT, SetType, ClassType
from repro.typing.context import TypeContext

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    int double_age() { return this.age + this.age; }
}
class Dog extends Object (extent Dogs) {
    attribute string name;
}
"""

EFFECTFUL_ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    int census() effect R(Person) {
        var n : int := 0;
        for (p in extent(Persons)) { n := n + 1; }
        return n;
    }
}
"""


@pytest.fixture(scope="module")
def schema():
    return parse_schema(ODL)


def eff(schema, src, **var_types):
    return effect_of(schema, parse_query(src, schema=schema), var_types=var_types)


class TestValueEffects:
    """Lemma 2.1: every value has the empty effect."""

    @pytest.mark.parametrize("src", ["1", "true", '"s"', "{}", "{1, 2}", "struct(a: 1)"])
    def test_values_pure(self, schema, src):
        assert eff(schema, src) == EMPTY


class TestAtomicEffects:
    def test_extent_read(self, schema):
        assert eff(schema, "Persons") == Effect.of(read("Person"))

    def test_new_add(self, schema):
        assert eff(schema, 'new Person(name: "x", age: 1)') == Effect.of(
            add("Person")
        )

    def test_read_only_method_contributes_nothing(self, schema):
        assert eff(
            schema, "p.double_age()", p=ClassType("Person")
        ) == EMPTY

    def test_effectful_method_latent_effect(self):
        schema = parse_schema(EFFECTFUL_ODL, allow_method_effects=True)
        assert effect_of(
            schema,
            parse_query("p.census()"),
            var_types={"p": ClassType("Person")},
        ) == Effect.of(read("Person"))


class TestCompositeEffects:
    def test_union_of_operand_effects(self, schema):
        assert eff(schema, "Persons union Dogs") == Effect.of(
            read("Person"), read("Dog")
        )

    def test_conditional_joins_branches(self, schema):
        e = eff(schema, "if true then size(Persons) else size(Dogs)")
        assert e == Effect.of(read("Person"), read("Dog"))

    def test_comprehension_joins_all_parts(self, schema):
        e = eff(
            schema,
            '{ struct(a: p, b: new Dog(name: "d")) | p <- Persons, size(Dogs) = 0 }',
        )
        assert e == Effect.of(read("Person"), read("Dog"), add("Dog"))

    def test_nested_new_in_set(self, schema):
        assert eff(schema, '{new Dog(name: "d")}') == Effect.of(add("Dog"))

    def test_record_and_projection(self, schema):
        assert eff(schema, "struct(a: size(Persons)).a") == Effect.of(
            read("Person")
        )

    def test_cast_passthrough(self, schema):
        e = eff(schema, "(Person) q", q=ClassType("Person"))
        assert e == EMPTY


class TestTypeAgreement:
    """The effect checker and the plain checker agree on types."""

    @pytest.mark.parametrize(
        "src",
        [
            "1 + 2",
            "Persons",
            "{p.name | p <- Persons, p.age < 10}",
            'new Dog(name: "d")',
            "size(Persons union Persons)",
            "if 1 = 1 then {1} else {}",
        ],
    )
    def test_types_match_figure1(self, schema, src):
        from repro.typing.checker import check_query

        q = parse_query(src, schema=schema)
        ctx = TypeContext(schema)
        t1 = check_query(ctx, q)
        t2, _ = EffectChecker().check(ctx, q)
        assert t1 == t2

    def test_type_errors_match(self, schema):
        q = parse_query("1 + true", schema=schema)
        ctx = TypeContext(schema)
        with pytest.raises(IOQLTypeError):
            EffectChecker().check(ctx, q)


class TestDefinitionsWithLatentEffects:
    def test_latent_effect_recorded(self, schema):
        p = parse_program(
            "define all_persons() as Persons; 1", schema=schema
        )
        ctx = TypeContext(schema)
        ftype = EffectChecker().check_definition(ctx, p.definitions[0])
        assert ftype.effect == Effect.of(read("Person"))

    def test_latent_effect_released_at_call(self, schema):
        p = parse_program(
            "define all_persons() as Persons; size(all_persons())",
            schema=schema,
        )
        t, e = EffectChecker().check_program(schema, p)
        assert t == INT
        assert e == Effect.of(read("Person"))

    def test_unapplied_definition_is_pure(self, schema):
        # merely *having* a definition costs nothing; D carries the
        # latent effect for call sites
        p = parse_program("define f() as Persons; 1", schema=schema)
        _, e = EffectChecker().check_program(schema, p)
        assert e == EMPTY

    def test_pure_definition(self, schema):
        p = parse_program("define inc(x: int) as x + 1; inc(1)", schema=schema)
        _, e = EffectChecker().check_program(schema, p)
        assert e == EMPTY
