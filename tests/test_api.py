"""Tests for the top-level convenience API (repro.api / repro.__init__)."""

import pytest

import repro
from repro.api import (
    effects,
    explore,
    is_deterministic,
    open_database,
    optimize,
    run,
    typecheck,
)

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
"""


@pytest.fixture
def db():
    d = open_database(ODL)
    d.insert("Person", name="Ada", age=36)
    return d


class TestApiSurface:
    def test_open_database_default_readonly(self, db):
        from repro.methods.ast import AccessMode

        assert db.method_mode is AccessMode.READ_ONLY

    def test_open_database_effectful(self):
        from repro.methods.ast import AccessMode

        d = open_database(ODL, effectful_methods=True)
        assert d.method_mode is AccessMode.EFFECTFUL

    def test_typecheck(self, db):
        assert str(typecheck(db, "{p.age | p <- Persons}")) == "set<int>"

    def test_effects(self, db):
        assert "R(Person)" in str(effects(db, "Persons"))

    def test_run_commits(self, db):
        run(db, 'new Person(name: "x", age: 1)')
        assert len(db.extent("Persons")) == 2

    def test_run_strategy(self, db):
        assert run(db, "{p.name | p <- Persons}", strategy=repro.LAST).python() == frozenset({"Ada"})

    def test_explore(self, db):
        assert explore(db, "{p.age | p <- Persons}").deterministic()

    def test_is_deterministic(self, db):
        assert is_deterministic(db, "{p.age | p <- Persons}")

    def test_optimize(self, db):
        assert optimize(db, "2 * 3") == db.parse("6")


class TestPackageExports:
    def test_dunder_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_error_hierarchy(self):
        assert issubclass(repro.IOQLTypeError, repro.ReproError)
        assert issubclass(repro.FuelExhausted, repro.EvalError)
        assert issubclass(repro.StuckError, repro.EvalError)
        assert issubclass(repro.SchemaError, repro.ReproError)
        assert issubclass(repro.ParseError, repro.ReproError)

    def test_parse_error_position(self):
        err = repro.ParseError("boom", 3, 7)
        assert err.line == 3 and err.column == 7
        assert "3:7" in str(err)

    def test_fuel_exhausted_steps(self):
        assert repro.FuelExhausted(steps=12).steps == 12

    def test_strategies_exported(self):
        assert repro.FIRST.choose((1, 2, 3)) == 0
        assert repro.LAST.choose((1, 2, 3)) == 2

    def test_parse_helpers(self):
        assert repro.parse_query("1 + 1") == repro.parse_query("1 + 1")
        assert repro.pretty(repro.parse_query("1+1")) == "1 + 1"
        t = repro.parse_type("set<int>")
        assert str(t) == "set<int>"

    def test_parse_schema_export(self):
        schema = repro.parse_schema(ODL)
        assert "Person" in schema

    def test_to_from_value(self):
        assert repro.from_value(repro.to_value({1, 2})) == frozenset({1, 2})
