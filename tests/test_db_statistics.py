"""Tests for the optimizer statistics catalog (repro.db.statistics).

The catalog follows the same Theorem 5 effect discipline as the
plan/result caches and attribute indexes: ``A``-only commits fold or
promote, ``U`` commits drop everything, unattributed changes lazily
invalidate via the store version.  The stats *epoch* is the plan-cache
staleness signal: it bumps only on geometric row-count drift.
"""

import pytest

from repro.db.database import Database
from repro.db.statistics import (
    EXACT_DISTINCT_CAP,
    HISTOGRAM_BUCKETS,
    MCV_SIZE,
    SKETCH_K,
    ColumnStats,
    DistinctSketch,
    StatisticsCatalog,
    join_selectivity,
)
from repro.effects.algebra import Effect, add, update
from repro.lang.ast import IntLit, StrLit

ODL = """
class Item extends Object (extent Items) {
    attribute int price;
    attribute string label;
}
class Other extends Object (extent Others) {
    attribute int n;
}
"""


@pytest.fixture
def db():
    d = Database.from_odl(ODL)
    for i in range(40):
        d.insert("Item", price=i % 10, label=f"l{i % 4}")
    d.insert("Other", n=1)
    return d


class TestDistinctSketch:
    def test_exact_below_k(self):
        s = DistinctSketch(k=16)
        for i in range(10):
            s.add(IntLit(i))
        assert s.estimate() == 10.0

    def test_duplicates_collapse(self):
        s = DistinctSketch(k=16)
        for _ in range(100):
            s.add(IntLit(7))
        assert s.estimate() == 1.0

    def test_estimate_within_tolerance_beyond_k(self):
        s = DistinctSketch()
        n = 20_000
        for i in range(n):
            s.add(IntLit(i))
        est = s.estimate()
        # KMV with k=256 has ~1/sqrt(k) ≈ 6% relative error; allow 3 sigma
        assert abs(est - n) / n < 0.2

    def test_sketch_is_insertion_order_independent(self):
        a, b = DistinctSketch(), DistinctSketch()
        for i in range(2000):
            a.add(IntLit(i))
        for i in reversed(range(2000)):
            b.add(IntLit(i))
        assert a.estimate() == b.estimate()


class TestColumnStats:
    def _build(self, db, extent="Items", attr="price"):
        return ColumnStats.build(
            extent, attr, db.oe, db.ee.members(extent)
        )

    def test_rows_and_distinct(self, db):
        col = self._build(db)
        assert col.rows == 40
        assert col.distinct() == 10.0
        assert col.eq_selectivity() == pytest.approx(0.1)

    def test_string_column_has_no_histogram(self, db):
        col = self._build(db, attr="label")
        assert col.distinct() == 4.0
        assert not col.has_histogram

    def test_histogram_range_selectivity(self, db):
        col = self._build(db)  # price values 0..9, uniform
        assert col.has_histogram
        assert col.range_selectivity("<", 5) == pytest.approx(0.5, abs=0.1)
        assert col.range_selectivity(">=", 5) == pytest.approx(0.5, abs=0.1)
        assert col.range_selectivity("<=", 9) == 1.0
        # below the minimum: (near) nothing survives
        assert col.range_selectivity("<", 0) <= 0.05

    def test_histogram_bucket_cap(self, db):
        big = Database.from_odl(ODL)
        for i in range(500):
            big.insert("Item", price=i, label="x")
        col = ColumnStats.build(
            "Items", "price", big.oe, big.ee.members("Items")
        )
        assert 0 < len(col._bounds) <= HISTOGRAM_BUCKETS
        assert col.le_fraction(249) == pytest.approx(0.5, abs=0.07)

    def test_fold_refines_in_place(self, db):
        col = self._build(db)
        new = db.insert("Item", price=99, label="z")
        col.fold(db.oe, [new.name])
        assert col.rows == 41
        assert col.distinct() == 11.0
        # 99 extends the top bucket, so <=99 still covers everything
        assert col.le_fraction(99) == 1.0

    def test_fold_nonint_drops_histogram(self, db):
        col = self._build(db, attr="label")
        assert not col.has_histogram
        col2 = self._build(db)
        # simulate a non-numeric value arriving in a numeric column
        col2._numeric = True
        new = db.insert("Item", price=5, label="w")
        col2.fold(db.oe, [new.name])
        assert col2.rows == 41

    def test_eq_selectivity_uses_measured_frequency(self, db):
        col = self._build(db)  # price i % 10: every value holds 4 of 40
        assert col.eq_selectivity(IntLit(3)) == pytest.approx(0.1)
        # absent value: at most ~one row, not rows/distinct
        assert col.eq_selectivity(IntLit(999)) == pytest.approx(1 / 40)
        # no comparand: the uniform 1/distinct guess survives
        assert col.eq_selectivity() == pytest.approx(0.1)

    def test_eq_selectivity_sees_skew(self):
        skew = Database.from_odl(ODL)
        for i in range(40):  # price 0 holds 90% of the rows
            skew.insert("Item", price=0 if i % 10 != 9 else i, label="x")
        col = ColumnStats.build(
            "Items", "price", skew.oe, skew.ee.members("Items")
        )
        assert col.eq_selectivity(IntLit(0)) == pytest.approx(0.9)
        assert col.eq_selectivity(IntLit(9)) == pytest.approx(1 / 40)

    def test_mcv_survives_sketch_transition(self):
        col = ColumnStats("X", "a")
        hot = IntLit(-1)
        for _ in range(1000):
            col._note_distinct(hot)
            col.rows += 1
        for i in range(EXACT_DISTINCT_CAP + 100):
            col._note_distinct(IntLit(i))
            col.rows += 1
        assert col._freq_frozen
        assert len(col._freq) <= MCV_SIZE
        # the hot value stays priced by its count, not 1/distinct
        assert col.eq_selectivity(hot) >= 1000 / col.rows * 0.99
        # a cold value gets the residual mass, far below the MCV hit
        assert col.eq_selectivity(IntLit(3)) < col.eq_selectivity(hot) / 100

    def test_join_selectivity_exact_frequencies(self, db):
        prices = self._build(db)  # 0..9, 4 rows each (40 rows)
        other = ColumnStats.build(
            "Others", "n", db.oe, db.ee.members("Others")
        )  # the single value 1
        # matches = 4 rows (price = 1) x 1 row -> 4 / (40 * 1)
        assert join_selectivity(prices, other) == pytest.approx(0.1)
        assert join_selectivity(other, prices) == pytest.approx(0.1)

    def test_join_selectivity_falls_back_when_frozen(self, db):
        prices = self._build(db)
        frozen = self._build(db)
        frozen._freq_frozen = True
        assert join_selectivity(prices, frozen) == pytest.approx(
            1 / prices.distinct()
        )

    def test_exact_to_sketch_transition(self):
        col = ColumnStats("X", "a")
        for i in range(EXACT_DISTINCT_CAP + 100):
            col._note_distinct(IntLit(i))
        assert col._exact is None
        n = EXACT_DISTINCT_CAP + 100
        assert abs(col.distinct() - n) / n < 0.2


class TestCatalogMaintenance:
    def test_lazy_build_and_version_cache(self, db):
        cat = db._stats
        col = cat.column(db.ee, db.oe, db._state_version, "Items", "price")
        again = cat.column(db.ee, db.oe, db._state_version, "Items", "price")
        assert col is again  # cached at this version

    def test_add_commit_folds_forward(self, db):
        db.analyze()
        before = db._stats.column(
            db.ee, db.oe, db._state_version, "Items", "price"
        )
        db.insert("Item", price=77, label="q")
        after = db._stats.column(
            db.ee, db.oe, db._state_version, "Items", "price"
        )
        # the fold kept the same object and refined it — no rebuild
        assert after is before
        assert after.rows == 41
        assert after.distinct() == 11.0

    def test_add_commit_promotes_untouched_extents(self, db):
        db.analyze()
        other_before = db._stats.column(
            db.ee, db.oe, db._state_version, "Others", "n"
        )
        db.insert("Item", price=1, label="a")
        other_after = db._stats.column(
            db.ee, db.oe, db._state_version, "Others", "n"
        )
        assert other_after is other_before

    def test_update_effect_drops_all_columns(self, db):
        db.analyze()
        assert len(db._stats) > 0
        db._stats.note_write(
            db.schema, Effect.of(update("Item")), 0, 1
        )
        assert len(db._stats) == 0

    def test_add_without_oids_evicts_touched_extent(self, db):
        db.analyze()
        pre = db._state_version
        db._stats.note_write(db.schema, Effect.of(add("Item")), pre, pre + 1)
        snap = db._stats.snapshot()
        assert "Items.price" not in snap["columns"]
        assert "Others.n" in snap["columns"]

    def test_unattributed_change_invalidates_lazily(self, db):
        v = db._state_version
        col = db._stats.column(db.ee, db.oe, v, "Items", "price")
        col2 = db._stats.column(db.ee, db.oe, v + 1, "Items", "price")
        assert col2 is not col  # version mismatch forces a rebuild


class TestStatsEpoch:
    def test_epoch_stable_under_small_growth(self, db):
        e0 = db._stats.observe(db.ee)
        db.insert("Item", price=3, label="b")
        assert db._stats.observe(db.ee) == e0

    def test_epoch_bumps_on_geometric_growth(self, db):
        e0 = db._stats.observe(db.ee)
        for i in range(100):  # 40 -> 140 rows: > 2x + 8
            db.insert("Item", price=i, label="c")
        assert db._stats.observe(db.ee) > e0

    def test_epoch_bumps_from_empty(self):
        d = Database.from_odl(ODL)
        e0 = d._stats.observe(d.ee)
        for i in range(20):
            d.insert("Other", n=i)
        assert d._stats.observe(d.ee) > e0

    def test_observe_is_idempotent(self, db):
        e1 = db._stats.observe(db.ee)
        e2 = db._stats.observe(db.ee)
        assert e1 == e2


class TestAnalyzeSurface:
    def test_analyze_returns_all_columns(self, db):
        summary = db.analyze()
        assert set(summary) == {
            "Items.price",
            "Items.label",
            "Others.n",
        }
        assert summary["Items.price"]["rows"] == 40
        assert summary["Items.price"]["distinct"] == 10.0
        assert summary["Items.label"]["histogram_buckets"] == 0

    def test_snapshot_is_json_safe(self, db):
        import json

        db.analyze()
        snap = db._stats.snapshot()
        json.dumps(snap)
        assert snap["analyzed_columns"] == 3

    def test_health_has_optimizer_section(self, db):
        db.analyze()
        h = db.health()
        assert h["optimizer"]["analyzed_columns"] == 3
        assert h["optimizer"]["replans"] == 0
        assert h["optimizer"]["replan_ratio"] == 4.0


class TestDegenerateHistograms:
    """Regression pins for the degenerate paths feeding traversal
    fan-out estimates (ISSUE 10 satellite): a constant column collapses
    every equi-depth bucket to equal bounds (``hi == lo``), and a KMV
    sketch holding fewer than ``k`` values must stay exact.  Extensive
    randomized probing certified both paths correct; these tests keep
    them that way.
    """

    def constant_column(self, value=7, rows=25):
        db = Database.from_odl(ODL)
        for _ in range(rows):
            db.insert("Item", price=value, label="c")
        return ColumnStats.build("Items", "price", db.oe, db.ee.members("Items"))

    def test_single_bucket_equal_bounds(self):
        col = self.constant_column(7)
        assert col.has_histogram
        # the whole mass sits at 7: a step function, not a ramp
        assert col.le_fraction(6) == 0.0
        assert col.le_fraction(7) == 1.0
        assert col.le_fraction(8) == 1.0

    def test_single_bucket_range_ops(self):
        col = self.constant_column(7)
        assert col.range_selectivity("<", 7) == 0.0
        assert col.range_selectivity("<=", 7) == 1.0
        assert col.range_selectivity(">", 7) == 0.0
        assert col.range_selectivity(">=", 7) == 1.0

    def test_negative_constant(self):
        col = self.constant_column(-3)
        assert col.le_fraction(-4) == 0.0
        assert col.le_fraction(-3) == 1.0

    def test_two_value_column_boundaries_exact(self):
        db = Database.from_odl(ODL)
        for i in range(20):
            db.insert("Item", price=0 if i < 10 else 100, label="x")
        col = ColumnStats.build("Items", "price", db.oe, db.ee.members("Items"))
        assert col.le_fraction(-1) == 0.0
        assert col.le_fraction(100) == 1.0
        assert col.le_fraction(0) == pytest.approx(0.5, abs=0.05)

    def test_le_fraction_monotone(self):
        db = Database.from_odl(ODL)
        import random

        rng = random.Random(42)
        for _ in range(200):
            db.insert("Item", price=rng.randrange(-50, 50), label="x")
        col = ColumnStats.build("Items", "price", db.oe, db.ee.members("Items"))
        prev = 0.0
        for v in range(-60, 61):
            cur = col.le_fraction(v)
            assert cur >= prev - 1e-12, f"non-monotone at {v}"
            prev = cur
        assert col.le_fraction(-51) == 0.0
        assert col.le_fraction(50) == 1.0

    def test_monotone_survives_fold(self):
        db = Database.from_odl(ODL)
        for i in range(30):
            db.insert("Item", price=i, label="x")
        col = ColumnStats.build("Items", "price", db.oe, db.ee.members("Items"))
        new = db.insert("Item", price=500, label="x")
        col.fold(db.oe, [new.name])
        prev = 0.0
        for v in range(-5, 510, 7):
            cur = col.le_fraction(v)
            assert cur >= prev - 1e-12
            prev = cur
        assert col.le_fraction(500) == 1.0


class TestSketchBelowK:
    @pytest.mark.parametrize("k", (2, 3, 4, 8, 16))
    def test_exact_below_k(self, k):
        s = DistinctSketch(k=k)
        for i in range(k - 1):
            s.add(IntLit(i))
        assert s.estimate() == float(k - 1)

    @pytest.mark.parametrize("k", (2, 4, 16))
    def test_duplicates_do_not_inflate(self, k):
        s = DistinctSketch(k=k)
        for _ in range(3):
            for i in range(k - 1):
                s.add(IntLit(i))
        assert s.estimate() == float(k - 1)

    def test_empty_sketch(self):
        assert DistinctSketch(k=4).estimate() == 0.0

    def test_exactly_at_k_boundary(self):
        # n == k is the first point the estimator may engage; it must
        # stay within trivial error of the truth
        k = 8
        s = DistinctSketch(k=k)
        for i in range(k):
            s.add(IntLit(i))
        assert s.estimate() >= float(k) * 0.5


class TestTraverseFanOut:
    """The stats feed `traverse` cardinality: distinct(next) caps the
    per-hop fan-out (see CostModel.cardinality)."""

    def test_distinct_caps_traverse_estimate(self):
        from repro.optimizer.cost import CostModel
        from tests.traverse_helpers import graph_db

        edges = {f"r{i}": "hub" for i in range(30)}
        edges["hub"] = None
        db = graph_db(edges)
        model = CostModel.from_database(db)
        bounded = db.parse("traverse(x in refs over next depth <= 5)")
        naive = 30.0 * 6  # |start| * (depth + 1) without the fan-out cap
        assert model.cardinality(bounded) < naive
        assert model.cardinality(bounded) <= 31.0
