"""Tests for the reduction-event stream (repro.obs.events) and the
JSONL/Prometheus exporters it feeds."""

import pytest

from repro import obs
from repro.db.database import Database
from repro.effects.algebra import Effect, read
from repro.obs import events as obs_events
from repro.obs.export import (
    event_dict,
    export_jsonl,
    read_jsonl,
)

ODL = """
class P extends Object (extent Ps) {
    attribute int n;
}
"""


@pytest.fixture
def db():
    d = Database.from_odl(ODL)
    d.insert("P", n=5)
    return d


@pytest.fixture
def clean_obs():
    obs.enable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestCapture:
    def test_capture_collects_machine_steps(self, db):
        with obs_events.capture() as evs:
            result = db.run("{ p.n + 1 | p <- Ps }", engine="reduction")
        assert len(evs) == result.steps
        rules = [ev.rule for ev in evs]
        assert "Extent" in rules
        assert "ND comp" in rules

    def test_event_fields(self, db):
        with obs_events.capture() as evs:
            db.run("size(Ps)", engine="reduction")
        extent_ev = next(ev for ev in evs if ev.rule == "Extent")
        assert extent_ev.effect == Effect.of(read("P"))
        assert extent_ev.effect_label() == "{R(P)}"
        assert extent_ev.extents == (("Ps", 1),)
        assert extent_ev.depth >= 1  # Ps sits under size(•)

    def test_pure_step_renders_empty_effect(self, db):
        with obs_events.capture() as evs:
            db.run("1 + 2", engine="reduction")
        assert [ev.effect_label() for ev in evs] == ["∅"]

    def test_nested_captures_both_receive(self, db):
        with obs_events.capture() as outer:
            with obs_events.capture() as inner:
                db.run("1 + 2", engine="reduction")
        assert len(outer) == len(inner) == 1

    def test_capture_detaches_on_exit(self, db):
        with obs_events.capture():
            pass
        assert not obs_events.active()


class TestDisabledMode:
    def test_no_sinks_means_inactive(self):
        assert not obs_events.active()

    def test_global_stream_stays_empty_when_disabled(self, db):
        db.run("{ p.n | p <- Ps }", engine="reduction")
        assert len(obs.STREAM) == 0

    def test_zero_event_construction_when_disabled(self, db, monkeypatch):
        """The no-op guard returns before allocating any event object."""

        def boom(*a, **kw):  # pragma: no cover - must never run
            raise AssertionError("ReductionEvent constructed while disabled")

        monkeypatch.setattr(obs_events, "ReductionEvent", boom)
        result = db.run("{ p.n + 1 | p <- Ps }", engine="reduction")
        assert result.steps > 0

    def test_rule_counters_untouched_when_disabled(self, db):
        db.run("{ p.n | p <- Ps }", engine="reduction")
        assert obs.REGISTRY.counter_values("rule_fired_total") == {}


class TestGlobalStream:
    def test_enable_routes_into_global_stream(self, db, clean_obs):
        result = db.run("{ p.n | p <- Ps }", engine="reduction")
        assert len(obs.STREAM) == result.steps

    def test_rule_counters_sum_to_step_count(self, db, clean_obs):
        result = db.run("{ p.n + 1 | p <- Ps, p.n > 0 }", engine="reduction")
        total = sum(
            obs.REGISTRY.counter_values("rule_fired_total").values()
        )
        assert total == result.steps

    def test_stream_bounded_drops_new(self):
        stream = obs_events.EventStream(limit=2)
        ev = obs_events.ReductionEvent("r", Effect.of(), 0, ())
        for _ in range(5):
            stream.append(ev)
        assert len(stream) == 2
        assert stream.dropped == 3


class TestJsonlRoundTrip:
    def test_event_dict_shape(self, db):
        with obs_events.capture() as evs:
            db.run("size(Ps)", engine="reduction")
        d = event_dict(evs[0])
        assert d["kind"] == "event"
        assert d["rule"] == "Extent"
        assert d["extents"] == {"Ps": 1}
        assert isinstance(d["depth"], int)

    def test_export_and_read_back(self, db, clean_obs, tmp_path):
        db.run("{ p.n | p <- Ps }", engine="reduction")
        path = str(tmp_path / "out.jsonl")
        n = export_jsonl(path)
        records = read_jsonl(path)
        assert len(records) == n > 0
        kinds = {r["kind"] for r in records}
        assert {"span", "event", "counter"} <= kinds
        # every record is self-describing JSON with a kind tag
        assert all("kind" in r for r in records)

    def test_export_contains_phase_spans(self, db, clean_obs, tmp_path):
        db.run("{ p.n | p <- Ps }", engine="reduction")
        db.effect_of("size(Ps)")
        db.optimize("{ p.n | p <- Ps, true }")
        path = str(tmp_path / "out.jsonl")
        export_jsonl(path)
        spans = {
            r["name"] for r in read_jsonl(path) if r["kind"] == "span"
        }
        assert {
            "query", "parse", "typecheck", "effects", "optimize",
            "eval", "commit",
        } <= spans

    def test_trace_renders_from_events(self, db):
        """The refactored tracer consumes the same event stream."""
        from repro.semantics.tracing import trace

        q = db.parse("{ p.n | p <- Ps }")
        t = trace(db.machine, db.ee, db.oe, q)
        with obs_events.capture() as evs:
            t2 = trace(db.machine, db.ee, db.oe, q)
        assert t.steps == t2.steps == len(evs)
        assert [line.rule for line in t2.lines] == [ev.rule for ev in evs]
