"""Tests of the executable Theorems 1–8 over random and curated configs."""

import random

import pytest

from repro.lang.parser import parse_query
from repro.metatheory.generators import (
    QueryGenerator,
    make_random_schema,
    make_random_store,
)
from repro.metatheory.theorems import (
    check_determinism,
    check_functional_determinism,
    check_progress,
    check_safe_commutativity,
    check_subject_reduction,
    check_type_soundness,
    is_functional,
)
from repro.model.types import SetType
from repro.semantics.machine import Machine
from repro.semantics.strategy import LAST, RandomStrategy

SEEDS = range(15)


def setup(seed):
    rng = random.Random(seed)
    schema = make_random_schema(rng)
    ee, oe, supply = make_random_store(schema, rng)
    machine = Machine(schema, oid_supply=supply)
    return rng, schema, ee, oe, machine


class TestTheorem1And5SubjectReduction:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_queries(self, seed):
        rng, schema, ee, oe, m = setup(seed)
        gen = QueryGenerator(schema, oe, rng, max_depth=4)
        for _ in range(5):
            q = gen.query(gen.random_type())
            report = check_subject_reduction(m, ee, oe, q)
            assert report, report.detail

    @pytest.mark.parametrize("seed", range(5))
    def test_alternate_strategies(self, seed):
        rng, schema, ee, oe, m = setup(seed)
        gen = QueryGenerator(schema, oe, rng, max_depth=4)
        q = gen.query(SetType(gen.random_type(depth=0)))
        for strat in (LAST, RandomStrategy(seed)):
            report = check_subject_reduction(m, ee, oe, q, strategy=strat)
            assert report, report.detail

    def test_detects_ill_typed_input(self):
        _, schema, ee, oe, m = setup(0)
        report = check_subject_reduction(m, ee, oe, parse_query("1 + true"))
        assert not report


class TestTheorem2And6Progress:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_queries(self, seed):
        rng, schema, ee, oe, m = setup(seed)
        gen = QueryGenerator(schema, oe, rng, max_depth=4)
        for _ in range(5):
            report = check_progress(m, ee, oe, gen.query(gen.random_type()))
            assert report, report.detail


class TestTheorem3Soundness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_never_stuck(self, seed):
        rng, schema, ee, oe, m = setup(seed)
        gen = QueryGenerator(schema, oe, rng, max_depth=4)
        for _ in range(5):
            q = gen.query(gen.random_type())
            report = check_type_soundness(
                m, ee, oe, q, strategies=(LAST, RandomStrategy(seed))
            )
            assert report, report.detail

    def test_ill_typed_queries_can_get_stuck(self):
        """The converse: without typing, stuckness is reachable —
        soundness is not vacuous."""
        from repro.errors import StuckError
        from repro.semantics.machine import Config

        _, schema, ee, oe, m = setup(1)
        bad = parse_query("size(1 + true)")
        with pytest.raises(StuckError):
            cfg = Config(ee, oe, bad)
            for _ in range(10):
                cfg = m.step(cfg).config


class TestTheorem4FunctionalQueries:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_new_free_queries_strictly_deterministic(self, seed):
        rng, schema, ee, oe, m = setup(seed)
        gen = QueryGenerator(schema, oe, rng, allow_new=False, max_depth=3)
        q = gen.query(SetType(gen.random_type(depth=0)))
        report = check_functional_determinism(m, ee, oe, q, max_paths=5_000)
        assert report, report.detail

    def test_is_functional_predicate(self):
        assert is_functional(parse_query("{x | x <- s}"))
        assert not is_functional(parse_query("new C(a: 1)"))

    def test_is_functional_scans_definitions(self):
        from repro.lang.parser import parse_program

        p = parse_program("define f() as new C(a: 1); 1")
        assert not is_functional(p.query, {d.name: d for d in p.definitions})

    def test_premise_violation_reported(self):
        _, schema, ee, oe, m = setup(2)
        cname = sorted(schema.class_names())[0]
        fields = ", ".join(
            f"{a}: 1" for a, _ in schema.atypes(cname)
        )
        q = parse_query(f"new {cname}({fields})")
        report = check_functional_determinism(m, ee, oe, q)
        assert not report
        assert "premise" in report.detail


class TestTheorem7Determinism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_accepted_queries_agree_up_to_bijection(self, seed):
        rng, schema, ee, oe, m = setup(seed)
        gen = QueryGenerator(schema, oe, rng, allow_new=True, max_depth=3)
        q = gen.query(SetType(gen.random_type(depth=0)))
        report = check_determinism(m, ee, oe, q, max_paths=5_000)
        assert report, f"{report.detail}\nquery: {q}"

    def test_rejected_query_is_vacuous_not_failing(self, jack_jill_db):
        from tests.conftest import JACK_JILL_QUERY

        db = jack_jill_db
        q = db.parse(JACK_JILL_QUERY)
        report = check_determinism(db.machine, db.ee, db.oe, q)
        assert report
        assert "vacuous" in report.detail


class TestTheorem8SafeCommutativity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_unions(self, seed):
        from repro.lang.ast import SetOp, SetOpKind

        rng, schema, ee, oe, m = setup(seed)
        gen = QueryGenerator(schema, oe, rng, max_depth=3)
        elem = gen.random_type(depth=0)
        q = SetOp(
            SetOpKind.UNION,
            gen.query(SetType(elem)),
            gen.query(SetType(elem)),
        )
        report = check_safe_commutativity(m, ee, oe, q, max_paths=5_000)
        assert report, f"{report.detail}\nquery: {q}"

    def test_non_setop_is_vacuous(self):
        _, schema, ee, oe, m = setup(3)
        report = check_safe_commutativity(m, ee, oe, parse_query("1 + 1"))
        assert report
        assert "vacuous" in report.detail
