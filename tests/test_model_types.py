"""Unit tests for the IOQL type grammar (repro.model.types)."""

import pytest

from repro.effects.algebra import EMPTY, Effect, read
from repro.model.types import (
    BOOL,
    EMPTY_SET_T,
    INT,
    NEVER,
    OBJECT,
    STRING,
    ClassType,
    FuncType,
    RecordType,
    SetType,
    is_data_model_type,
    record,
    set_of,
)


class TestPrimitives:
    def test_singletons_equal(self):
        assert INT == INT
        assert BOOL != INT
        assert STRING != BOOL

    def test_is_primitive(self):
        assert INT.is_primitive()
        assert BOOL.is_primitive()
        assert STRING.is_primitive()
        assert not ClassType("C").is_primitive()
        assert not SetType(INT).is_primitive()

    def test_str(self):
        assert str(INT) == "int"
        assert str(BOOL) == "bool"
        assert str(STRING) == "string"
        assert str(NEVER) == "never"


class TestStructured:
    def test_set_str(self):
        assert str(SetType(SetType(INT))) == "set<set<int>>"

    def test_record_preserves_order(self):
        r = RecordType((("b", INT), ("a", BOOL)))
        assert r.labels() == ("b", "a")

    def test_record_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            RecordType((("a", INT), ("a", BOOL)))

    def test_record_field_type(self):
        r = RecordType.of(x=INT, y=STRING)
        assert r.field_type("x") == INT
        assert r.field_type("missing") is None

    def test_record_of_matches_record(self):
        assert RecordType.of(a=INT) == record([("a", INT)])

    def test_set_of(self):
        assert set_of(INT) == SetType(INT)

    def test_empty_set_type(self):
        assert EMPTY_SET_T == SetType(NEVER)

    def test_class_names_collects_deep(self):
        t = SetType(RecordType.of(p=ClassType("Person"), q=SetType(ClassType("Dog"))))
        assert t.class_names() == frozenset({"Person", "Dog"})

    def test_types_hashable(self):
        s = {INT, BOOL, SetType(INT), SetType(INT), RecordType.of(a=INT)}
        assert len(s) == 4


class TestFuncType:
    def test_default_effect_empty(self):
        f = FuncType((INT,), BOOL)
        assert f.effect == EMPTY

    def test_str_with_effect(self):
        f = FuncType((INT,), INT, Effect.of(read("C")))
        assert "R(C)" in str(f)

    def test_str_plain(self):
        assert str(FuncType((INT, BOOL), STRING)) == "(int, bool) -> string"

    def test_class_names(self):
        f = FuncType((ClassType("A"),), ClassType("B"))
        assert f.class_names() == frozenset({"A", "B"})


class TestDataModelTypes:
    """Note 1: attributes/method signatures use φ types only."""

    def test_primitives_are_phi(self):
        assert is_data_model_type(INT)
        assert is_data_model_type(STRING)

    def test_classes_are_phi(self):
        assert is_data_model_type(ClassType("Person"))

    def test_sets_are_not_phi(self):
        assert not is_data_model_type(SetType(INT))

    def test_records_are_not_phi(self):
        assert not is_data_model_type(RecordType.of(a=INT))
