"""Unit tests for the ND-choice strategies (repro.semantics.strategy)."""

import pytest

from repro.errors import EvalError
from repro.lang.ast import IntLit
from repro.semantics.strategy import (
    FIRST,
    LAST,
    FirstStrategy,
    LastStrategy,
    RandomStrategy,
    ScriptedStrategy,
)

ITEMS = tuple(IntLit(i) for i in range(5))


class TestFixedStrategies:
    def test_first(self):
        assert FirstStrategy().choose(ITEMS) == 0
        assert FIRST.choose(ITEMS) == 0

    def test_last(self):
        assert LastStrategy().choose(ITEMS) == 4
        assert LAST.choose((IntLit(9),)) == 0

    def test_fork_is_identity_for_stateless(self):
        assert FIRST.fork() is FIRST


class TestRandomStrategy:
    def test_in_range(self):
        s = RandomStrategy(42)
        for _ in range(100):
            assert 0 <= s.choose(ITEMS) < len(ITEMS)

    def test_seed_determinism(self):
        a = [RandomStrategy(7).choose(ITEMS) for _ in range(1)]
        b = [RandomStrategy(7).choose(ITEMS) for _ in range(1)]
        assert a == b

    def test_sequences_replayable(self):
        s1, s2 = RandomStrategy(3), RandomStrategy(3)
        assert [s1.choose(ITEMS) for _ in range(20)] == [
            s2.choose(ITEMS) for _ in range(20)
        ]

    def test_different_seeds_differ_somewhere(self):
        s1, s2 = RandomStrategy(1), RandomStrategy(2)
        seq1 = [s1.choose(ITEMS) for _ in range(30)]
        seq2 = [s2.choose(ITEMS) for _ in range(30)]
        assert seq1 != seq2

    def test_fork_independent(self):
        s = RandomStrategy(5)
        f = s.fork()
        assert isinstance(f, RandomStrategy)
        assert f is not s


class TestScriptedStrategy:
    def test_replays_script(self):
        s = ScriptedStrategy([2, 0, 1])
        assert s.choose(ITEMS) == 2
        assert s.choose(ITEMS) == 0
        assert s.choose(ITEMS) == 1

    def test_exhaustion(self):
        s = ScriptedStrategy([0])
        s.choose(ITEMS)
        with pytest.raises(EvalError, match="exhausted"):
            s.choose(ITEMS)

    def test_out_of_range(self):
        with pytest.raises(EvalError, match="out of range"):
            ScriptedStrategy([9]).choose(ITEMS)

    def test_fork_preserves_position(self):
        s = ScriptedStrategy([1, 2])
        s.choose(ITEMS)
        f = s.fork()
        assert f.choose(ITEMS) == 2
