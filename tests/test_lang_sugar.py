"""Unit tests for the derived forms (repro.lang.sugar) — both their
shapes and their run-time behaviour."""

import pytest

from repro.db.database import Database
from repro.lang import sugar
from repro.lang.ast import Comp, Gen, If, Pred, PrimEq, Size, Var
from repro.lang.parser import parse_query
from repro.lang.values import FALSE, TRUE

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
"""


@pytest.fixture
def db():
    d = Database.from_odl(ODL)
    d.insert("Person", name="a", age=10)
    d.insert("Person", name="b", age=20)
    d.insert("Person", name="c", age=30)
    return d


class TestShapes:
    def test_and_shape(self):
        assert sugar.and_(Var("p"), Var("q")) == If(Var("p"), Var("q"), FALSE)

    def test_or_shape(self):
        assert sugar.or_(Var("p"), Var("q")) == If(Var("p"), TRUE, Var("q"))

    def test_not_shape(self):
        assert sugar.not_(Var("p")) == If(Var("p"), FALSE, TRUE)

    def test_exists_shape(self):
        q = sugar.exists("x", Var("s"), Var("p"))
        assert isinstance(q, PrimEq)
        assert isinstance(q.right, Size)
        inner = q.right.arg
        assert isinstance(inner, Comp)
        assert inner.qualifiers == (Gen("x", Var("s")), Pred(Var("p")))

    def test_select_shape(self):
        q = sugar.select(Var("h"), [("x", Var("s"))], Var("p"))
        assert q == Comp(Var("h"), (Gen("x", Var("s")), Pred(Var("p"))))

    def test_select_no_where(self):
        q = sugar.select(Var("h"), [("x", Var("s"))])
        assert q == Comp(Var("h"), (Gen("x", Var("s")),))


class TestShortCircuit:
    """and/or must be lazy in the right operand, exactly like CBV if."""

    def test_and_short_circuits(self, db):
        # the right operand would be stuck (unbound var) if evaluated
        q = parse_query("false and (1 = size(zz))")
        assert db.run(q, typecheck=False).python() is False

    def test_or_short_circuits(self, db):
        q = parse_query("true or (1 = size(zz))")
        assert db.run(q, typecheck=False).python() is True

    def test_and_truth_table(self, db):
        for a in (True, False):
            for b in (True, False):
                src = f"{str(a).lower()} and {str(b).lower()}"
                assert db.run(src).python() is (a and b)

    def test_or_truth_table(self, db):
        for a in (True, False):
            for b in (True, False):
                src = f"{str(a).lower()} or {str(b).lower()}"
                assert db.run(src).python() is (a or b)

    def test_not(self, db):
        assert db.run("not true").python() is False
        assert db.run("not false").python() is True


class TestQuantifierSemantics:
    def test_exists_true(self, db):
        assert db.run("exists p in Persons : p.age = 20").python() is True

    def test_exists_false(self, db):
        assert db.run("exists p in Persons : p.age = 99").python() is False

    def test_exists_empty_domain(self, db):
        assert db.run("exists x in {} : x = 1", typecheck=False).python() is False

    def test_forall_true(self, db):
        assert db.run("forall p in Persons : p.age > 5").python() is True

    def test_forall_false(self, db):
        assert db.run("forall p in Persons : p.age > 15").python() is False

    def test_forall_empty_domain_vacuous(self, db):
        assert db.run("forall x in {1} except {1} : x = 99").python() is True

    def test_nested_quantifiers(self, db):
        src = "forall p in Persons : exists q in Persons : q.age > p.age or p.age = 30"
        assert db.run(src).python() is True


class TestIsEmpty:
    def test_is_empty(self, db):
        q = sugar.is_empty(db.parse("{p | p <- Persons, p.age > 99}"))
        assert db.run(q).python() is True

    def test_not_empty(self, db):
        q = sugar.is_empty(db.parse("Persons"))
        assert db.run(q).python() is False
