"""Deterministic fault injection — and the recovery proof.

The last class is the point of the whole harness: a seeded fault plan
over a quickstart-style workload, recovered with ``atomic=True`` plus a
retry policy, converges to a database state *identical* to the
fault-free run.
"""

import pytest

from repro.db import persistence
from repro.db.database import Database
from repro.errors import ReproError, TransientFault
from repro.resilience.faults import (
    KINDS,
    SITES,
    FaultPlan,
    FaultRule,
    active,
    inject,
    install,
    maybe_fault,
    uninstall,
)
from repro.resilience.retry import RetryPolicy

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    bool is_adult() { return this.age >= 18; }
}
"""


@pytest.fixture(autouse=True)
def no_leaked_plan():
    yield
    uninstall()


def make_db() -> Database:
    d = Database.from_odl(ODL)
    for name, age in [("Ada", 36), ("Grace", 45), ("Tim", 12)]:
        d.insert("Person", name=name, age=age)
    return d


@pytest.fixture
def db() -> Database:
    return make_db()


def noop_sleep(_delay: float) -> None:
    pass


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(ReproError, match="unknown fault site"):
            FaultRule(site="warp.core")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            FaultRule(site="commit", kind="permanent")

    def test_at_is_one_based(self):
        with pytest.raises(ReproError):
            FaultRule(site="commit", at=0)

    def test_every_must_be_positive(self):
        with pytest.raises(ReproError):
            FaultRule(site="commit", every=0)

    def test_probability_range(self):
        with pytest.raises(ReproError):
            FaultRule(site="commit", probability=1.5)

    def test_delay_nonnegative(self):
        with pytest.raises(ReproError):
            FaultRule(site="commit", delay=-1.0)

    def test_describe_conditions(self):
        r = FaultRule(site="commit", at=2, times=1)
        assert r.describe() == "commit [at=2, times=1] -> transient"

    def test_describe_latency(self):
        r = FaultRule(site="store.read", kind="latency", delay=0.5)
        assert "latency+0.5s" in r.describe()

    def test_all_sites_and_kinds_constructible(self):
        for site in SITES:
            for kind in KINDS:
                FaultRule(site=site, kind=kind)


class TestFaultPlanFiring:
    def test_at_fires_on_exactly_the_nth_hit(self):
        plan = FaultPlan((FaultRule(site="commit", at=3),))
        plan.hit("commit")
        plan.hit("commit")
        with pytest.raises(TransientFault):
            plan.hit("commit")
        plan.hit("commit")  # 4th hit: silent again
        assert plan.fired == {"commit": 1}

    def test_every_fires_periodically(self):
        plan = FaultPlan((FaultRule(site="commit", every=2),))
        fired = 0
        for _ in range(6):
            try:
                plan.hit("commit")
            except TransientFault:
                fired += 1
        assert fired == 3

    def test_times_caps_firings(self):
        plan = FaultPlan((FaultRule(site="commit", every=1, times=2),))
        fired = 0
        for _ in range(5):
            try:
                plan.hit("commit")
            except TransientFault:
                fired += 1
        assert fired == 2

    def test_probability_is_seeded_and_deterministic(self):
        def firing_pattern(seed: int) -> list[bool]:
            plan = FaultPlan(
                (FaultRule(site="commit", probability=0.5),), seed=seed
            )
            out = []
            for _ in range(20):
                try:
                    plan.hit("commit")
                    out.append(False)
                except TransientFault:
                    out.append(True)
            return out

        assert firing_pattern(7) == firing_pattern(7)
        assert firing_pattern(7) != firing_pattern(8)

    def test_transient_fault_names_its_site(self):
        plan = FaultPlan((FaultRule(site="store.read", at=1),))
        with pytest.raises(TransientFault) as exc:
            plan.hit("store.read")
        assert exc.value.site == "store.read"

    def test_latency_sleeps_instead_of_raising(self):
        slept = []
        plan = FaultPlan(
            (FaultRule(site="commit", every=1, kind="latency", delay=0.25),),
            sleep=slept.append,
        )
        plan.hit("commit")  # must not raise
        assert slept == [0.25]

    def test_unrelated_sites_never_fire(self):
        plan = FaultPlan((FaultRule(site="commit", every=1),))
        plan.hit("store.read")
        assert plan.fired == {}

    def test_hits_counted_even_without_rules(self):
        plan = FaultPlan()
        plan.hit("commit")
        plan.hit("commit")
        assert plan.hits == {"commit": 2}

    def test_add_returns_self(self):
        plan = FaultPlan()
        assert plan.add(FaultRule(site="commit")) is plan
        assert len(plan.rules) == 1

    def test_describe_reports_rules_and_counts(self):
        plan = FaultPlan((FaultRule(site="commit", at=1),), seed=9)
        with pytest.raises(TransientFault):
            plan.hit("commit")
        text = plan.describe()
        assert "seed 9" in text
        assert "commit [at=1] -> transient" in text
        assert "commit: 1 hit(s), 1 fired" in text

    def test_describe_empty_plan(self):
        assert "(no rules)" in FaultPlan().describe()


class TestInstallation:
    def test_maybe_fault_is_noop_without_plan(self):
        uninstall()
        maybe_fault("commit")  # must not raise

    def test_install_uninstall(self):
        plan = FaultPlan((FaultRule(site="commit", every=1),))
        install(plan)
        assert active() is plan
        with pytest.raises(TransientFault):
            maybe_fault("commit")
        uninstall()
        assert active() is None
        maybe_fault("commit")

    def test_inject_restores_previous_plan(self):
        outer = FaultPlan()
        install(outer)
        inner = FaultPlan()
        with inject(inner):
            assert active() is inner
        assert active() is outer

    def test_inject_yields_the_plan(self):
        with inject(FaultPlan()) as plan:
            assert active() is plan


class TestEverySite:
    """A fault at each named site surfaces as TransientFault there."""

    def test_store_read_reduction(self, db):
        with inject(FaultPlan((FaultRule(site="store.read", at=1),))):
            with pytest.raises(TransientFault) as exc:
                db.run("{ p.name | p <- Persons }")
        assert exc.value.site == "store.read"

    def test_store_read_bigstep(self, db):
        with inject(FaultPlan((FaultRule(site="store.read", at=1),))):
            with pytest.raises(TransientFault):
                db.run("{ p.name | p <- Persons }", engine="bigstep")

    def test_machine_step_reduction(self, db):
        with inject(FaultPlan((FaultRule(site="machine.step", at=1),))):
            with pytest.raises(TransientFault) as exc:
                db.run("1 + 2")
        assert exc.value.site == "machine.step"

    def test_machine_step_bigstep(self, db):
        with inject(FaultPlan((FaultRule(site="machine.step", at=1),))):
            with pytest.raises(TransientFault):
                db.run("1 + 2", engine="bigstep")

    def test_method_call_reduction(self, db):
        with inject(FaultPlan((FaultRule(site="method.call", at=1),))):
            with pytest.raises(TransientFault) as exc:
                db.run("{ p.is_adult() | p <- Persons }")
        assert exc.value.site == "method.call"

    def test_method_call_bigstep(self, db):
        with inject(FaultPlan((FaultRule(site="method.call", at=1),))):
            with pytest.raises(TransientFault):
                db.run("{ p.is_adult() | p <- Persons }", engine="bigstep")

    def test_commit(self, db):
        before = db.ee, db.oe
        with inject(FaultPlan((FaultRule(site="commit", at=1),))):
            with pytest.raises(TransientFault) as exc:
                db.run('new Person(name: "x", age: 1)')
        assert exc.value.site == "commit"
        assert (db.ee, db.oe) == before

    def test_persistence_save(self, db, tmp_path):
        path = str(tmp_path / "db.json")
        with inject(FaultPlan((FaultRule(site="persistence.save", at=1),))):
            with pytest.raises(TransientFault) as exc:
                persistence.save(db, ODL, path)
        assert exc.value.site == "persistence.save"
        assert not (tmp_path / "db.json").exists()  # nothing torn

    def test_persistence_load(self, db, tmp_path):
        path = str(tmp_path / "db.json")
        persistence.save(db, ODL, path)
        with inject(FaultPlan((FaultRule(site="persistence.load", at=1),))):
            with pytest.raises(TransientFault) as exc:
                persistence.load(path)
        assert exc.value.site == "persistence.load"


class TestDeterministicRecovery:
    """The acceptance proof: a seeded fault plan over the quickstart
    workload, recovered via ``atomic=True`` + retry, converges to the
    exact EE/OE of a fault-free run."""

    WORKLOAD = [
        "{ p.name | p <- Persons, p.age >= 18 }",
        "select struct(who: p.name, adult: p.is_adult()) "
        "from p in Persons where p.age > 30",
        'new Person(name: "Barbara", age: 28)',
        "{ p.age | p <- Persons }",
    ]

    def run_workload(self, d: Database, retry: RetryPolicy | None):
        return [
            d.run(q, atomic=True, retry=retry).python() for q in self.WORKLOAD
        ]

    def plan(self) -> FaultPlan:
        # each rule lands inside a *read-only* statement (or its
        # commit), so recovery burns no oids and literal EE/OE equality
        # against the fault-free run is achievable
        return FaultPlan(
            (
                FaultRule(site="machine.step", at=1),
                FaultRule(site="store.read", at=1),
                FaultRule(site="commit", at=1),
                FaultRule(site="method.call", at=1),
            ),
            seed=42,
        )

    def test_recovery_converges_to_fault_free_state(self):
        plain = make_db()
        plain_answers = self.run_workload(plain, retry=None)

        faulted = make_db()
        plan = self.plan()
        policy = RetryPolicy.seeded(42, max_attempts=6, sleep=noop_sleep)
        with inject(plan):
            answers = self.run_workload(faulted, retry=policy)

        # every injected fault actually fired...
        assert set(plan.fired) == {
            "machine.step",
            "store.read",
            "commit",
            "method.call",
        }
        # ...and the recovered run is indistinguishable from fault-free
        assert answers == plain_answers
        assert faulted.ee == plain.ee
        assert faulted.oe == plain.oe

    def test_recovery_survives_persistence_faults_too(self, tmp_path):
        d = make_db()
        path = str(tmp_path / "db.json")
        plan = FaultPlan(
            (
                FaultRule(site="persistence.save", at=1),
                FaultRule(site="persistence.load", at=1),
            )
        )
        with inject(plan):
            for attempt in range(2):
                try:
                    persistence.save(d, ODL, path)
                    break
                except TransientFault:
                    continue
            for attempt in range(2):
                try:
                    loaded = persistence.load(path)
                    break
                except TransientFault:
                    continue
        assert loaded.ee == d.ee and loaded.oe == d.oe
        assert plan.fired == {"persistence.save": 1, "persistence.load": 1}

    def test_replay_of_same_seed_is_identical(self):
        def run_once() -> tuple:
            d = make_db()
            plan = self.plan()
            policy = RetryPolicy.seeded(
                42, max_attempts=6, sleep=noop_sleep
            )
            with inject(plan):
                answers = self.run_workload(d, retry=policy)
            return answers, dict(plan.hits), dict(plan.fired)

        assert run_once() == run_once()


class TestWalFaults:
    """Durability under injected faults at the three WAL sites.

    A failed append must fail the *commit* (write-ahead ordering: the
    record was not durable, so the state change must not happen) while
    leaving both the in-memory database and the log file exactly as
    they were; a retry after the fault clears succeeds normally.
    """

    def _durable_db(self, tmp_path) -> Database:
        d = Database.open(str(tmp_path / "db"), ODL)
        for name, age in [("Ada", 36), ("Grace", 45)]:
            d.run(f'new Person(name: "{name}", age: {age})')
        return d

    @pytest.mark.parametrize("site", ["wal.append", "wal.fsync"])
    def test_append_fault_fails_the_commit_cleanly(self, site, tmp_path):
        d = self._durable_db(tmp_path)
        ee, oe, size = d.ee, d.oe, d.wal.size()
        with inject(FaultPlan((FaultRule(site=site, at=1),))):
            with pytest.raises(TransientFault):
                d.run('new Person(name: "Tim", age: 12)')
        assert d.ee == ee and d.oe == oe, "state installed without a record"
        assert d.wal.size() == size, "half a record left in the log"
        d.close()

    @pytest.mark.parametrize("site", ["wal.append", "wal.fsync"])
    def test_retry_after_the_fault_clears_succeeds(self, site, tmp_path):
        d = self._durable_db(tmp_path)
        policy = RetryPolicy.seeded(7, max_attempts=3, sleep=noop_sleep)
        with inject(FaultPlan((FaultRule(site=site, at=1, times=1),))):
            # atomic=True so replay_decision can prove the failed
            # attempt (which never installed anything) was rolled back
            d.run(
                'new Person(name: "Tim", age: 12)',
                atomic=True,
                retry=policy,
            )
        assert len(d.extent("Persons")) == 3
        d.close()
        from repro.db import recover

        res = recover(str(tmp_path / "db"), attach=False)
        assert len(res.db.extent("Persons")) == 3

    def test_insert_append_fault_is_also_clean(self, tmp_path):
        d = self._durable_db(tmp_path)
        before = len(d.extent("Persons"))
        with inject(FaultPlan((FaultRule(site="wal.append", at=1),))):
            with pytest.raises(TransientFault):
                d.insert("Person", name="Tim", age=12)
        assert len(d.extent("Persons")) == before
        d.close()

    def test_rollback_append_fault_detaches_durability_loudly(self, tmp_path):
        # an unattributed change (transaction rollback) whose full
        # record cannot be appended leaves the log unable to describe
        # the in-memory state: the database must drop durability, not
        # keep journalling deltas against the wrong base
        d = self._durable_db(tmp_path)
        # hit 1 is the insert inside the transaction; hit 2 the
        # rollback's full record
        with inject(FaultPlan((FaultRule(site="wal.append", at=2),))):
            with pytest.raises(TransientFault):
                with d.transaction():
                    d.run('new Person(name: "Tim", age: 12)')
                    raise TransientFault("abort the transaction")
        assert d.wal is None, "durability kept journalling after the gap"
        assert len(d.extent("Persons")) == 2, "rollback itself must stand"
        # the on-disk log still recovers a *committed prefix*: the
        # insert happened, its un-doing was never made durable
        from repro.db import recover

        res = recover(str(tmp_path / "db"), attach=False)
        assert len(res.db.extent("Persons")) == 3

    def test_recovery_replay_fault_then_clean_run_converges(self, tmp_path):
        from repro.db import recover

        d = self._durable_db(tmp_path)
        expected_ee, expected_oe = d.ee, d.oe
        d.close()
        with inject(FaultPlan((FaultRule(site="recovery.replay", at=1),))):
            with pytest.raises(TransientFault):
                recover(str(tmp_path / "db"), attach=False)
        res = recover(str(tmp_path / "db"), attach=False)
        assert res.db.ee == expected_ee and res.db.oe == expected_oe
