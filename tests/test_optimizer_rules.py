"""Unit tests for individual rewrite rules and their side conditions."""

import pytest

from repro.db.database import Database
from repro.lang.ast import SetLit
from repro.lang.parser import parse_query
from repro.optimizer.rules import (
    ARITH_FOLD,
    COMMUTE_SETOP,
    EMPTY_GEN,
    EMPTY_SETOP,
    FALSE_PRED,
    IF_CONST_FOLD,
    PRED_PUSHDOWN,
    RECORD_PROJ,
    TRUE_PRED,
    UNNEST,
    RewriteContext,
    termination_safe,
)

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    int shout() { return this.age * 10; }
}
"""


@pytest.fixture(scope="module")
def db():
    d = Database.from_odl(ODL)
    d.insert("Person", name="a", age=1)
    d.insert("Person", name="b", age=2)
    return d


@pytest.fixture
def rc(db):
    return RewriteContext(db.type_context())


def q(db, src):
    return db.parse(src)


class TestTerminationSafety:
    def test_plain_queries_safe(self, db):
        assert termination_safe(q(db, "{p.name | p <- Persons, p.age < 3}"))

    def test_method_call_unsafe(self, db):
        assert not termination_safe(q(db, "{p.shout() | p <- Persons}"))

    def test_defcall_unsafe(self, db):
        assert not termination_safe(q(db, "f(1)"))


class TestAlwaysSafeFolds:
    def test_if_true(self, rc, db):
        assert IF_CONST_FOLD.apply(rc, q(db, "if true then 1 else 2")) == q(db, "1")

    def test_if_false(self, rc, db):
        assert IF_CONST_FOLD.apply(rc, q(db, "if false then 1 else 2")) == q(db, "2")

    def test_if_nonconst_declines(self, rc, db):
        assert IF_CONST_FOLD.apply(rc, q(db, "if 1 = 1 then 1 else 2")) is None

    def test_arith(self, rc, db):
        assert ARITH_FOLD.apply(rc, q(db, "2 + 3")) == q(db, "5")
        assert ARITH_FOLD.apply(rc, q(db, "2 * 3")) == q(db, "6")
        assert ARITH_FOLD.apply(rc, q(db, "2 < 3")) == q(db, "true")
        assert ARITH_FOLD.apply(rc, q(db, "2 = 3")) == q(db, "false")
        assert ARITH_FOLD.apply(rc, q(db, '"a" = "a"')) == q(db, "true")

    def test_size_of_literal_set(self, rc, db):
        assert ARITH_FOLD.apply(rc, q(db, "size({1, 2, 2})")) == q(db, "2")

    def test_union_empty_right(self, rc, db):
        assert EMPTY_SETOP.apply(rc, q(db, "Persons union {}")) == q(db, "Persons")

    def test_union_empty_left(self, rc, db):
        assert EMPTY_SETOP.apply(rc, q(db, "{} union Persons")) == q(db, "Persons")

    def test_except_empty_right(self, rc, db):
        assert EMPTY_SETOP.apply(rc, q(db, "Persons except {}")) == q(db, "Persons")


class TestEffectGatedSetOps:
    def test_intersect_empty_discards_pure(self, rc, db):
        out = EMPTY_SETOP.apply(rc, q(db, "{} intersect {1, 2}"))
        assert out == SetLit(())

    def test_intersect_empty_keeps_read(self, rc, db):
        # reading an extent is pure? no — R(Person) ≠ ∅, so declined
        assert EMPTY_SETOP.apply(rc, q(db, "{} intersect Persons")) is None

    def test_intersect_empty_keeps_writes(self, rc, db):
        src = '{} intersect {new Person(name: "x", age: 0)}'
        assert EMPTY_SETOP.apply(rc, q(db, src)) is None

    def test_except_empty_left_needs_discardable(self, rc, db):
        assert EMPTY_SETOP.apply(rc, q(db, "{} except Persons")) is None
        assert EMPTY_SETOP.apply(rc, q(db, "{} except {1}")) == SetLit(())


class TestComprehensionRules:
    def test_true_pred_dropped(self, rc, db):
        out = TRUE_PRED.apply(rc, q(db, "{p | p <- Persons, true}"))
        assert out == q(db, "{p | p <- Persons}")

    def test_false_pred_collapses_pure_prefix(self, rc, db):
        out = FALSE_PRED.apply(rc, q(db, "{x | x <- {1, 2}, false}"))
        assert out == SetLit(())

    def test_false_pred_keeps_effectful_prefix(self, rc, db):
        src = '{x.name | x <- {new Person(name: "n", age: 0)}, false}'
        assert FALSE_PRED.apply(rc, q(db, src)) is None

    def test_false_pred_extent_read_prefix_ok(self, rc, db):
        # reads are skippable (write-free): dropping them is invisible
        out = FALSE_PRED.apply(rc, q(db, "{p | p <- Persons, false}"))
        assert out == SetLit(())

    def test_false_pred_method_prefix_blocks(self, rc, db):
        # method calls may diverge: cannot discard
        src = "{p | p <- Persons, p.shout() = 10, false}"
        assert FALSE_PRED.apply(rc, q(db, src)) is None

    def test_empty_gen(self, rc, db):
        out = EMPTY_GEN.apply(rc, q(db, "{x | p <- Persons, x <- {}}"))
        assert out == SetLit(())

    def test_pushdown_moves_pred_before_unrelated_gen(self, rc, db):
        src = "{struct(a: x, b: y) | x <- {1, 2}, y <- {3, 4}, x < 2}"
        out = PRED_PUSHDOWN.apply(rc, q(db, src))
        assert out == q(db, "{struct(a: x, b: y) | x <- {1, 2}, x < 2, y <- {3, 4}}")

    def test_pushdown_respects_binding(self, rc, db):
        src = "{x | x <- {1}, y <- {2}, y < 9}"
        out = PRED_PUSHDOWN.apply(rc, q(db, src))
        # y < 9 cannot cross its own binder
        assert out is None

    def test_pushdown_declines_effectful_pred(self, rc, db):
        src = '{x | x <- {1}, y <- {2}, size({new Person(name: "q", age: 0)}) = x}'
        assert PRED_PUSHDOWN.apply(rc, q(db, src)) is None

    def test_pushdown_declines_method_pred(self, rc, db):
        src = "{p | x <- {1, 2}, p <- Persons, p.shout() > 0}"
        assert PRED_PUSHDOWN.apply(rc, q(db, src)) is None


class TestUnnest:
    def test_flattens_nested_comprehension(self, rc, db):
        src = "{x + 1 | x <- {y * 2 | y <- {1, 2, 3}}}"
        out = UNNEST.apply(rc, q(db, src))
        assert out == q(db, "{(y * 2) + 1 | y <- {1, 2, 3}}")

    def test_preserves_rest_qualifiers(self, rc, db):
        src = "{x | x <- {y | y <- {1, 2}}, x < 2}"
        out = UNNEST.apply(rc, q(db, src))
        assert out == q(db, "{y | y <- {1, 2}, y < 2}")

    def test_declines_effectful_head(self, rc, db):
        src = '{x.name | x <- {new Person(name: "q", age: y) | y <- {1}}}'
        assert UNNEST.apply(rc, q(db, src)) is None

    def test_declines_method_head(self, rc, db):
        src = "{x + 1 | x <- {p.shout() | p <- Persons}}"
        assert UNNEST.apply(rc, q(db, src)) is None

    def test_alpha_renames_on_capture(self, rc, db):
        # inner head mentions y; outer rest also binds y
        src = "{x | x <- {y | y <- {1}}, y <- {2}, x < y}"
        out = UNNEST.apply(rc, q(db, src))
        if out is not None:
            from repro.lang.traversal import free_vars

            assert free_vars(out) == frozenset()


class TestRecordProj:
    def test_projects_through(self, rc, db):
        out = RECORD_PROJ.apply(rc, q(db, "struct(a: 1 + 2, b: 3).a"))
        assert out == q(db, "1 + 2")

    def test_declines_when_sibling_effectful(self, rc, db):
        src = 'struct(a: 1, b: new Person(name: "x", age: 0)).a'
        assert RECORD_PROJ.apply(rc, q(db, src)) is None

    def test_declines_when_sibling_calls_method(self, rc, db):
        src = "struct(a: 1, b: p.shout()).a"
        ctx2 = RewriteContext(
            db.type_context().extend("p", db.typecheck("{p | p <- Persons}").elem)
        )
        assert RECORD_PROJ.apply(ctx2, q(db, src)) is None


class TestCommuteRule:
    def test_commutes_pure(self, rc, db):
        out = COMMUTE_SETOP.apply(rc, q(db, "{1} union {2}"))
        assert out == q(db, "{2} union {1}")

    def test_commutes_reads(self, rc, db):
        out = COMMUTE_SETOP.apply(rc, q(db, "Persons intersect Persons"))
        assert out is not None

    def test_declines_interference(self, rc, db):
        src = 'Persons union {new Person(name: "x", age: 0)}'
        assert COMMUTE_SETOP.apply(rc, q(db, src)) is None

    def test_declines_except(self, rc, db):
        assert COMMUTE_SETOP.apply(rc, q(db, "{1} except {2}")) is None
