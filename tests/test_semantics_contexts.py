"""Unit tests for evaluation contexts / unique decomposition (Figure 2)."""

import pytest

from repro.lang.ast import (
    Comp,
    Field,
    Gen,
    If,
    IntLit,
    IntOp,
    MethodCall,
    New,
    Pred,
    RecordLit,
    SetLit,
    SetOp,
    Size,
    Var,
)
from repro.lang.parser import parse_query
from repro.lang.values import make_set_value
from repro.semantics.contexts import decompose


def redex_of(src: str):
    d = decompose(parse_query(src))
    assert d is not None
    return d.redex


class TestValues:
    @pytest.mark.parametrize("src", ["1", "true", '"s"', "{}", "{1, 2}", "struct(a: 1)"])
    def test_values_do_not_decompose(self, src):
        assert decompose(parse_query(src)) is None


class TestEvaluationOrder:
    def test_binary_left_first(self):
        # in (1+2) + (3+4), the left addition is the redex
        assert redex_of("(1 + 2) + (3 + 4)") == parse_query("1 + 2")

    def test_binary_right_after_left(self):
        assert redex_of("1 + (3 + 4)") == parse_query("3 + 4")

    def test_both_values_redex_is_node(self):
        assert redex_of("1 + 2") == parse_query("1 + 2")

    def test_union_left_to_right(self):
        assert redex_of("({1} union {2}) union ({3} union {4})") == parse_query(
            "{1} union {2}"
        )

    def test_set_items_left_to_right(self):
        assert redex_of("{1, 1 + 2, 3 + 4}") == parse_query("1 + 2")

    def test_record_fields_left_to_right(self):
        assert redex_of("struct(a: 1, b: 1 + 2, c: 3 + 4)") == parse_query("1 + 2")

    def test_args_after_target(self):
        q = parse_query("x.m(1 + 2)")
        d = decompose(q)
        # target Var x is not a value... Var is a non-value: redex is x
        assert d.redex == Var("x")

    def test_method_args_left_to_right(self):
        from repro.lang.ast import OidRef

        q = MethodCall(OidRef("@o"), "m", (parse_query("1 + 2"), parse_query("3 + 4")))
        assert decompose(q).redex == parse_query("1 + 2")

    def test_if_guard_only(self):
        # branches are never decomposed into
        q = parse_query("if 1 = 1 then 1 + 2 else 3 + 4")
        assert decompose(q).redex == parse_query("1 = 1")

    def test_if_with_value_guard_is_redex(self):
        q = parse_query("if true then 1 + 2 else 3")
        assert decompose(q).redex == q

    def test_new_fields_left_to_right(self):
        q = parse_query("new C(a: 1, b: 2 + 3)")
        assert decompose(q).redex == parse_query("2 + 3")

    def test_size_arg(self):
        assert redex_of("size({1} union {2})") == parse_query("{1} union {2}")


class TestComprehensionContexts:
    def test_head_evaluated_when_no_qualifiers(self):
        q = parse_query("{1 + 2 | }")
        assert decompose(q).redex == parse_query("1 + 2")

    def test_empty_comp_with_value_head_is_redex(self):
        q = parse_query("{1 | }")
        assert decompose(q).redex == q

    def test_first_qualifier_predicate(self):
        q = parse_query("{x | 1 = 1, x <- s}")
        assert decompose(q).redex == parse_query("1 = 1")

    def test_generator_source(self):
        q = parse_query("{x | x <- {1} union {2}}")
        assert decompose(q).redex == parse_query("{1} union {2}")

    def test_head_not_evaluated_under_qualifiers(self):
        q = parse_query("{1 + 2 | x <- s}")
        # the redex is inside the generator source (Var s), not the head
        assert decompose(q).redex == Var("s")

    def test_comp_with_value_generator_is_redex(self):
        q = parse_query("{x | x <- {1, 2}}")
        assert decompose(q).redex == q


class TestPlugging:
    """The fundamental property: plug(redex) == original query."""

    @pytest.mark.parametrize(
        "src",
        [
            "(1 + 2) + (3 + 4)",
            "{1, 1 + 2, 3}",
            "struct(a: 1 + 2, b: 3)",
            "size({1} union {2})",
            "if 1 = 1 then 2 else 3",
            "{x + 1 | x <- {1} union {2}, x < 3}",
            "new C(a: 1 + 2)",
            "f(1 + 2, 3)",
            "((1 + 2)).foo",
            "(C) struct(a: 1 + 2).a",
        ],
    )
    def test_plug_reconstructs(self, src):
        q = parse_query(src)
        d = decompose(q)
        assert d is not None
        assert d.plug(d.redex) == q

    def test_plug_replaces(self):
        q = parse_query("1 + (2 + 3)")
        d = decompose(q)
        assert d.plug(IntLit(5)) == parse_query("1 + 5")

    def test_administrative_canon_redex(self):
        # an all-value, non-canonical set literal is its own redex
        q = SetLit((IntLit(2), IntLit(1)))
        d = decompose(q)
        assert d.redex == q
        canonical = make_set_value([IntLit(1), IntLit(2)])
        assert decompose(canonical) is None
