"""Tests for the query profiler (repro.obs.profile + explain_analyze)."""

import json

import pytest

from repro import obs
from repro.obs.profile import (
    OpDescr,
    ProfileNode,
    ProfileRun,
    QueryProfile,
    _ratio,
    build_nodes,
)

JOIN = (
    "{ struct(e: e.EmpID, m: m.name) "
    "| e <- Employees, m <- Managers, m == e.UniqueManager }"
)
NESTED = (
    "{ struct(m: m.name, team: { e.EmpID | e <- Employees, "
    "e.UniqueManager == m }) | m <- Managers }"
)


class TestRatio:
    def test_normal_division(self):
        assert _ratio(20, 10.0) == 2.0

    def test_both_zero_is_exact(self):
        assert _ratio(0, 0.0) == 1.0

    def test_rows_without_estimate_is_none_not_inf(self):
        # None stays JSON-safe; float('inf') would not round-trip
        assert _ratio(5, 0.0) is None


class TestBuildNodes:
    def _ops(self):
        return [
            OpDescr(0, None, "result", "result", 10.0, 0),
            OpDescr(1, 0, "scan", "scan x <- Xs", 10.0, 2),
            OpDescr(2, 1, "emit", "emit x", 10.0, 2),
        ]

    def test_rows_flow_through_rows_from(self):
        run = ProfileRun(3)
        run.rows = [1, 10, 7]
        nodes = build_nodes(self._ops(), run)
        scan = nodes[1]
        assert scan.rows_in == 10  # calls of the scan op itself
        assert scan.rows_out == 7  # calls of its rows_from op (emit)

    def test_result_rows_override(self):
        run = ProfileRun(3)
        run.rows = [1, 10, 7]
        nodes = build_nodes(self._ops(), run, result_rows=7)
        assert nodes[0].rows_out == 7

    def test_self_time_subtracts_direct_children(self):
        run = ProfileRun(3)
        run.times = [1.0, 0.6, 0.25]
        nodes = build_nodes(self._ops(), run)
        assert nodes[0].self_time_s == pytest.approx(0.4)  # 1.0 - 0.6
        assert nodes[1].self_time_s == pytest.approx(0.35)  # 0.6 - 0.25
        assert nodes[2].self_time_s == pytest.approx(0.25)

    def test_clock_jitter_never_goes_negative(self):
        run = ProfileRun(3)
        run.times = [0.1, 0.2, 0.05]  # child measured longer than parent
        nodes = build_nodes(self._ops(), run)
        assert nodes[0].self_time_s == 0.0


class TestExplainAnalyzeCompiled:
    def test_every_node_has_estimate_and_actual(self, hr_db):
        prof = hr_db.explain_analyze(JOIN)
        assert prof.engine == "compiled"
        assert prof.nodes
        for node in prof.nodes:
            assert node.est_rows is not None
            assert node.rows_out >= 0
            assert node.misestimate is None or node.misestimate >= 0

    def test_scan_actual_matches_extent_size(self, hr_db):
        # order-agnostic: the cost-based optimizer may pick either
        # extent as the outer scan, but whichever it scans must report
        # exactly that extent's row count
        prof = hr_db.explain_analyze(JOIN)
        scans = [n for n in prof.nodes if n.kind == "scan"]
        assert scans
        for scan in scans:
            extent = scan.label.split(" <- ")[-1]
            assert scan.rows_out == len(hr_db.extent(extent))

    def test_join_workload_has_a_hash_join_node(self, hr_db):
        prof = hr_db.explain_analyze(JOIN)
        assert any(n.kind == "hash-join" for n in prof.nodes)

    def test_profile_dict_round_trips_through_json(self, hr_db):
        prof = hr_db.explain_analyze(JOIN)
        d = json.loads(json.dumps(prof.profile_dict()))
        assert d["engine"] == "compiled"
        assert len(d["nodes"]) == len(prof.nodes)
        assert d["summary"]["rows"] == 2

    def test_render_shows_the_comparison_columns(self, hr_db):
        text = hr_db.explain_analyze(JOIN).render()
        assert "est rows" in text and "actual" in text and "ratio" in text
        assert "hash join" in text

    def test_nested_comprehension_profiles_inner_operators(self, hr_db):
        prof = hr_db.explain_analyze(NESTED)
        comps = [n for n in prof.nodes if n.kind == "comp"]
        assert len(comps) == 2  # outer and inner
        inner = comps[1]
        # the inner pipeline runs once per outer row
        assert inner.rows_in == len(hr_db.extent("Managers"))

    def test_never_commits(self, hr_db):
        before = hr_db._state_version
        hr_db.explain_analyze(JOIN)
        assert hr_db._state_version == before


class TestExplainAnalyzeReductionFallback:
    def test_write_query_falls_back_with_rule_histogram(self, hr_db):
        prof = hr_db.explain_analyze(
            '{ new Manager(name: "x", age: 40, address: "n", level: 1) '
            "| e <- Employees }"
        )
        assert prof.engine == "reduction"
        assert prof.nodes == []
        rules = prof.summary["rules"]
        assert rules.get("New") == len(hr_db.extent("Employees"))

    def test_fallback_never_commits(self, hr_db):
        managers = len(hr_db.extent("Managers"))
        hr_db.explain_analyze(
            '{ new Manager(name: "x", age: 40, address: "n", level: 1) '
            "| e <- Employees }"
        )
        assert len(hr_db.extent("Managers")) == managers

    def test_fallback_render_mentions_rules(self, hr_db):
        text = hr_db.explain_analyze(
            'struct(p: new Person(name: "q", age: 1, address: "r")).p.name'
        ).render()
        assert "reduction engine" in text
        assert "rules fired:" in text


class TestObsOffFastPath:
    def test_analyze_feeds_no_obs_stores_when_disabled(self, hr_db):
        assert not obs.enabled()
        obs.reset()
        hr_db.explain_analyze(JOIN)
        hr_db.explain_analyze("size(Persons)")  # reduction fallback too
        assert obs.TRACER.finished == []
        assert len(obs.STREAM.events) == 0
        assert obs.REGISTRY.collect() == []

    def test_span_machinery_never_invoked_when_disabled(
        self, hr_db, monkeypatch
    ):
        def boom(*a, **kw):  # pragma: no cover - the point is it never runs
            raise AssertionError("span allocated with obs disabled")

        monkeypatch.setattr(obs.TRACER, "begin", boom)
        prof = hr_db.explain_analyze(JOIN)
        assert prof.engine == "compiled"


class TestQueryProfileRendering:
    def test_missing_estimate_renders_as_inf(self):
        node = ProfileNode(
            op_id=0, parent=None, kind="result", label="result",
            est_rows=0.0, rows_in=1, rows_out=3, time_s=0.0,
            self_time_s=0.0, misestimate=None,
        )
        prof = QueryProfile(
            query="q", engine="compiled", elapsed_s=0.0, fuel=0,
            effect="", est_cost=0.0, actual_steps=0, nodes=[node],
        )
        assert "inf" in prof.render()
