"""Adaptive mid-query replanning (repro.exec.engine + ReplanGuard).

A compiled plan carries the optimizer's compile-time cardinality
estimates; when an observed source cardinality diverges from its
estimate by ``db.replan_ratio`` or more, execution aborts, the entry is
recompiled with the observation as a cardinality override, and the plan
restarts.  Abandoning the partial run is safe because the plan is
read-only — Theorem 4 makes re-execution yield the same observables.
"""

import pytest

from repro.db.database import Database
from repro.exec.runtime import ReplanGuard, ReplanSignal

ODL = """
class Employee extends Object (extent Employees) {
    attribute string name;
    attribute int dept;
}
class Tiny extends Object (extent Tinys) {
    attribute int n;
}
"""

HOT_QUERY = "{ s.name | s <- hot() }"


def skewed_db(n=200):
    """dept 0 is hot (90% of rows); the rest are unique values, so the
    1/distinct estimate for ``dept = 0`` is off by ~20x."""
    db = Database.from_odl(ODL)
    for i in range(n):
        db.insert("Employee", name=f"e{i}", dept=0 if i % 10 != 9 else i)
    for i in range(3):
        db.insert("Tiny", n=i)
    db.define("define hot() as { e | e <- Employees, e.dept = 0 };")
    return db


class TestReplanGuard:
    def test_fires_on_underestimate(self):
        g = ReplanGuard(4.0)
        with pytest.raises(ReplanSignal):
            g.check(None, 10.0, 40)

    def test_fires_on_overestimate(self):
        g = ReplanGuard(4.0)
        with pytest.raises(ReplanSignal):
            g.check(None, 100.0, 20)

    def test_quiet_within_ratio(self):
        g = ReplanGuard(4.0)
        g.check(None, 10.0, 39)
        g.check(None, 40.0, 11)

    def test_tiny_cardinalities_never_fire(self):
        # 0 estimated vs 7 actual is a huge ratio but meaningless work
        g = ReplanGuard(4.0)
        g.check(None, 0.0, ReplanGuard.MIN_ROWS - 1)

    def test_signal_carries_observation(self):
        g = ReplanGuard(2.0)
        with pytest.raises(ReplanSignal) as exc:
            g.check("src", 10.0, 100)
        assert exc.value.source == "src"
        assert exc.value.est == 10.0
        assert exc.value.actual == 100


class TestMidQueryReplan:
    def test_replan_fires_and_result_is_correct(self):
        db = skewed_db()
        r = db.run(HOT_QUERY)
        assert db._qstats["replans"] == 1
        assert r.engine == "compiled"
        seq = db.run(HOT_QUERY, engine="reduction")
        assert r.value == seq.value

    def test_replan_note_recorded_on_plan(self):
        db = skewed_db()
        db.run(HOT_QUERY)
        dec = db.plan_decision(db.parse(HOT_QUERY))
        assert any(n.startswith("replan:") for n in dec.plan.notes)

    def test_second_run_reuses_replanned_entry(self):
        db = skewed_db()
        db.run(HOT_QUERY)
        db.run(HOT_QUERY)
        # the override baked into the recompiled plan satisfies the
        # guard, so the same query never replans twice
        assert db._qstats["replans"] == 1

    def test_replanning_disabled_by_ratio_none(self):
        db = skewed_db()
        db.replan_ratio = None
        r = db.run(HOT_QUERY)
        assert db._qstats["replans"] == 0
        assert r.value == db.run(HOT_QUERY, engine="reduction").value

    def test_replan_improves_join_order(self):
        # a nested intersect is estimated at min/2 per level — ~8 rows
        # here, so it is initially ordered as the outer side.  The
        # observed 60 rows trigger a replan whose override re-ranks it
        # behind Tinys.  (A DefCall source could not be used here: it
        # is not termination-safe, so the reorder rule may not move it.)
        db = Database.from_odl(ODL)
        for i in range(60):
            db.insert("Employee", name=f"e{i}", dept=i)
        for i in range(12):
            db.insert("Tiny", n=i)
        q = (
            "{ struct(a: s.name, b: t.n) | s <- (Employees intersect "
            "(Employees intersect (Employees intersect Employees))), "
            "t <- Tinys }"
        )
        r = db.run(q)
        assert db._qstats["replans"] == 1
        dec = db.plan_decision(db.parse(q))
        from repro.lang.ast import Gen

        gens = [
            cq
            for cq in dec.plan.source.qualifiers
            if isinstance(cq, Gen)
        ]
        assert isinstance(gens[0].source.name, str)
        assert gens[0].source.name == "Tinys"
        assert r.value == db.run(q, engine="bigstep").value

    def test_accurate_estimates_never_replan(self):
        db = skewed_db()
        # plain extent scans are exactly known at costing time
        db.run("{ e.name | e <- Employees }")
        db.run("{ e.name | e <- Employees, e.dept = 0 }")
        assert db._qstats["replans"] == 0

    def test_replan_counted_in_health(self):
        db = skewed_db()
        db.run(HOT_QUERY)
        h = db.health()
        assert h["optimizer"]["replans"] == 1
        assert h["queries"]["replans"] == 1
