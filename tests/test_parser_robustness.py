"""Robustness fuzzing: the parsers must fail *only* with ParseError.

A production front-end never leaks ``IndexError``/``RecursionError``/
``KeyError`` to callers on garbage input.  Hypothesis throws arbitrary
text (and structured near-miss text) at every parser entry point.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError, ReproError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_program, parse_query, parse_type
from repro.methods.parser import parse_method_body
from repro.model.odl_parser import parse_class_defs

# text biased toward the language's own alphabet so we hit deep paths
ioql_alphabet = st.sampled_from(
    list("abcxyzPQ0123456789 (){}<>,.;:|=+-*\"'@_")
    + [
        "select ", "from ", "where ", "union ", "struct", "new ", "if ",
        "then ", "else ", "define ", "as ", "<-", "==", "sum", "bag",
        "list", "toset", "size", "exists ", "forall ", " in ", "true",
        "false", "class ", "extends ", "extent ", "attribute ",
        "return ", "while ", "var ",
    ]
)
junk = st.lists(ioql_alphabet, max_size=30).map("".join)


def _only_parse_errors(fn, text):
    try:
        fn(text)
    except ParseError:
        pass
    except RecursionError:
        pytest.fail(f"recursion blowup on {text!r}")
    # any other exception type propagates and fails the test


class TestFuzzing:
    @given(junk)
    @settings(max_examples=300, deadline=None)
    def test_query_parser_total(self, text):
        _only_parse_errors(parse_query, text)

    @given(junk)
    @settings(max_examples=200, deadline=None)
    def test_program_parser_total(self, text):
        _only_parse_errors(parse_program, text)

    @given(junk)
    @settings(max_examples=200, deadline=None)
    def test_type_parser_total(self, text):
        _only_parse_errors(parse_type, text)

    @given(junk)
    @settings(max_examples=200, deadline=None)
    def test_odl_parser_total(self, text):
        _only_parse_errors(parse_class_defs, text)

    @given(junk)
    @settings(max_examples=200, deadline=None)
    def test_method_parser_total(self, text):
        _only_parse_errors(parse_method_body, text)

    @given(st.text(max_size=50))
    @settings(max_examples=200, deadline=None)
    def test_lexer_total_on_unicode(self, text):
        try:
            tokenize(text)
        except ParseError:
            pass

    @given(junk)
    @settings(max_examples=100, deadline=None)
    def test_parse_errors_carry_positions(self, text):
        try:
            parse_query(text)
        except ParseError as exc:
            assert exc.line is None or exc.line >= 1
            if exc.line is not None:
                assert str(exc.line) in str(exc)


class TestParseErrorRendering:
    """The position prefix must only show the parts actually known."""

    def test_line_and_column(self):
        assert str(ParseError("bad token", line=12, column=3)) == (
            "12:3: bad token"
        )

    def test_line_only_has_no_phantom_column(self):
        # regression: this used to render as "12:0: bad token"
        assert str(ParseError("bad token", line=12)) == "12: bad token"

    def test_no_position_no_prefix(self):
        assert str(ParseError("bad token")) == "bad token"

    def test_attributes_preserved(self):
        exc = ParseError("bad token", line=12)
        assert exc.line == 12 and exc.column is None


class TestShellRobustness:
    """The shell must answer every line with text, never a traceback."""

    @given(junk)
    @settings(max_examples=150, deadline=None)
    def test_shell_never_raises_on_queries(self, text):
        from repro.shell import Shell

        sh = Shell()
        try:
            out = sh.handle(text)
        except SystemExit:
            return
        except ReproError:
            pytest.fail("ReproError escaped the shell")
        assert isinstance(out, str)

    @given(st.sampled_from([".type", ".effect", ".det", ".optimize", ".explain"]), junk)
    @settings(max_examples=100, deadline=None)
    def test_shell_commands_never_raise(self, cmd, text):
        from repro.shell import Shell

        out = Shell().handle(f"{cmd} {text}")
        assert isinstance(out, str)
