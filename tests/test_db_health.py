"""Tests for the health surface (repro.db.health + Database.health)."""

import json

import pytest

from repro import obs
from repro.db import health as health_mod
from repro.db.health import _percentile


@pytest.fixture
def clean_obs():
    obs.enable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestPercentile:
    def test_empty_is_zero(self):
        assert _percentile([], 0.99) == 0.0

    def test_single_sample(self):
        assert _percentile([0.25], 0.5) == 0.25

    def test_median_interpolates(self):
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_p99_tracks_the_tail(self):
        xs = [0.001] * 99 + [1.0]
        assert _percentile(xs, 0.99) > _percentile(xs, 0.50)
        assert _percentile(xs, 1.0) == 1.0
        assert _percentile(xs, 0.50) == pytest.approx(0.001)

    def test_order_independent(self):
        assert _percentile([3.0, 1.0, 2.0], 0.5) == 2.0


class TestCollect:
    def test_snapshot_is_json_safe(self, hr_db):
        json.dumps(hr_db.health())

    def test_sections_present(self, hr_db):
        h = hr_db.health()
        for key in ("plan_cache", "queries", "result_cache", "wal",
                    "scheduler", "indexes", "store", "faults", "flight"):
            assert key in h, key

    def test_query_counters_track_runs(self, hr_db):
        hr_db.run("{ p.name | p <- Persons }")
        hr_db.run("{ p.name | p <- Persons }")
        h = hr_db.health()
        assert h["queries"]["runs"] == 2
        assert h["queries"]["compiled"] == 2
        # second run replays the cached result
        assert h["result_cache"]["hits"] == 1
        assert h["plan_cache"]["hit_rate"] > 0

    def test_wal_section_reports_lsn_and_fsync_percentiles(
        self, hr_db, tmp_path
    ):
        hr_db.attach_wal(str(tmp_path / "db"))
        hr_db.insert("Manager", name="M", age=40, address="X", level=1)
        h = hr_db.health()
        assert h["wal"]["attached"] is True
        assert h["wal"]["applied_lsn"] == 1
        fs = h["wal"]["fsync"]
        assert fs["samples"] >= 1
        assert fs["p99_s"] >= fs["p50_s"] > 0.0
        hr_db.close()

    def test_detached_wal_section(self, hr_db):
        h = hr_db.health()
        assert h["wal"]["attached"] is False
        assert h["wal"]["fsync"]["samples"] == 0

    def test_scheduler_section_after_run_many(self, hr_db):
        hr_db.run_many(
            ["{ p.name | p <- Persons }", "size(Employees)"], workers=2
        )
        sched = hr_db.health()["scheduler"]
        assert sched is not None
        assert sched["queries"] == 2
        assert sched["queue_depth_peak"] >= 0
        assert sched["conflict_degree_mean"] >= 0.0

    def test_index_versions_surface(self, hr_db):
        hr_db.run(
            "{ struct(e: e.EmpID, m: m.name) | e <- Employees, "
            "m <- Managers, m == e.UniqueManager }"
        )
        idx = hr_db.health()["indexes"]
        assert idx["store_version"] == hr_db._state_version
        for name, version in idx["versions"].items():
            assert "." in name
            assert isinstance(version, int)


class TestExportGauges:
    def test_scalars_reach_the_prometheus_export(self, hr_db, clean_obs):
        hr_db.run("{ p.name | p <- Persons }")
        hr_db.health()
        text = obs.export.prometheus_text()
        for metric in ("plan_cache_hit_rate", "queries_total",
                       "wal_applied_lsn"):
            assert metric in text, metric

    def test_gauge_names_pass_validation(self):
        # registration itself validates: a bad name would raise here
        for name in health_mod._GAUGES:
            obs.metrics._validate_names(name, ())

    def test_missing_sections_skip_their_gauges(self):
        # no run_many batch yet -> scheduler is None -> its gauges skipped
        health_mod.export_gauges({"scheduler": None})

    def test_obs_off_health_touches_no_registry(self, hr_db):
        assert not obs.enabled()
        obs.reset()
        hr_db.health()
        assert obs.REGISTRY.collect() == []


class TestRender:
    def test_render_is_multiline_and_covers_subsystems(self, hr_db):
        text = health_mod.render(hr_db.health())
        for word in ("queries", "plan cache", "wal", "scheduler",
                     "indexes", "store", "flight"):
            assert word in text, word

    def test_render_with_wal_and_batch(self, hr_db, tmp_path):
        hr_db.attach_wal(str(tmp_path / "db"))
        hr_db.insert("Manager", name="M", age=40, address="X", level=1)
        hr_db.run_many(["size(Persons)"], workers=1)
        text = health_mod.render(hr_db.health())
        assert "fsync p50" in text
        assert "last batch" in text
        hr_db.close()


class TestShellTop:
    def test_top_command_renders_health(self, hr_db):
        from repro.shell import Shell

        sh = Shell(hr_db)
        out = sh.handle(".top")
        assert "database health" in out

    def test_explain_analyze_command(self, hr_db):
        from repro.shell import Shell

        sh = Shell(hr_db)
        out = sh.handle(".explain analyze { p.name | p <- Persons }")
        assert "est rows" in out and "actual" in out
