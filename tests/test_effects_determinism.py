"""Unit tests for the ⊢′ determinism system (repro.effects.determinism)."""

import pytest

from repro.effects.determinism import (
    analyze_determinism,
    check_deterministic,
    is_deterministic,
)
from repro.errors import IOQLEffectError
from repro.lang.parser import parse_query
from repro.model.odl_parser import parse_schema

ODL = """
class P extends Object (extent Ps) {
    attribute string name;
}
class F extends Object (extent Fs) {
    attribute string name;
}
"""


@pytest.fixture(scope="module")
def schema():
    return parse_schema(ODL)


def q(schema, src):
    return parse_query(src, schema=schema)


class TestAccepted:
    def test_pure_comprehension(self, schema):
        assert is_deterministic(schema, q(schema, "{p.name | p <- Ps}"))

    def test_read_in_body_ok_without_write(self, schema):
        assert is_deterministic(
            schema, q(schema, "{size(Fs) | p <- Ps}")
        )

    def test_write_in_body_ok_without_read_of_same(self, schema):
        # body adds to F but never reads F: instances cannot see each
        # other; deterministic up to the oid bijection (Theorem 7)
        src = '{ struct(a: p.name, b: new F(name: p.name)).a | p <- Ps }'
        assert is_deterministic(schema, q(schema, src))

    def test_read_and_write_disjoint_classes(self, schema):
        src = '{ struct(a: size(Ps), b: new F(name: "x")).a | p <- Ps }'
        # body reads Ps and adds F — different classes, no interference
        assert is_deterministic(schema, q(schema, src))

    def test_source_effect_not_constrained(self, schema):
        # ε₂ (the generator source) is unconstrained by (Comp2′); only
        # the residual body ε₁ must be non-interfering
        src = "{ x.name | x <- Ps union Ps }"
        assert is_deterministic(schema, q(schema, src))

    def test_no_generators_always_ok(self, schema):
        src = 'struct(a: size(Fs), b: new F(name: "x")).a'
        assert is_deterministic(schema, q(schema, src))


class TestRejected:
    SRC = (
        '{ (if size(Fs) = 0 '
        '   then struct(r: "Peter", w: new F(name: "Peter")).r '
        '   else p.name) | p <- Ps }'
    )

    def test_paper_example_rejected(self, schema):
        """The §1 Jack/Jill query: body reads and adds F."""
        assert not is_deterministic(schema, q(schema, self.SRC))

    def test_witness_names_conflicting_class(self, schema):
        _, _, wit = analyze_determinism(schema, q(schema, self.SRC))
        assert len(wit) == 1
        assert wit[0].conflicting == frozenset({"F"})
        assert "F" in str(wit[0])

    def test_check_raises(self, schema):
        with pytest.raises(IOQLEffectError, match="⊢′"):
            check_deterministic(schema, q(schema, self.SRC))

    def test_nested_interference_detected(self, schema):
        # the interfering generator is nested one level down
        src = "{ size({ y | y <- Fs, size({new F(name: y.name)}) = 1 }) | p <- Ps }"
        assert not is_deterministic(schema, q(schema, src))

    def test_outer_generator_sees_inner_effects(self, schema):
        # inner comp is fine on its own, but its effect propagates into
        # the outer body, which also reads F... here outer body both
        # reads Fs (via inner generator) and adds F (via head)
        src = "{ struct(a: f, b: new F(name: f.name)).a | f <- Ps, g <- Fs }"
        # body of generator g: reads nothing further, adds F; body of f:
        # reads Fs (source of g) and adds F → interference
        assert not is_deterministic(schema, q(schema, src))


class TestAnalysisOutput:
    def test_accepted_returns_type_and_effect(self, schema):
        t, eff, wit = analyze_determinism(
            schema, q(schema, "{p.name | p <- Ps}")
        )
        assert not wit
        assert str(t) == "set<string>"
        assert eff.reads() == frozenset({"P"})

    def test_multiple_witnesses_collected(self, schema):
        src = (
            "{ size({ (if size(Fs) = 0 "
            "          then struct(a: x.name, b: new F(name: x.name)).a "
            "          else x.name) | x <- Fs }) "
            "  | p <- Fs, size({new F(name: p.name)}) = 1 }"
        )
        _, _, wit = analyze_determinism(schema, q(schema, src))
        # both the inner generator (reads+adds F) and the outer one are
        # interference witnesses
        assert len(wit) >= 2
