"""Tests for the cost model and cost-based generator reordering."""

import pytest

from repro.db.database import Database
from repro.optimizer.cost import (
    CostModel,
    make_reorder_rule,
    optimize_with_costs,
)
from repro.optimizer.equivalence import observationally_equal
from repro.optimizer.rules import RewriteContext

ODL = """
class Big extends Object (extent Bigs) { attribute int n; }
class Small extends Object (extent Smalls) { attribute int n; }
class Loud extends Object (extent Louds) {
    attribute int n;
    int yell() { return this.n; }
}
"""


@pytest.fixture
def db():
    d = Database.from_odl(ODL)
    for i in range(6):
        d.insert("Big", n=i)
    d.insert("Small", n=100)
    d.insert("Loud", n=1)
    return d


class TestCostModel:
    def test_extent_cardinality_from_catalog(self, db):
        m = CostModel.from_database(db)
        assert m.cardinality(db.parse("Bigs")) == 6
        assert m.cardinality(db.parse("Smalls")) == 1

    def test_literal_cardinality(self, db):
        m = CostModel.from_database(db)
        assert m.cardinality(db.parse("{1, 2, 3}")) == 3
        assert m.cardinality(db.parse("bag(1, 1)")) == 2

    def test_union_adds(self, db):
        m = CostModel.from_database(db)
        assert m.cardinality(db.parse("Bigs union Bigs")) == 12

    def test_predicate_applies_selectivity(self, db):
        m = CostModel.from_database(db)
        card = m.cardinality(db.parse("{b | b <- Bigs, b.n < 3}"))
        assert card == pytest.approx(6 * m.selectivity)

    def test_join_cardinality_is_product(self, db):
        m = CostModel.from_database(db)
        card = m.cardinality(db.parse("{1 | b <- Bigs, s <- Smalls}"))
        assert card == pytest.approx(6.0)

    def test_eval_cost_prefers_small_outer(self, db):
        m = CostModel.from_database(db)
        big_outer = db.parse("{1 | b <- Bigs, s <- Smalls}")
        small_outer = db.parse("{1 | s <- Smalls, b <- Bigs}")
        assert m.eval_cost(small_outer) < m.eval_cost(big_outer)

    def test_cost_monotone_in_extent_size(self):
        a = CostModel({"Es": 2})
        b = CostModel({"Es": 200})
        from repro.lang.parser import parse_query

        q = parse_query("{x | x <- Es}", extents={"Es"})
        assert a.eval_cost(q) < b.eval_cost(q)


class TestReorderRule:
    def test_swaps_big_outer_for_small(self, db):
        rule = make_reorder_rule(CostModel.from_database(db))
        rc = RewriteContext(db.type_context())
        q = db.parse("{struct(a: b.n, c: s.n) | b <- Bigs, s <- Smalls}")
        out = rule.apply(rc, q)
        assert out == db.parse(
            "{struct(a: b.n, c: s.n) | s <- Smalls, b <- Bigs}"
        )

    def test_leaves_good_order_alone(self, db):
        rule = make_reorder_rule(CostModel.from_database(db))
        rc = RewriteContext(db.type_context())
        q = db.parse("{1 | s <- Smalls, b <- Bigs}")
        assert rule.apply(rc, q) is None

    def test_respects_dependence(self, db):
        # the second generator ranges over a set built from the first's
        # variable: never swapped
        rule = make_reorder_rule(CostModel.from_database(db))
        rc = RewriteContext(db.type_context())
        q = db.parse("{x | b <- Bigs, x <- {b.n}}")
        assert rule.apply(rc, q) is None

    def test_respects_effects(self, db):
        # a source containing a method call is not termination-safe:
        # its evaluation count must not change
        rule = make_reorder_rule(CostModel.from_database(db))
        rc = RewriteContext(db.type_context())
        q = db.parse(
            "{1 | b <- Bigs, l <- {x | x <- Louds, x.yell() > 0}}"
        )
        assert rule.apply(rc, q) is None

    def test_pipeline_integration(self, db):
        q = db.parse("{struct(a: b.n, c: s.n) | b <- Bigs, s <- Smalls, 1 = 1}")
        res = optimize_with_costs(db, q)
        assert "reorder-generators" in res.rules_fired()
        assert "true-pred" in res.rules_fired()

    def test_reorder_preserves_semantics(self, db):
        q = db.parse("{struct(a: b.n, c: s.n) | b <- Bigs, s <- Smalls}")
        res = optimize_with_costs(db, q)
        assert res.changed
        report = observationally_equal(db, q, res.query, max_paths=100_000)
        assert report.equal, report.reason

    def test_reorder_actually_saves_steps(self, db):
        # the reduction machine executes the literal qualifier order
        # (the compiled engine would re-optimize both queries the same
        # way, erasing the comparison)
        q = db.parse("{struct(a: b.n, c: s.n) | b <- Bigs, s <- Smalls}")
        res = optimize_with_costs(db, q)
        before = db.run(q, commit=False, engine="reduction").steps
        after = db.run(res.query, commit=False, engine="reduction").steps
        assert after < before


SKEW_ODL = """
class Fact extends Object (extent Facts) {
    attribute int grp;
    attribute int key;
}
class Dim extends Object (extent Dims) {
    attribute int id;
}
"""


@pytest.fixture
def skew_db():
    d = Database.from_odl(SKEW_ODL)
    for i in range(60):
        d.insert("Fact", grp=i % 2, key=i)
    for i in range(30):
        d.insert("Dim", id=i)
    return d


class TestStatsDrivenSelectivity:
    """The v2 estimators: 1/distinct equality, histogram ranges."""

    def test_equality_uses_distinct_count(self, skew_db):
        m = CostModel.from_database(skew_db)
        # grp has 2 distinct values over 60 rows -> selectivity 1/2
        card = m.cardinality(skew_db.parse("{f | f <- Facts, f.grp = 1}"))
        assert card == pytest.approx(30.0)
        # key has 60 distinct values -> selectivity 1/60
        card = m.cardinality(skew_db.parse("{f | f <- Facts, f.key = 7}"))
        assert card == pytest.approx(1.0)

    def test_join_selectivity_from_matching_distincts(self, skew_db):
        m = CostModel.from_database(skew_db)
        # |Facts|*|Dims| / max(d(key), d(id)) = 60*30/60 = 30
        card = m.cardinality(
            skew_db.parse("{1 | f <- Facts, d <- Dims, f.key = d.id}")
        )
        assert card == pytest.approx(30.0)

    def test_range_uses_histogram(self, skew_db):
        m = CostModel.from_database(skew_db)
        # key uniform 0..59: key < 15 keeps ~a quarter
        card = m.cardinality(skew_db.parse("{f | f <- Facts, f.key < 15}"))
        assert card == pytest.approx(15.0, rel=0.2)

    def test_constants_remain_fallback_without_stats(self, skew_db):
        m = CostModel(
            {e: len(skew_db.ee.members(e)) for e in skew_db.ee.names()}
        )
        card = m.cardinality(skew_db.parse("{f | f <- Facts, f.grp = 1}"))
        assert card == pytest.approx(60 * 0.1)  # EQUALITY_SELECTIVITY

    def test_mirrored_range_operand(self, skew_db):
        m = CostModel.from_database(skew_db)
        a = m.cardinality(skew_db.parse("{f | f <- Facts, f.key < 15}"))
        b = m.cardinality(skew_db.parse("{f | f <- Facts, 15 > f.key}"))
        assert a == pytest.approx(b)


class TestProfilerAgreement:
    """Regression for the v1 bug: ``cardinality``/``eval_cost`` priced
    filter qualifiers with the flat default selectivity while the
    reorder rule used ``predicate_selectivity`` — the two halves of the
    optimizer disagreed about the same plan.  v2 routes every consumer
    through ``predicate_selectivity``, so the compiled plan's operator
    estimates must equal the model's comprehension cardinality."""

    def _emit_est(self, db, src):
        from repro.exec.compiler import compile_plan
        from repro.optimizer.cost import cost_rules
        from repro.optimizer.planner import optimize

        m = CostModel.from_database(db)
        q = optimize(db, db.parse(src), cost_rules(m), model=m).query
        plan = compile_plan(
            db.schema, {}, q, profile=True, cost_model=m
        )
        emits = [op for op in plan.ops if op.kind == "emit"]
        assert emits
        return emits[-1].est_rows, m.cardinality(q), m

    def test_cardinality_uses_predicate_selectivity(self, skew_db):
        m = CostModel.from_database(skew_db)
        eq = m.cardinality(skew_db.parse("{f | f <- Facts, f.key = 3}"))
        flat = m.cardinality(skew_db.parse("{f | f <- Facts}"))
        # the regression: with the v1 bug both came out as 60*0.5
        assert eq == pytest.approx(1.0)
        assert flat == pytest.approx(60.0)

    def test_eval_cost_uses_predicate_selectivity(self, skew_db):
        m = CostModel.from_database(skew_db)
        # downstream work after a selective filter must be cheaper than
        # after a non-selective one
        selective = skew_db.parse(
            "{1 | f <- Facts, f.key = 3, d <- Dims}"
        )
        broad = skew_db.parse("{1 | f <- Facts, f.grp = 1, d <- Dims}")
        assert m.eval_cost(selective) < m.eval_cost(broad)

    def test_emit_estimate_matches_model_cardinality(self, skew_db):
        est, card, _ = self._emit_est(
            skew_db, "{f.key | f <- Facts, f.grp = 1, f.key < 15}"
        )
        assert est == pytest.approx(card)

    def test_join_plan_estimate_matches_model(self, skew_db):
        est, card, _ = self._emit_est(
            skew_db, "{f.key | f <- Facts, d <- Dims, f.key = d.id}"
        )
        assert est == pytest.approx(card)


class TestPlanStaleness:
    """Regression for the v1 bug: cached plans were never re-costed as
    the catalog drifted, so a join order chosen when an extent was
    empty survived its growth to 10k rows."""

    def test_plan_recompiled_after_geometric_growth(self, skew_db):
        q = "{struct(a: f.key, b: d.id) | f <- Facts, d <- Dims}"
        parsed = skew_db.parse(q)
        d1 = skew_db.plan_decision(parsed)
        e1 = skew_db._plan_cache.get(parsed, skew_db._defs_version)
        assert d1.engine == "compiled"
        # grow Dims well past the 2x+8 drift threshold
        for i in range(500):
            skew_db.insert("Dim", id=1000 + i)
        d2 = skew_db.plan_decision(parsed)
        e2 = skew_db._plan_cache.get(parsed, skew_db._defs_version)
        assert e2 is not e1
        assert e2.stats_epoch > e1.stats_epoch

    @staticmethod
    def _outer_extent(decision):
        from repro.lang.ast import Gen

        gens = [
            cq
            for cq in decision.plan.source.qualifiers
            if isinstance(cq, Gen)
        ]
        return gens[0].source.name

    def test_join_order_flips_when_sizes_invert(self):
        d = Database.from_odl(SKEW_ODL)
        for i in range(40):
            d.insert("Fact", grp=0, key=i)
        d.insert("Dim", id=0)
        q = "{struct(a: f.key, b: d.id) | f <- Facts, d <- Dims}"
        parsed = d.parse(q)
        assert self._outer_extent(d.plan_decision(parsed)) == "Dims"
        # 1 -> 1k rows: Dims becomes the big side
        for i in range(1000):
            d.insert("Dim", id=i)
        assert self._outer_extent(d.plan_decision(parsed)) == "Facts"

    def test_steady_state_commits_do_not_thrash(self, skew_db):
        # commits to an extent the query does not read: the Theorem 5
        # eviction leaves the entry alone, and sub-geometric growth
        # must not bump the epoch out from under it either
        q = "{f | f <- Facts, f.grp = 1}"
        parsed = skew_db.parse(q)
        skew_db.plan_decision(parsed)
        e1 = skew_db._plan_cache.get(parsed, skew_db._defs_version)
        skew_db.insert("Dim", id=999)  # small growth elsewhere: no bump
        skew_db.plan_decision(parsed)
        e2 = skew_db._plan_cache.get(parsed, skew_db._defs_version)
        assert e2 is e1
