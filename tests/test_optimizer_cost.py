"""Tests for the cost model and cost-based generator reordering."""

import pytest

from repro.db.database import Database
from repro.optimizer.cost import (
    CostModel,
    make_reorder_rule,
    optimize_with_costs,
)
from repro.optimizer.equivalence import observationally_equal
from repro.optimizer.rules import RewriteContext

ODL = """
class Big extends Object (extent Bigs) { attribute int n; }
class Small extends Object (extent Smalls) { attribute int n; }
class Loud extends Object (extent Louds) {
    attribute int n;
    int yell() { return this.n; }
}
"""


@pytest.fixture
def db():
    d = Database.from_odl(ODL)
    for i in range(6):
        d.insert("Big", n=i)
    d.insert("Small", n=100)
    d.insert("Loud", n=1)
    return d


class TestCostModel:
    def test_extent_cardinality_from_catalog(self, db):
        m = CostModel.from_database(db)
        assert m.cardinality(db.parse("Bigs")) == 6
        assert m.cardinality(db.parse("Smalls")) == 1

    def test_literal_cardinality(self, db):
        m = CostModel.from_database(db)
        assert m.cardinality(db.parse("{1, 2, 3}")) == 3
        assert m.cardinality(db.parse("bag(1, 1)")) == 2

    def test_union_adds(self, db):
        m = CostModel.from_database(db)
        assert m.cardinality(db.parse("Bigs union Bigs")) == 12

    def test_predicate_applies_selectivity(self, db):
        m = CostModel.from_database(db)
        card = m.cardinality(db.parse("{b | b <- Bigs, b.n < 3}"))
        assert card == pytest.approx(6 * m.selectivity)

    def test_join_cardinality_is_product(self, db):
        m = CostModel.from_database(db)
        card = m.cardinality(db.parse("{1 | b <- Bigs, s <- Smalls}"))
        assert card == pytest.approx(6.0)

    def test_eval_cost_prefers_small_outer(self, db):
        m = CostModel.from_database(db)
        big_outer = db.parse("{1 | b <- Bigs, s <- Smalls}")
        small_outer = db.parse("{1 | s <- Smalls, b <- Bigs}")
        assert m.eval_cost(small_outer) < m.eval_cost(big_outer)

    def test_cost_monotone_in_extent_size(self):
        a = CostModel({"Es": 2})
        b = CostModel({"Es": 200})
        from repro.lang.parser import parse_query

        q = parse_query("{x | x <- Es}", extents={"Es"})
        assert a.eval_cost(q) < b.eval_cost(q)


class TestReorderRule:
    def test_swaps_big_outer_for_small(self, db):
        rule = make_reorder_rule(CostModel.from_database(db))
        rc = RewriteContext(db.type_context())
        q = db.parse("{struct(a: b.n, c: s.n) | b <- Bigs, s <- Smalls}")
        out = rule.apply(rc, q)
        assert out == db.parse(
            "{struct(a: b.n, c: s.n) | s <- Smalls, b <- Bigs}"
        )

    def test_leaves_good_order_alone(self, db):
        rule = make_reorder_rule(CostModel.from_database(db))
        rc = RewriteContext(db.type_context())
        q = db.parse("{1 | s <- Smalls, b <- Bigs}")
        assert rule.apply(rc, q) is None

    def test_respects_dependence(self, db):
        # the second generator ranges over a set built from the first's
        # variable: never swapped
        rule = make_reorder_rule(CostModel.from_database(db))
        rc = RewriteContext(db.type_context())
        q = db.parse("{x | b <- Bigs, x <- {b.n}}")
        assert rule.apply(rc, q) is None

    def test_respects_effects(self, db):
        # a source containing a method call is not termination-safe:
        # its evaluation count must not change
        rule = make_reorder_rule(CostModel.from_database(db))
        rc = RewriteContext(db.type_context())
        q = db.parse(
            "{1 | b <- Bigs, l <- {x | x <- Louds, x.yell() > 0}}"
        )
        assert rule.apply(rc, q) is None

    def test_pipeline_integration(self, db):
        q = db.parse("{struct(a: b.n, c: s.n) | b <- Bigs, s <- Smalls, 1 = 1}")
        res = optimize_with_costs(db, q)
        assert "reorder-generators" in res.rules_fired()
        assert "true-pred" in res.rules_fired()

    def test_reorder_preserves_semantics(self, db):
        q = db.parse("{struct(a: b.n, c: s.n) | b <- Bigs, s <- Smalls}")
        res = optimize_with_costs(db, q)
        assert res.changed
        report = observationally_equal(db, q, res.query, max_paths=100_000)
        assert report.equal, report.reason

    def test_reorder_actually_saves_steps(self, db):
        q = db.parse("{struct(a: b.n, c: s.n) | b <- Bigs, s <- Smalls}")
        res = optimize_with_costs(db, q)
        before = db.run(q, commit=False).steps
        after = db.run(res.query, commit=False).steps
        assert after < before
