"""Differential testing of optimizer v2 against the big-step semantics.

A seeded generator produces hundreds of queries — filters, joins,
nested comprehensions, set operations, definition calls — over
adversarially skewed data, and every one is run on both the
cost-based compiled engine (stats-driven reordering, join selection,
adaptive replanning) and the §3 big-step evaluator.  The values must
be identical: the paper's bijection argument makes the two semantics
agree on every read-only query, so any divergence is an optimizer bug,
not a modelling choice.  The corpus deliberately includes queries whose
derived sources misestimate hard enough to force mid-query replans.
"""

import random

import pytest

from repro.db.database import Database

ODL = """
class Emp extends Object (extent Emps) {
    attribute string name;
    attribute int dept;
    attribute int salary;
}
class Dept extends Object (extent Depts) {
    attribute int id;
    attribute int grp;
}
class Tag extends Object (extent Tags) {
    attribute int n;
}
"""

N_QUERIES = 220


def build_db() -> Database:
    """Skewed: dept 0 holds ~70% of Emps, salaries cluster low."""
    db = Database.from_odl(ODL)
    rng = random.Random(1234)
    for i in range(50):
        dept = 0 if rng.random() < 0.7 else rng.randrange(1, 12)
        salary = rng.randrange(10) if rng.random() < 0.8 else rng.randrange(100)
        db.insert("Emp", name=f"e{i}", dept=dept, salary=salary)
    for i in range(15):
        db.insert("Dept", id=i, grp=i % 3)
    for i in range(6):
        db.insert("Tag", n=i)
    db.define("define hotdept() as { e | e <- Emps, e.dept = 0 };")
    db.define("define cheap(c: int) as { e | e <- Emps, e.salary < c };")
    return db


OPS = ["=", "<", "<=", ">", ">="]


def gen_query(rng: random.Random) -> str:
    kind = rng.randrange(10)
    dept_c = rng.randrange(12)
    sal_c = rng.randrange(100)
    op1 = rng.choice(OPS)
    op2 = rng.choice(OPS)
    if kind == 0:
        return f"{{ e.name | e <- Emps, e.dept {op1} {dept_c} }}"
    if kind == 1:
        # two filters in a random order: reordering bait
        preds = [f"e.dept {op1} {dept_c}", f"e.salary {op2} {sal_c}"]
        rng.shuffle(preds)
        return f"{{ e.salary | e <- Emps, {preds[0]}, {preds[1]} }}"
    if kind == 2:
        # equi-join, generator order randomized
        gens = ["e <- Emps", "d <- Depts"]
        rng.shuffle(gens)
        return (
            f"{{ struct(a: e.name, b: d.grp) | {gens[0]}, {gens[1]}, "
            f"e.dept = d.id }}"
        )
    if kind == 3:
        # three-way cross with a late selective filter
        return (
            f"{{ struct(a: e.salary, b: t.n) | e <- Emps, d <- Depts, "
            f"t <- Tags, e.dept = d.id, d.grp = {rng.randrange(3)}, "
            f"t.n {op1} {rng.randrange(6)} }}"
        )
    if kind == 4:
        # nested comprehension (unnest bait)
        return (
            f"{{ x | x <- {{ e.salary | e <- Emps, "
            f"e.dept {op1} {dept_c} }} }}"
        )
    if kind == 5:
        # defcall source: cardinality unknown at compile time, the
        # skew makes hotdept() a guaranteed misestimate (replan bait)
        return "{ s.salary | s <- hotdept() }"
    if kind == 6:
        return f"{{ s.name | s <- cheap({sal_c}) }}"
    if kind == 7:
        # setop source (survives unnesting; movable)
        return (
            "{ struct(a: s.dept, b: t.n) | s <- (Emps intersect "
            "(Emps intersect Emps)), t <- Tags }"
        )
    if kind == 8:
        return (
            f"(Emps intersect Emps) union "
            f"{{ e | e <- Emps, e.salary {op2} {sal_c} }}"
        )
    # correlated nested comp in the head
    return (
        f"{{ struct(d: d.id, team: {{ e.name | e <- Emps, "
        f"e.dept = d.id }}) | d <- Depts, d.grp {op1} {rng.randrange(3)} }}"
    )


def corpus():
    rng = random.Random(987)
    return [gen_query(rng) for _ in range(N_QUERIES)]


class TestDifferential:
    def test_corpus_is_large_enough(self):
        assert len(corpus()) >= 200

    def test_compiled_matches_bigstep_on_corpus(self):
        db = build_db()
        mismatches = []
        compiled_runs = 0
        for src in corpus():
            got = db.run(src, commit=False)
            want = db.run(src, commit=False, engine="bigstep")
            if got.value != want.value:
                mismatches.append(
                    (src, str(got.value)[:80], str(want.value)[:80])
                )
            if got.engine == "compiled":
                compiled_runs += 1
        assert not mismatches, mismatches[:3]
        # the corpus must actually exercise the optimized engine and
        # force at least one adaptive replan on the skewed sources
        assert compiled_runs >= N_QUERIES * 0.8
        assert db._qstats["replans"] >= 1

    def test_replanned_query_stays_deterministic(self):
        # the same replan-forcing query, repeated: every run (first,
        # replanned, cached) returns the same value as big-step
        db = build_db()
        src = "{ s.salary | s <- hotdept() }"
        want = db.run(src, commit=False, engine="bigstep").value
        for _ in range(3):
            assert db.run(src, commit=False).value == want
        assert db._qstats["replans"] == 1

    def test_corpus_under_growth_stays_correct(self):
        # grow the hot extent past the epoch threshold mid-corpus:
        # plans recompiled against the drifted catalog must still agree
        db = build_db()
        sample = corpus()[:40]
        for src in sample:
            assert (
                db.run(src, commit=False).value
                == db.run(src, commit=False, engine="bigstep").value
            )
        for i in range(150):
            db.insert("Emp", name=f"g{i}", dept=0, salary=i % 7)
        for src in sample:
            assert (
                db.run(src, commit=False).value
                == db.run(src, commit=False, engine="bigstep").value
            )
