"""Partition-parallel execution: pruning, caches, conflicts, surfaces.

Certifies the compiled engine's sharded paths against the unsharded
engine (scan pruning, pruned index probes, forced pool fan-out), the
per-``(class, shard)`` refinement of plan/result-cache invalidation,
the scheduler's ``shard_conflicts`` rule, the TD2-style cost report,
and the operator surfaces (``health()["sharding"]``, ``shard_*``
gauges, ``.shard``/``.shards``/``.explain cost``).
"""

import pytest

from repro.db.database import Database
from repro.db.shards import shard_of
from repro.effects.algebra import EMPTY, Effect, add, read, update
from repro.exec import parallel
from repro.lang.ast import StrLit
from repro.resilience.faults import FaultPlan, FaultRule, inject
from repro.sched.scheduler import Admission, shard_conflicts
from repro.shell import Shell

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute string region;
    attribute int age;
}
class Order extends Object (extent Orders) {
    attribute string item;
    attribute string region;
    attribute int qty;
}
"""

K = 4
REGIONS = 8


def make_pair(n: int = 64) -> tuple[Database, Database]:
    """Twin databases with identical contents; one sharded."""
    out = []
    for sharded in (True, False):
        db = Database.from_odl(ODL)
        if sharded:
            db.shard("Person", k=K, by="region")
            db.shard("Order", k=K, by="region")
        for i in range(n):
            db.insert(
                "Person", name=f"p{i}", region=f"r{i % REGIONS}", age=i
            )
        for i in range(n // 2):
            db.insert(
                "Order", item=f"it{i}", region=f"r{i % REGIONS}", qty=i % 7
            )
        out.append(db)
    return out[0], out[1]


def canon(value) -> list:
    return sorted(value.items, key=repr)


QUERIES = [
    '{ p.name | p <- Persons, p.region = "r1" }',
    '{ p.name | p <- Persons, p.region = "r1", p.age > 10 }',
    "{ p.name | p <- Persons, p.age > 20 }",
    '{ struct(n: p.name, it: o.item) | p <- Persons, p.region = "r2", '
    "o <- Orders, p.region = o.region, o.qty > 1 }",
    '{ p.age | p <- Persons, p.region = "nowhere" }',
]


class TestShardedEquivalence:
    @pytest.mark.parametrize("src", QUERIES)
    def test_sharded_run_equals_unsharded(self, src):
        sharded, plain = make_pair()
        assert canon(sharded.run(src).value) == canon(plain.run(src).value)

    def test_forced_pool_fanout_equals_unsharded(self, monkeypatch):
        # MIN_ROWS = 0 forces every whole-extent scan through the
        # worker pool regardless of size
        monkeypatch.setattr(parallel, "MIN_ROWS", 0)
        sharded, plain = make_pair()
        src = "{ p.name | p <- Persons, p.age > 5 }"
        before = parallel.snapshot()["batches"]
        got = sharded.run(src).value
        assert parallel.snapshot()["batches"] > before, "pool not used"
        assert canon(got) == canon(plain.run(src).value)

    def test_pool_task_fault_fails_query_but_not_database(
        self, monkeypatch
    ):
        monkeypatch.setattr(parallel, "MIN_ROWS", 0)
        sharded, _ = make_pair()
        plan = FaultPlan(
            (FaultRule(site="exec.shard", at=2, kind="transient"),)
        )
        src = "{ p.name | p <- Persons, p.age > 5 }"
        with inject(plan):
            with pytest.raises(Exception):
                sharded.run(src)
        assert sharded.run(src).value.items  # next run is fine


class TestPruning:
    def test_confined_query_records_single_shard_dynamic_read(self):
        sharded, _ = make_pair()
        src = '{ p.name | p <- Persons, p.region = "r1" }'
        sharded.run(src)
        entry = sharded._plan_cache.get(
            sharded.parse(src), sharded._defs_version
        )
        assert entry is not None
        confined = entry.result_shard_reads["Person"]
        assert confined == frozenset({shard_of(StrLit("r1"), K)})

    def test_unconfined_query_records_whole_class_read(self):
        sharded, _ = make_pair()
        src = "{ p.name | p <- Persons, p.age > 3 }"
        sharded.run(src)
        entry = sharded._plan_cache.get(
            sharded.parse(src), sharded._defs_version
        )
        reads = (entry.result_shard_reads or {}).get("Person")
        assert reads is None  # None = all shards

    def test_plan_notes_mention_pruning(self):
        sharded, _ = make_pair()
        decision = sharded.plan_decision(
            '{ p.name | p <- Persons, p.region = "r1" }'
        )
        notes = " ".join(decision.plan.notes)
        assert "shard" in notes


class TestPerShardInvalidation:
    def test_result_survives_disjoint_shard_write(self):
        sharded, _ = make_pair()
        src = '{ p.name | p <- Persons, p.region = "r1" }'
        q = sharded.parse(src)
        sharded.run(q)
        hits0 = sharded._qstats["result_cache_hits"]
        # write into a *different* shard of the same class
        target = shard_of(StrLit("r1"), K)
        other = next(
            f"s{i}"
            for i in range(100)
            if shard_of(StrLit(f"s{i}"), K) != target
        )
        sharded.insert("Person", name="w", region=other, age=1)
        sharded.run(q)
        assert sharded._qstats["result_cache_hits"] == hits0 + 1

    def test_result_evicts_on_same_shard_write(self):
        sharded, _ = make_pair()
        src = '{ p.name | p <- Persons, p.region = "r1" }'
        q = sharded.parse(src)
        before = canon(sharded.run(q).value)
        hits0 = sharded._qstats["result_cache_hits"]
        sharded.insert("Person", name="w", region="r1", age=99)
        after = sharded.run(q).value
        assert sharded._qstats["result_cache_hits"] == hits0
        assert len(after.items) == len(before) + 1

    def test_unsharded_twin_loses_cache_on_any_write(self):
        _, plain = make_pair()
        src = '{ p.name | p <- Persons, p.region = "r1" }'
        q = plain.parse(src)
        plain.run(q)
        hits0 = plain._qstats["result_cache_hits"]
        plain.insert("Person", name="w", region="zzz", age=1)
        plain.run(q)
        assert plain._qstats["result_cache_hits"] == hits0


class TestShardConflicts:
    def _adm(self, idx, effect, reads=None, writes=None):
        return Admission(
            index=idx,
            source="",
            effect=effect,
            read_shards=reads,
            write_shards=writes,
        )

    def test_non_conflicting_effects_stay_free(self):
        a = self._adm(0, Effect.of(read("Person")))
        b = self._adm(1, Effect.of(add("Order")))
        assert not shard_conflicts(a, b)

    def test_disjoint_shard_reader_writer_drop_edge(self):
        a = self._adm(
            0, Effect.of(read("Person")), reads={"Person": frozenset({1})}
        )
        b = self._adm(
            1, Effect.of(add("Person")), writes={"Person": frozenset({2})}
        )
        assert not shard_conflicts(a, b)
        assert not shard_conflicts(b, a)

    def test_same_shard_reader_writer_keep_edge(self):
        a = self._adm(
            0, Effect.of(read("Person")), reads={"Person": frozenset({2})}
        )
        b = self._adm(
            1, Effect.of(add("Person")), writes={"Person": frozenset({2})}
        )
        assert shard_conflicts(a, b)

    def test_missing_analysis_keeps_edge(self):
        a = self._adm(0, Effect.of(read("Person")), reads=None)
        b = self._adm(
            1, Effect.of(add("Person")), writes={"Person": frozenset({2})}
        )
        assert shard_conflicts(a, b)

    def test_update_always_keeps_edge(self):
        a = self._adm(
            0,
            Effect.of(update("Person")),
            reads={"Person": frozenset({1})},
            writes={"Person": frozenset({1})},
        )
        b = self._adm(
            1, Effect.of(add("Person")), writes={"Person": frozenset({2})}
        )
        assert shard_conflicts(a, b)

    def test_disjoint_writers_overlap_only_when_allowed(self):
        a = self._adm(
            0, Effect.of(add("Person")), writes={"Person": frozenset({1})}
        )
        b = self._adm(
            1, Effect.of(add("Person")), writes={"Person": frozenset({2})}
        )
        assert shard_conflicts(a, b)  # atomic default: keep the edge
        assert not shard_conflicts(a, b, allow_writer_overlap=True)

    def test_same_shard_writers_conflict_even_when_allowed(self):
        a = self._adm(
            0, Effect.of(add("Person")), writes={"Person": frozenset({1})}
        )
        b = self._adm(
            1, Effect.of(add("Person")), writes={"Person": frozenset({1})}
        )
        assert shard_conflicts(a, b, allow_writer_overlap=True)

    def test_run_many_overlaps_disjoint_shard_writers(self):
        sharded, _ = make_pair(n=16)
        batch = [
            f'new Person(name: "b{i}", region: "r{i}", age: {i})'
            for i in range(6)
        ]
        res = sharded.run_many(batch, workers=4)
        # 6 A(Person) writers: the class-level graph would be a clique
        # (15 edges); per-shard refinement keeps only same-shard pairs
        clique = 6 * 5 // 2
        assert res.conflict_edges < clique
        assert len(sharded.ee.members("Persons")) == 16 + 6

    def test_atomic_batch_still_serialises_writers(self):
        sharded, _ = make_pair(n=8)
        batch = [
            f'new Person(name: "b{i}", region: "r{i}", age: {i})'
            for i in range(4)
        ]
        res = sharded.run_many(batch, workers=4, atomic=True)
        assert len(sharded.ee.members("Persons")) == 8 + 4
        assert res.conflict_edges == 4 * 3 // 2


class TestCostReport:
    def test_pruned_access_reported(self):
        sharded, _ = make_pair()
        report = sharded.explain_cost(
            '{ p.name | p <- Persons, p.region = "r1" }'
        )
        (access,) = report.accesses
        assert access.sharded and access.pruned
        assert access.shards_accessed == 1
        assert access.rows_scanned < access.rows
        assert report.merges[0].pipelines == 1

    def test_unconfined_access_prices_all_shards(self):
        sharded, _ = make_pair()
        report = sharded.explain_cost("{ p.name | p <- Persons, p.age > 3 }")
        (access,) = report.accesses
        assert access.shards_accessed == K and not access.pruned
        assert report.merges[0].pipelines == K
        assert report.predicates  # the filter's selectivity is listed

    def test_report_is_json_safe(self):
        import json

        sharded, _ = make_pair()
        report = sharded.explain_cost(
            '{ p.name | p <- Persons, p.region = "r1", p.age > 2 }'
        )
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["accesses"][0]["sharded"] is True
        assert doc["total_rows_scanned"] == report.total_rows_scanned

    def test_unsharded_database_reports_plain_scan(self):
        _, plain = make_pair()
        report = plain.explain_cost('{ p.name | p <- Persons }')
        (access,) = report.accesses
        assert not access.sharded
        assert access.rows_scanned == access.rows


class TestHealthSurface:
    def test_sharding_section_present_and_gauged(self):
        from repro import obs
        from repro.obs.export import prometheus_text

        sharded, _ = make_pair()
        sharded.run('{ p.name | p <- Persons, p.region = "r1" }')
        obs.enable()
        obs.reset()
        try:
            snap = sharded.health()  # obs on: mirrors gauges
            sh = snap["sharding"]
            assert sh["sharded_classes"] == 2
            assert sh["extents"]["Persons"]["k"] == K
            assert "pool" in sh and sh["pool"]["workers"] >= 1
            gauges = prometheus_text()
            assert "shard_extents_total 2" in gauges
            assert "shard_pool_workers" in gauges
        finally:
            obs.disable()
            obs.reset()

    def test_unsharded_database_has_no_sharding_section(self):
        _, plain = make_pair(n=4)
        assert plain.health()["sharding"] is None


class TestShellSurface:
    @pytest.fixture
    def shell(self):
        db = Database.from_odl(ODL)
        for i in range(8):
            db.insert(
                "Person", name=f"p{i}", region=f"r{i % 4}", age=20 + i
            )
        return Shell(db)

    def test_shard_command_declares_and_reports(self, shell):
        out = shell.handle(".shard Person k=4 by=region")
        assert "Persons k=4 by=region" in out
        out = shell.handle(".shards")
        assert "Persons" in out and "k=4" in out

    def test_shard_command_rejects_bad_input(self, shell):
        assert "error" in shell.handle(".shard Ghost").lower()
        assert "error" in shell.handle(".shard Person k=zero").lower()

    def test_shards_before_any_declaration(self, shell):
        assert "no sharded extents" in shell.handle(".shards").lower()

    def test_explain_cost_renders(self, shell):
        shell.handle(".shard Person k=4 by=region")
        out = shell.handle(
            '.explain cost { p.name | p <- Persons, p.region = "r1" }'
        )
        assert "cost report" in out
        assert "1/4 shard(s)" in out and "[pruned]" in out

    def test_explain_cost_unsharded_still_works(self, shell):
        out = shell.handle(
            ".explain cost { p.name | p <- Persons, p.age > 21 }"
        )
        assert "cost report" in out and "unsharded" in out
