"""Unit tests for the Figure 1 type system (repro.typing.checker)."""

import pytest

from repro.errors import IOQLTypeError
from repro.lang.ast import OidRef
from repro.lang.parser import parse_program, parse_query
from repro.model.odl_parser import parse_schema
from repro.model.types import (
    BOOL,
    EMPTY_SET_T,
    INT,
    STRING,
    ClassType,
    RecordType,
    SetType,
)
from repro.typing.checker import check_program, check_query, program_context
from repro.typing.context import TypeContext

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    bool is_adult() { return this.age >= 18; }
}
class Employee extends Person (extent Employees) {
    attribute int salary;
    attribute Person buddy;
    int bonus(int pct) { return this.salary * pct; }
}
"""


@pytest.fixture(scope="module")
def schema():
    return parse_schema(ODL)


@pytest.fixture
def ctx(schema):
    return TypeContext(schema)


def tc(ctx, src, **kw):
    return check_query(ctx, parse_query(src, schema=ctx.schema, **kw))


class TestLiteralsAndIdents:
    def test_int(self, ctx):
        assert tc(ctx, "42") == INT

    def test_bool(self, ctx):
        assert tc(ctx, "true") == BOOL

    def test_string(self, ctx):
        assert tc(ctx, '"x"') == STRING

    def test_unbound_var(self, ctx):
        with pytest.raises(IOQLTypeError, match="unbound"):
            tc(ctx, "x")

    def test_bound_var(self, ctx):
        assert check_query(ctx.extend("x", INT), parse_query("x")) == INT

    def test_oid_typed_via_Q(self, ctx):
        ctx2 = ctx.extend("@P_0", ClassType("Person"))
        assert check_query(ctx2, OidRef("@P_0")) == ClassType("Person")

    def test_extent(self, ctx):
        assert tc(ctx, "Persons") == SetType(ClassType("Person"))


class TestSetsAndRecords:
    def test_empty_set(self, ctx):
        assert tc(ctx, "{}") == EMPTY_SET_T

    def test_homogeneous_set(self, ctx):
        assert tc(ctx, "{1, 2}") == SetType(INT)

    def test_set_lub_of_classes(self, ctx):
        q = "{ x | x <- Persons } union Employees"
        assert tc(ctx, q) == SetType(ClassType("Person"))

    def test_heterogeneous_set_rejected(self, ctx):
        with pytest.raises(IOQLTypeError, match="no common supertype"):
            tc(ctx, "{1, true}")

    def test_record(self, ctx):
        assert tc(ctx, "struct(a: 1, b: true)") == RecordType(
            (("a", INT), ("b", BOOL))
        )

    def test_record_duplicate_labels(self, ctx):
        with pytest.raises(IOQLTypeError, match="duplicate"):
            tc(ctx, "struct(a: 1, a: 2)")

    def test_record_access(self, ctx):
        assert tc(ctx, "struct(a: 1).a") == INT

    def test_record_access_missing(self, ctx):
        with pytest.raises(IOQLTypeError, match="no label"):
            tc(ctx, "struct(a: 1).b")

    def test_union_of_empty_and_ints(self, ctx):
        assert tc(ctx, "{} union {1}") == SetType(INT)

    def test_size(self, ctx):
        assert tc(ctx, "size(Persons)") == INT

    def test_size_of_non_set(self, ctx):
        with pytest.raises(IOQLTypeError, match="must be a collection"):
            tc(ctx, "size(1)")


class TestOperators:
    def test_arith(self, ctx):
        assert tc(ctx, "1 + 2 * 3 - 4") == INT

    def test_arith_type_error(self, ctx):
        with pytest.raises(IOQLTypeError):
            tc(ctx, "1 + true")

    def test_prim_eq_int(self, ctx):
        assert tc(ctx, "1 = 2") == BOOL

    def test_prim_eq_string(self, ctx):
        assert tc(ctx, '"a" = "b"') == BOOL

    def test_prim_eq_mixed_rejected(self, ctx):
        with pytest.raises(IOQLTypeError, match="'='"):
            tc(ctx, '1 = "a"')

    def test_prim_eq_objects_rejected(self, ctx):
        ctx2 = ctx.extend("o", ClassType("Person"))
        with pytest.raises(IOQLTypeError):
            check_query(ctx2, parse_query("o = o"))

    def test_obj_eq(self, ctx):
        ctx2 = ctx.extend("o", ClassType("Person")).extend(
            "e", ClassType("Employee")
        )
        assert check_query(ctx2, parse_query("o == e")) == BOOL

    def test_obj_eq_on_ints_rejected(self, ctx):
        with pytest.raises(IOQLTypeError, match="'=='"):
            tc(ctx, "1 == 2")

    def test_comparison(self, ctx):
        assert tc(ctx, "1 < 2") == BOOL

    def test_setop_on_non_set(self, ctx):
        with pytest.raises(IOQLTypeError):
            tc(ctx, "1 union {2}")


class TestObjects:
    def test_attribute_access(self, ctx):
        ctx2 = ctx.extend("e", ClassType("Employee"))
        assert check_query(ctx2, parse_query("e.salary")) == INT

    def test_inherited_attribute(self, ctx):
        ctx2 = ctx.extend("e", ClassType("Employee"))
        assert check_query(ctx2, parse_query("e.name")) == STRING

    def test_path_expression(self, ctx):
        ctx2 = ctx.extend("e", ClassType("Employee"))
        assert check_query(ctx2, parse_query("e.buddy.name")) == STRING

    def test_unknown_attribute(self, ctx):
        ctx2 = ctx.extend("p", ClassType("Person"))
        with pytest.raises(IOQLTypeError, match="no attribute"):
            check_query(ctx2, parse_query("p.salary"))

    def test_field_on_int_rejected(self, ctx):
        with pytest.raises(IOQLTypeError, match="record or object"):
            tc(ctx, "(1).foo")

    def test_method_call(self, ctx):
        ctx2 = ctx.extend("e", ClassType("Employee"))
        assert check_query(ctx2, parse_query("e.bonus(10)")) == INT

    def test_inherited_method(self, ctx):
        ctx2 = ctx.extend("e", ClassType("Employee"))
        assert check_query(ctx2, parse_query("e.is_adult()")) == BOOL

    def test_method_arity(self, ctx):
        ctx2 = ctx.extend("e", ClassType("Employee"))
        with pytest.raises(IOQLTypeError, match="argument"):
            check_query(ctx2, parse_query("e.bonus()"))

    def test_method_arg_type(self, ctx):
        ctx2 = ctx.extend("e", ClassType("Employee"))
        with pytest.raises(IOQLTypeError):
            check_query(ctx2, parse_query("e.bonus(true)"))

    def test_new(self, ctx):
        q = 'new Person(name: "n", age: 1)'
        assert tc(ctx, q) == ClassType("Person")

    def test_new_subtype_attribute_value(self, ctx):
        q = 'new Employee(name: "n", age: 1, salary: 2, buddy: new Employee(name: "m", age: 2, salary: 3, buddy: new Person(name: "q", age: 3)))'
        assert tc(ctx, q) == ClassType("Employee")

    def test_new_missing_attr(self, ctx):
        with pytest.raises(IOQLTypeError, match="missing"):
            tc(ctx, 'new Person(name: "n")')

    def test_new_extra_attr(self, ctx):
        with pytest.raises(IOQLTypeError, match="unknown"):
            tc(ctx, 'new Person(name: "n", age: 1, zz: 2)')

    def test_new_wrong_type(self, ctx):
        with pytest.raises(IOQLTypeError):
            tc(ctx, "new Person(name: 1, age: 1)")

    def test_new_unknown_class(self, ctx):
        with pytest.raises(IOQLTypeError, match="instantiate"):
            tc(ctx, "new Ghost(a: 1)")

    def test_new_object_rejected(self, ctx):
        with pytest.raises(IOQLTypeError, match="instantiate"):
            tc(ctx, "new Object()")


class TestCasts:
    """Note 2: upcasts only; downcasting is rejected."""

    def test_upcast(self, ctx):
        ctx2 = ctx.extend("e", ClassType("Employee"))
        assert check_query(ctx2, parse_query("(Person) e")) == ClassType("Person")

    def test_identity_cast(self, ctx):
        ctx2 = ctx.extend("p", ClassType("Person"))
        assert check_query(ctx2, parse_query("(Person) p")) == ClassType("Person")

    def test_downcast_rejected(self, ctx):
        ctx2 = ctx.extend("p", ClassType("Person"))
        with pytest.raises(IOQLTypeError, match="Note 2"):
            check_query(ctx2, parse_query("(Employee) p"))

    def test_cast_unknown_class(self, ctx):
        ctx2 = ctx.extend("p", ClassType("Person"))
        with pytest.raises(IOQLTypeError, match="unknown class"):
            check_query(ctx2, parse_query("(Ghost) p"))

    def test_cast_of_primitive(self, ctx):
        with pytest.raises(IOQLTypeError, match="objects"):
            tc(ctx, "(Person) 1")


class TestConditionals:
    def test_same_branch_types(self, ctx):
        assert tc(ctx, "if true then 1 else 2") == INT

    def test_branch_lub(self, ctx):
        ctx2 = ctx.extend("e", ClassType("Employee")).extend(
            "p", ClassType("Person")
        )
        assert check_query(
            ctx2, parse_query("if true then e else p")
        ) == ClassType("Person")

    def test_non_bool_guard(self, ctx):
        with pytest.raises(IOQLTypeError, match="condition"):
            tc(ctx, "if 1 then 2 else 3")

    def test_incompatible_branches(self, ctx):
        with pytest.raises(IOQLTypeError, match="branches"):
            tc(ctx, "if true then 1 else false")


class TestComprehensions:
    def test_simple(self, ctx):
        assert tc(ctx, "{p.name | p <- Persons}") == SetType(STRING)

    def test_generator_binds_in_predicate(self, ctx):
        assert tc(ctx, "{p | p <- Persons, p.age < 10}") == SetType(
            ClassType("Person")
        )

    def test_sequential_generators(self, ctx):
        q = "{struct(a: p.name, b: e.salary) | p <- Persons, e <- Employees}"
        assert tc(ctx, q) == SetType(RecordType((("a", STRING), ("b", INT))))

    def test_predicate_must_be_bool(self, ctx):
        with pytest.raises(IOQLTypeError, match="predicate"):
            tc(ctx, "{p | p <- Persons, 1 + 1}")

    def test_generator_over_non_set(self, ctx):
        with pytest.raises(IOQLTypeError, match="generator"):
            tc(ctx, "{x | x <- 1}")

    def test_empty_qualifier_comp(self, ctx):
        assert tc(ctx, "{1 | }") == SetType(INT)

    def test_generator_over_empty_set(self, ctx):
        # {x | x <- {}} : elements have type ⊥; head is x : ⊥
        t = tc(ctx, "{x | x <- {}}")
        assert t == EMPTY_SET_T


class TestPrograms:
    def test_definition_and_use(self, schema):
        p = parse_program(
            "define inc(x: int) as x + 1; inc(inc(1))", schema=schema
        )
        assert check_program(schema, p) == INT

    def test_definitions_thread_left_to_right(self, schema):
        p = parse_program(
            "define a(x: int) as x; define b(x: int) as a(x) + 1; b(1)",
            schema=schema,
        )
        assert check_program(schema, p) == INT

    def test_forward_reference_rejected(self, schema):
        p = parse_program(
            "define b(x: int) as a(x); define a(x: int) as x; b(1)",
            schema=schema,
        )
        with pytest.raises(IOQLTypeError, match="unknown definition"):
            check_program(schema, p)

    def test_recursive_definition_rejected(self, schema):
        p = parse_program("define f(x: int) as f(x); f(1)", schema=schema)
        with pytest.raises(IOQLTypeError, match="unknown definition"):
            check_program(schema, p)

    def test_duplicate_definition(self, schema):
        p = parse_program(
            "define f(x: int) as x; define f(y: int) as y; f(1)", schema=schema
        )
        with pytest.raises(IOQLTypeError, match="twice"):
            check_program(schema, p)

    def test_duplicate_params(self, schema):
        p = parse_program("define f(x: int, x: int) as x; f(1, 2)", schema=schema)
        with pytest.raises(IOQLTypeError, match="duplicate parameter"):
            check_program(schema, p)

    def test_argument_subtyping_at_call(self, schema):
        p = parse_program(
            "define names(s: set<Person>) as {p.name | p <- s}; names(Employees)",
            schema=schema,
        )
        assert check_program(schema, p) == SetType(STRING)

    def test_bad_argument(self, schema):
        p = parse_program(
            "define f(x: int) as x; f(true)", schema=schema
        )
        with pytest.raises(IOQLTypeError):
            check_program(schema, p)

    def test_param_with_unknown_class(self, schema):
        p = parse_program("define f(x: Ghost) as 1; f(1)", schema=schema)
        with pytest.raises(IOQLTypeError, match="Ghost"):
            check_program(schema, p)

    def test_program_context_exposes_defs(self, schema):
        p = parse_program("define f(x: int) as x; 1", schema=schema)
        ctx = program_context(schema, p)
        assert ctx.def_type("f").result == INT
