"""Unit tests for the pretty-printer (round-trips with the parser)."""

import pytest

from repro.lang.ast import Definition, IntLit, Program, Var
from repro.lang.parser import parse_program, parse_query
from repro.lang.pprint import pretty, pretty_definition, pretty_program
from repro.model.types import INT, SetType

ROUNDTRIP_SOURCES = [
    "42",
    "-7",
    "true",
    '"hi \\"there\\""',
    "x",
    "@Person_0",
    "{1, 2, 3}",
    "{}",
    "1 + 2 * 3",
    "(1 + 2) * 3",
    "1 - 2 - 3",
    "{1} union {2} intersect {3}",
    "x = y",
    "o == p",
    "1 < 2",
    "struct(a: 1, b: true)",
    "struct(a: 1).a",
    "x.foo.bar",
    "f(1, g(2))",
    "size({1})",
    "(Person) x",
    "(A) (B) x",
    'new P(a: 1, b: "s")',
    "if a then b else c",
    "if a then (if b then c else d) else e",
    "{x | }",
    "{x + 1 | x <- s, x < 3, y <- t}",
    "{ {y | y <- x} | x <- s }",
    "x.m(1, 2)",
    "x.m()",
]


class TestRoundTrip:
    @pytest.mark.parametrize("src", ROUNDTRIP_SOURCES)
    def test_parse_pretty_parse(self, src):
        q = parse_query(src)
        assert parse_query(pretty(q)) == q

    def test_idempotent(self):
        for src in ROUNDTRIP_SOURCES:
            q = parse_query(src)
            assert pretty(parse_query(pretty(q))) == pretty(q)


class TestPrecedencePrinting:
    def test_no_spurious_parens(self):
        assert pretty(parse_query("1 + 2 + 3")) == "1 + 2 + 3"
        assert pretty(parse_query("1 + 2 * 3")) == "1 + 2 * 3"

    def test_needed_parens_kept(self):
        assert pretty(parse_query("(1 + 2) * 3")) == "(1 + 2) * 3"
        assert pretty(parse_query("1 - (2 - 3)")) == "1 - (2 - 3)"

    def test_setop_parens(self):
        q = parse_query("a union (b union c)")
        assert pretty(q) == "a union (b union c)"

    def test_negative_literal_in_tight_context(self):
        q = parse_query("(-3).l")
        s = pretty(q)
        assert parse_query(s) == q

    def test_comprehension_format(self):
        assert pretty(parse_query("{x|x<-s,p}")) == "{x | x <- s, p}"

    def test_empty_qualifier_format(self):
        assert pretty(parse_query("{ x | }")) == "{x | }"


class TestProgramPrinting:
    def test_definition(self):
        d = Definition("f", (("x", INT), ("xs", SetType(INT))), Var("x"))
        assert pretty_definition(d) == "define f(x: int, xs: set<int>) as x;"

    def test_program_roundtrip(self):
        src = "define f(x: int) as x + 1; f(2)"
        p = parse_program(src)
        assert parse_program(pretty_program(p)) == p

    def test_multi_definition_program(self):
        src = "define a() as 1; define b() as a(); b()"
        p = parse_program(src)
        out = pretty_program(p)
        assert out.count("define") == 2
        assert parse_program(out) == p
