"""Tests for the interactive shell (repro.shell) — driven headlessly."""

import pytest

from repro.db.database import Database
from repro.shell import Shell

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
"""


@pytest.fixture
def shell():
    db = Database.from_odl(ODL)
    db.insert("Person", name="Ada", age=36)
    return Shell(db)


class TestQueries:
    def test_query_prints_value_type_effect(self, shell):
        out = shell.handle("{ p.name | p <- Persons }")
        assert '{"Ada"}' in out
        assert "set<string>" in out
        assert "R(Person)" in out

    def test_pure_query_omits_effect(self, shell):
        out = shell.handle("1 + 1")
        assert out.startswith("2 : int")
        assert "!" not in out

    def test_query_commits(self, shell):
        shell.handle('new Person(name: "Bob", age: 1)')
        assert "Bob" in shell.handle("{ p.name | p <- Persons }")

    def test_error_reported_not_raised(self, shell):
        out = shell.handle("1 + true")
        assert out.startswith("error:")

    def test_blank_and_comment_lines(self, shell):
        assert shell.handle("") == ""
        assert shell.handle("// nothing") == ""


class TestDefinitions:
    def test_define(self, shell):
        out = shell.handle("define inc(x: int) as x + 1")
        assert out.startswith("defined")
        assert shell.handle("inc(41)").startswith("42")

    def test_duplicate_define_is_an_error(self, shell):
        shell.handle("define f(x: int) as x;")
        assert shell.handle("define f(x: int) as x;").startswith("error")


class TestCommands:
    def test_help(self, shell):
        out = shell.handle(".help")
        assert ".explore" in out

    def test_type(self, shell):
        assert shell.handle(".type { p.age | p <- Persons }") == "set<int>"

    def test_effect(self, shell):
        assert "R(Person)" in shell.handle(".effect Persons")

    def test_det_positive(self, shell):
        assert "deterministic" in shell.handle(".det { p.age | p <- Persons }")

    def test_det_negative(self, shell):
        src = (
            ".det { (if size(Persons) = 0 then 1 else "
            "struct(a: 1, b: new Person(name: p.name, age: 0)).a) "
            "| p <- Persons }"
        )
        assert "⊢′ rejects" in shell.handle(src)

    def test_explore(self, shell):
        out = shell.handle(".explore { p.age | p <- Persons }")
        assert "schedules: 1" in out
        assert "deterministic up to ∼: True" in out

    def test_optimize(self, shell):
        out = shell.handle(".optimize 1 + 1")
        assert out.splitlines()[0] == "2"
        assert "arith-fold" in out

    def test_optimize_no_change(self, shell):
        assert "no rewrites" in shell.handle(".optimize { p.age | p <- Persons }")

    def test_extents(self, shell):
        assert "Persons: 1" in shell.handle(".extents")

    def test_infer(self, shell):
        out = shell.handle(".infer { e.age | e <- Employees }")
        assert "Employees" in out

    def test_snapshot_restore(self, shell):
        shell.handle(".snapshot")
        shell.handle('new Person(name: "tmp", age: 0)')
        assert "Persons: 2" in shell.handle(".extents")
        assert shell.handle(".restore") == "restored"
        assert "Persons: 1" in shell.handle(".extents")

    def test_restore_without_snapshot(self, shell):
        assert shell.handle(".restore").startswith("error")

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.handle(".bogus")

    def test_schema_load(self, shell, tmp_path):
        f = tmp_path / "s.odl"
        f.write_text("class Dog extends Object (extent Dogs) { attribute string name; }")
        out = shell.handle(f".schema {f}")
        assert "Dog" in out
        assert "Dogs: 0" in shell.handle(".extents")

    def test_quit(self, shell):
        with pytest.raises(SystemExit):
            shell.handle(".quit")


class TestExplain:
    def test_explain_reports_cost_and_rewrites(self, shell):
        out = shell.handle(".explain { p.name | p <- Persons, 1 = 1 }")
        assert "estimated cost" in out
        assert "true-pred" in out
        assert "deterministic  : yes" in out

    def test_explain_flags_nondeterminism(self, shell):
        out = shell.handle(
            ".explain { (if size(Persons) = 0 then 1 else "
            "struct(a: 1, b: new Person(name: p.name, age: 0)).a) "
            "| p <- Persons }"
        )
        assert "⊢′ rejects" in out

    def test_explain_no_rewrites(self, shell):
        out = shell.handle(".explain { p.age | p <- Persons }")
        assert "no rewrites apply" in out


class TestObservability:
    @pytest.fixture(autouse=True)
    def _clean_obs(self):
        from repro import obs

        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def test_stats_off_by_default(self, shell):
        out = shell.handle(".stats")
        assert "instrumentation: off" in out

    def test_stats_on_collects_and_reports(self, shell):
        from repro import obs

        shell.handle(".stats on")
        assert obs.enabled()
        shell.handle("{ p.name | p <- Persons }")
        out = shell.handle(".stats")
        assert "instrumentation: on" in out
        assert "rule_fired_total" in out
        assert "query" in out

    def test_stats_off_and_reset(self, shell):
        from repro import obs

        shell.handle(".stats on")
        shell.handle("size(Persons)")
        shell.handle(".stats off")
        assert not obs.enabled()
        shell.handle(".stats reset")
        assert "(nothing recorded)" in shell.handle(".stats")

    def test_stats_export_writes_jsonl(self, shell, tmp_path):
        import json

        shell.handle(".stats on")
        shell.handle("size(Persons)")
        path = tmp_path / "out.jsonl"
        out = shell.handle(f".stats export {path}")
        assert "wrote" in out
        lines = path.read_text().splitlines()
        assert lines and all(json.loads(l)["kind"] for l in lines)

    def test_stats_export_to_unwritable_path_reports_not_raises(self, shell):
        shell.handle(".stats on")
        out = shell.handle(".stats export /nonexistent/dir/out.jsonl")
        assert out.startswith("error: cannot write")

    def test_no_obs_locks_stats_on(self):
        db = Database.from_odl(ODL)
        locked = Shell(db, obs_locked=True)
        out = locked.handle(".stats on")
        assert "locked off" in out

    def test_profile_reports_phases_and_rules(self, shell):
        from repro import obs

        out = shell.handle(".profile { p.age | p <- Persons }")
        assert "phases (ms):" in out
        assert "eval" in out
        assert "rules fired:" in out
        assert "Extent" in out
        # .profile must not leave instrumentation on
        assert not obs.enabled()

    def test_profile_locked_by_no_obs(self):
        locked = Shell(Database.from_odl(ODL), obs_locked=True)
        assert "locked off" in locked.handle(".profile 1 + 1")

    def test_main_accepts_no_obs_flag(self, monkeypatch, capsys):
        import builtins

        from repro.shell import main

        inputs = iter([".stats on", ".quit"])
        monkeypatch.setattr(
            builtins, "input", lambda prompt="": next(inputs)
        )
        assert main(["--no-obs"]) == 0
        assert "locked off" in capsys.readouterr().out
