"""Tests for the interactive shell (repro.shell) — driven headlessly."""

import pytest

from repro.db.database import Database
from repro.shell import Shell

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
"""


@pytest.fixture
def shell():
    db = Database.from_odl(ODL)
    db.insert("Person", name="Ada", age=36)
    return Shell(db)


class TestQueries:
    def test_query_prints_value_type_effect(self, shell):
        out = shell.handle("{ p.name | p <- Persons }")
        assert '{"Ada"}' in out
        assert "set<string>" in out
        assert "R(Person)" in out

    def test_pure_query_omits_effect(self, shell):
        out = shell.handle("1 + 1")
        assert out.startswith("2 : int")
        assert "!" not in out

    def test_query_commits(self, shell):
        shell.handle('new Person(name: "Bob", age: 1)')
        assert "Bob" in shell.handle("{ p.name | p <- Persons }")

    def test_error_reported_not_raised(self, shell):
        out = shell.handle("1 + true")
        assert out.startswith("error:")

    def test_blank_and_comment_lines(self, shell):
        assert shell.handle("") == ""
        assert shell.handle("// nothing") == ""


class TestDefinitions:
    def test_define(self, shell):
        out = shell.handle("define inc(x: int) as x + 1")
        assert out.startswith("defined")
        assert shell.handle("inc(41)").startswith("42")

    def test_duplicate_define_is_an_error(self, shell):
        shell.handle("define f(x: int) as x;")
        assert shell.handle("define f(x: int) as x;").startswith("error")


class TestCommands:
    def test_help(self, shell):
        out = shell.handle(".help")
        assert ".explore" in out

    def test_type(self, shell):
        assert shell.handle(".type { p.age | p <- Persons }") == "set<int>"

    def test_effect(self, shell):
        assert "R(Person)" in shell.handle(".effect Persons")

    def test_det_positive(self, shell):
        assert "deterministic" in shell.handle(".det { p.age | p <- Persons }")

    def test_det_negative(self, shell):
        src = (
            ".det { (if size(Persons) = 0 then 1 else "
            "struct(a: 1, b: new Person(name: p.name, age: 0)).a) "
            "| p <- Persons }"
        )
        assert "⊢′ rejects" in shell.handle(src)

    def test_explore(self, shell):
        out = shell.handle(".explore { p.age | p <- Persons }")
        assert "schedules: 1" in out
        assert "deterministic up to ∼: True" in out

    def test_optimize(self, shell):
        out = shell.handle(".optimize 1 + 1")
        assert out.splitlines()[0] == "2"
        assert "arith-fold" in out

    def test_optimize_no_change(self, shell):
        assert "no rewrites" in shell.handle(".optimize { p.age | p <- Persons }")

    def test_extents(self, shell):
        assert "Persons: 1" in shell.handle(".extents")

    def test_infer(self, shell):
        out = shell.handle(".infer { e.age | e <- Employees }")
        assert "Employees" in out

    def test_snapshot_restore(self, shell):
        shell.handle(".snapshot")
        shell.handle('new Person(name: "tmp", age: 0)')
        assert "Persons: 2" in shell.handle(".extents")
        assert shell.handle(".restore") == "restored"
        assert "Persons: 1" in shell.handle(".extents")

    def test_restore_without_snapshot(self, shell):
        assert shell.handle(".restore").startswith("error")

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.handle(".bogus")

    def test_schema_load(self, shell, tmp_path):
        f = tmp_path / "s.odl"
        f.write_text("class Dog extends Object (extent Dogs) { attribute string name; }")
        out = shell.handle(f".schema {f}")
        assert "Dog" in out
        assert "Dogs: 0" in shell.handle(".extents")

    def test_quit(self, shell):
        with pytest.raises(SystemExit):
            shell.handle(".quit")


class TestExplain:
    def test_explain_reports_cost_and_rewrites(self, shell):
        out = shell.handle(".explain { p.name | p <- Persons, 1 = 1 }")
        assert "estimated cost" in out
        assert "true-pred" in out
        assert "deterministic  : yes" in out

    def test_explain_flags_nondeterminism(self, shell):
        out = shell.handle(
            ".explain { (if size(Persons) = 0 then 1 else "
            "struct(a: 1, b: new Person(name: p.name, age: 0)).a) "
            "| p <- Persons }"
        )
        assert "⊢′ rejects" in out

    def test_explain_no_rewrites(self, shell):
        out = shell.handle(".explain { p.age | p <- Persons }")
        assert "no rewrites apply" in out
