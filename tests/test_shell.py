"""Tests for the interactive shell (repro.shell) — driven headlessly."""

import pytest

from repro.db.database import Database
from repro.shell import Shell

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
"""


@pytest.fixture
def shell():
    db = Database.from_odl(ODL)
    db.insert("Person", name="Ada", age=36)
    return Shell(db)


class TestQueries:
    def test_query_prints_value_type_effect(self, shell):
        out = shell.handle("{ p.name | p <- Persons }")
        assert '{"Ada"}' in out
        assert "set<string>" in out
        assert "R(Person)" in out

    def test_pure_query_omits_effect(self, shell):
        out = shell.handle("1 + 1")
        assert out.startswith("2 : int")
        assert "!" not in out

    def test_query_commits(self, shell):
        shell.handle('new Person(name: "Bob", age: 1)')
        assert "Bob" in shell.handle("{ p.name | p <- Persons }")

    def test_error_reported_not_raised(self, shell):
        out = shell.handle("1 + true")
        assert out.startswith("error:")

    def test_blank_and_comment_lines(self, shell):
        assert shell.handle("") == ""
        assert shell.handle("// nothing") == ""


class TestDefinitions:
    def test_define(self, shell):
        out = shell.handle("define inc(x: int) as x + 1")
        assert out.startswith("defined")
        assert shell.handle("inc(41)").startswith("42")

    def test_duplicate_define_is_an_error(self, shell):
        shell.handle("define f(x: int) as x;")
        assert shell.handle("define f(x: int) as x;").startswith("error")


class TestCommands:
    def test_help(self, shell):
        out = shell.handle(".help")
        assert ".explore" in out

    def test_type(self, shell):
        assert shell.handle(".type { p.age | p <- Persons }") == "set<int>"

    def test_effect(self, shell):
        assert "R(Person)" in shell.handle(".effect Persons")

    def test_det_positive(self, shell):
        assert "deterministic" in shell.handle(".det { p.age | p <- Persons }")

    def test_det_negative(self, shell):
        src = (
            ".det { (if size(Persons) = 0 then 1 else "
            "struct(a: 1, b: new Person(name: p.name, age: 0)).a) "
            "| p <- Persons }"
        )
        assert "⊢′ rejects" in shell.handle(src)

    def test_explore(self, shell):
        out = shell.handle(".explore { p.age | p <- Persons }")
        assert "schedules: 1" in out
        assert "deterministic up to ∼: True" in out

    def test_optimize(self, shell):
        out = shell.handle(".optimize 1 + 1")
        assert out.splitlines()[0] == "2"
        assert "arith-fold" in out

    def test_optimize_no_change(self, shell):
        assert "no rewrites" in shell.handle(".optimize { p.age | p <- Persons }")

    def test_extents(self, shell):
        assert "Persons: 1" in shell.handle(".extents")

    def test_infer(self, shell):
        out = shell.handle(".infer { e.age | e <- Employees }")
        assert "Employees" in out

    def test_snapshot_restore(self, shell):
        shell.handle(".snapshot")
        shell.handle('new Person(name: "tmp", age: 0)')
        assert "Persons: 2" in shell.handle(".extents")
        assert shell.handle(".restore") == "restored"
        assert "Persons: 1" in shell.handle(".extents")

    def test_restore_without_snapshot(self, shell):
        assert shell.handle(".restore").startswith("error")

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.handle(".bogus")

    def test_schema_load(self, shell, tmp_path):
        f = tmp_path / "s.odl"
        f.write_text("class Dog extends Object (extent Dogs) { attribute string name; }")
        out = shell.handle(f".schema {f}")
        assert "Dog" in out
        assert "Dogs: 0" in shell.handle(".extents")

    def test_quit(self, shell):
        with pytest.raises(SystemExit):
            shell.handle(".quit")


class TestExplain:
    def test_explain_reports_cost_and_rewrites(self, shell):
        out = shell.handle(".explain { p.name | p <- Persons, 1 = 1 }")
        assert "estimated cost" in out
        assert "true-pred" in out
        assert "deterministic  : yes" in out

    def test_explain_flags_nondeterminism(self, shell):
        out = shell.handle(
            ".explain { (if size(Persons) = 0 then 1 else "
            "struct(a: 1, b: new Person(name: p.name, age: 0)).a) "
            "| p <- Persons }"
        )
        assert "⊢′ rejects" in out

    def test_explain_no_rewrites(self, shell):
        out = shell.handle(".explain { p.age | p <- Persons }")
        assert "no rewrites apply" in out


class TestObservability:
    @pytest.fixture(autouse=True)
    def _clean_obs(self):
        from repro import obs

        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def test_stats_off_by_default(self, shell):
        out = shell.handle(".stats")
        assert "instrumentation: off" in out

    def test_stats_on_collects_and_reports(self, shell):
        from repro import obs

        shell.handle(".stats on")
        assert obs.enabled()
        shell.handle("{ p.name | p <- Persons }")
        out = shell.handle(".stats")
        assert "instrumentation: on" in out
        # a read-only query routes to the compiled engine, whose
        # counters replace the machine's rule_fired_total
        assert "exec_compiled_total" in out
        assert "query" in out

    def test_stats_off_and_reset(self, shell):
        from repro import obs

        shell.handle(".stats on")
        shell.handle("size(Persons)")
        shell.handle(".stats off")
        assert not obs.enabled()
        shell.handle(".stats reset")
        assert "(nothing recorded)" in shell.handle(".stats")

    def test_stats_export_writes_jsonl(self, shell, tmp_path):
        import json

        shell.handle(".stats on")
        shell.handle("size(Persons)")
        path = tmp_path / "out.jsonl"
        out = shell.handle(f".stats export {path}")
        assert "wrote" in out
        lines = path.read_text().splitlines()
        assert lines and all(json.loads(l)["kind"] for l in lines)

    def test_stats_export_to_unwritable_path_reports_not_raises(self, shell):
        shell.handle(".stats on")
        out = shell.handle(".stats export /nonexistent/dir/out.jsonl")
        assert out.startswith("error: cannot write")

    def test_no_obs_locks_stats_on(self):
        db = Database.from_odl(ODL)
        locked = Shell(db, obs_locked=True)
        out = locked.handle(".stats on")
        assert "locked off" in out

    def test_profile_reports_phases_and_rules(self, shell):
        from repro import obs

        out = shell.handle(".profile { p.age | p <- Persons }")
        assert "phases (ms):" in out
        assert "eval" in out
        assert "rules fired:" in out
        assert "Extent" in out
        # .profile must not leave instrumentation on
        assert not obs.enabled()

    def test_profile_locked_by_no_obs(self):
        locked = Shell(Database.from_odl(ODL), obs_locked=True)
        assert "locked off" in locked.handle(".profile 1 + 1")

    def test_main_accepts_no_obs_flag(self, monkeypatch, capsys):
        import builtins

        from repro.shell import main

        inputs = iter([".stats on", ".quit"])
        monkeypatch.setattr(
            builtins, "input", lambda prompt="": next(inputs)
        )
        assert main(["--no-obs"]) == 0
        assert "locked off" in capsys.readouterr().out


class TestBudgetCommand:
    def test_bare_shows_unset(self, shell):
        assert shell.handle(".budget") == "no budget set (queries run unbounded)"

    def test_set_and_show(self, shell):
        out = shell.handle(".budget steps=5000 objects=10")
        assert "steps 0/5000" in out and "objects 0/10" in out
        assert "steps 0/5000" in shell.handle(".budget")

    def test_budget_bounds_queries(self, shell):
        shell.handle(".budget steps=2")
        out = shell.handle("{ p.name | p <- Persons }")
        assert out.startswith("error:")
        assert "step budget" in out

    def test_each_query_gets_a_fresh_budget(self, shell):
        shell.handle(".budget steps=5000")
        for _ in range(3):  # consumption must not accumulate across lines
            out = shell.handle("{ p.name | p <- Persons }")
            assert '{"Ada"}' in out

    def test_off_clears(self, shell):
        shell.handle(".budget steps=2")
        shell.handle(".budget off")
        assert '{"Ada"}' in shell.handle("{ p.name | p <- Persons }")

    def test_unknown_setting_rejected(self, shell):
        assert "unknown budget setting" in shell.handle(".budget fuel=3")

    def test_bad_value_rejected(self, shell):
        assert "bad value" in shell.handle(".budget steps=lots")

    def test_explore_respects_the_budget(self, shell):
        shell.handle(".budget steps=3")
        out = shell.handle(".explore { p.name | p <- Persons }")
        assert "results are a sample, not a proof" in out


class TestFaultsCommand:
    @pytest.fixture(autouse=True)
    def clean_plan(self):
        from repro.resilience import faults

        yield
        faults.uninstall()

    def test_bare_shows_off(self, shell):
        assert shell.handle(".faults") == "fault injection off"

    def test_inject_requires_site(self, shell):
        assert "needs site=" in shell.handle(".faults inject at=1")

    def test_unknown_site_reported_not_raised(self, shell):
        out = shell.handle(".faults inject site=warp.core")
        assert out.startswith("error:") and "unknown fault site" in out

    def test_inject_and_recover(self, shell):
        out = shell.handle(".faults inject site=commit at=1")
        assert out == "injecting: commit [at=1] -> transient"
        failed = shell.handle('new Person(name: "Bob", age: 1)')
        assert failed.startswith("error:") and "injected fault" in failed
        # the at=1 rule is spent; the retyped statement lands
        assert "Bob" not in shell.handle("{ p.name | p <- Persons }")
        shell.handle('new Person(name: "Bob", age: 1)')
        assert "Bob" in shell.handle("{ p.name | p <- Persons }")

    def test_bare_shows_plan_and_counters(self, shell):
        shell.handle(".faults inject site=commit at=1")
        shell.handle('new Person(name: "Bob", age: 1)')
        out = shell.handle(".faults")
        assert "commit [at=1] -> transient" in out
        assert "commit: 1 hit(s), 1 fired" in out

    def test_off_uninstalls(self, shell):
        from repro.resilience import faults

        shell.handle(".faults inject site=commit every=1")
        shell.handle(".faults off")
        assert faults.active() is None
        assert "Bob" in shell.handle('new Person(name: "Bob", age: 1)') or True
        assert "error" not in shell.handle("{ p.name | p <- Persons }")

    def test_unknown_subcommand(self, shell):
        assert "unknown .faults subcommand" in shell.handle(".faults flush")

    def test_bad_value_rejected(self, shell):
        assert "bad value" in shell.handle(".faults inject site=commit at=x")


class TestTransactionCommand:
    def test_begin_commit(self, shell):
        assert "transaction open" in shell.handle(".transaction begin")
        shell.handle('new Person(name: "Bob", age: 1)')
        assert shell.handle(".transaction commit") == "transaction committed"
        assert "Bob" in shell.handle("{ p.name | p <- Persons }")

    def test_begin_rollback(self, shell):
        shell.handle(".transaction begin")
        shell.handle('new Person(name: "Bob", age: 1)')
        assert shell.handle(".transaction rollback") == "transaction rolled back"
        assert "Bob" not in shell.handle("{ p.name | p <- Persons }")

    def test_begin_twice_is_an_error(self, shell):
        shell.handle(".transaction begin")
        assert "already open" in shell.handle(".transaction begin")

    def test_commit_without_open(self, shell):
        assert "no open transaction" in shell.handle(".transaction commit")
        assert "no open transaction" in shell.handle(".transaction rollback")

    def test_bare_shows_status_and_effect(self, shell):
        assert shell.handle(".transaction") == "no open transaction"
        shell.handle(".transaction begin")
        assert "accumulated effect ∅" in shell.handle(".transaction")
        shell.handle('new Person(name: "Bob", age: 1)')
        assert "A(Person)" in shell.handle(".transaction")

    def test_unknown_subcommand(self, shell):
        assert "unknown .transaction subcommand" in shell.handle(
            ".transaction abort"
        )

    def test_failing_statement_rolls_the_whole_transaction_back(self, shell):
        """The hardening guarantee: after a failing query inside a
        transaction the Database is exactly as it was at begin."""
        before_ee, before_oe = shell.db.ee, shell.db.oe
        shell.handle(".transaction begin")
        shell.handle('new Person(name: "Bob", age: 1)')
        out = shell.handle("1 + true")  # ill-typed statement fails
        assert out.startswith("error:")
        assert "transaction rolled back: the database is exactly as it was" in out
        assert shell.db.ee == before_ee and shell.db.oe == before_oe
        # and the shell is usable again, outside any transaction
        assert shell.handle(".transaction") == "no open transaction"

    def test_injected_commit_fault_rolls_back(self, shell):
        from repro.resilience import faults

        try:
            before_ee, before_oe = shell.db.ee, shell.db.oe
            shell.handle(".transaction begin")
            shell.handle(".faults inject site=commit at=1")
            out = shell.handle('new Person(name: "Bob", age: 1)')
            assert "transaction rolled back" in out
            assert shell.db.ee == before_ee and shell.db.oe == before_oe
        finally:
            faults.uninstall()

    def test_dot_commands_leave_the_transaction_open(self, shell):
        shell.handle(".transaction begin")
        assert shell.handle(".type 1 + true").startswith("error:")
        assert "transaction open" in shell.handle(".transaction")

    def test_schema_swap_refused_inside_transaction(self, shell):
        shell.handle(".transaction begin")
        out = shell.handle(".schema somewhere.odl")
        assert "commit or roll back" in out

    def test_definitions_rolled_back_too(self, shell):
        shell.handle(".transaction begin")
        shell.handle("define inc(x: int) as x + 1")
        shell.handle(".transaction rollback")
        assert shell.handle("inc(41)").startswith("error:")


class TestWalCommand:
    def test_status_when_off(self, shell):
        assert shell.handle(".wal").startswith("durability off")

    def test_open_attaches_and_status_reports(self, shell, tmp_path):
        out = shell.handle(f".wal open {tmp_path / 'state'}")
        assert "journalling into" in out
        status = shell.handle(".wal")
        assert "last lsn" in status and "byte(s)" in status

    def test_open_needs_a_directory(self, shell):
        assert shell.handle(".wal open").startswith("error:")

    def test_open_twice_is_refused(self, shell, tmp_path):
        shell.handle(f".wal open {tmp_path / 'a'}")
        out = shell.handle(f".wal open {tmp_path / 'b'}")
        assert out.startswith("error: already journalling")

    def test_open_refused_inside_transaction(self, shell, tmp_path):
        shell.handle(".transaction begin")
        out = shell.handle(f".wal open {tmp_path / 'state'}")
        assert "commit or roll back" in out

    def test_checkpoint_requires_wal(self, shell):
        assert shell.handle(".checkpoint").startswith("error:")

    def test_checkpoint_reports_folded_lsn(self, shell, tmp_path):
        shell.handle(f".wal open {tmp_path / 'state'}")
        shell.handle('new Person(name: "Bob", age: 1)')
        out = shell.handle(".checkpoint")
        assert "folded through lsn 1" in out

    def test_off_detaches(self, shell, tmp_path):
        shell.handle(f".wal open {tmp_path / 'state'}")
        out = shell.handle(".wal off")
        assert "detached" in out
        assert shell.db.wal is None

    def test_off_when_off_is_an_error(self, shell):
        assert shell.handle(".wal off").startswith("error:")

    def test_reopen_recovers_committed_state(self, shell, tmp_path):
        d = str(tmp_path / "state")
        shell.handle(f".wal open {d}")
        shell.handle('new Person(name: "Bob", age: 1)')
        shell.handle(".wal off")
        out = shell.handle(f".wal open {d}")
        assert out.startswith("recovered from checkpoint")
        assert "Bob" in shell.handle("{ p.name | p <- Persons }")
