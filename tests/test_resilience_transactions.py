"""Effect-guided transactions: statement scopes and multi-statement
all-or-nothing sessions.

The scope of every snapshot/rollback is the *effect* of the guarded
work (Figure 3), which Theorem 5 proves is an upper bound on what the
work can touch: state outside R ∪ A ∪ U is never copied and never
restored.
"""

import pytest

from repro.db.database import Database
from repro.errors import ObjectQuotaExceeded, ReproError, TransientFault
from repro.methods.ast import AccessMode
from repro.resilience.budget import Budget
from repro.resilience.faults import FaultPlan, FaultRule, inject
from repro.resilience.transactions import TransactionScope, scope_extents

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
}
class Pet extends Object (extent Pets) {
    attribute string nick;
}
"""

ACCOUNT_ODL = """
class Account extends Object (extent Accounts) {
    attribute int balance;
    int deposit(int amount) effect U(Account) {
        this.balance := this.balance + amount;
        return this.balance;
    }
}
"""


@pytest.fixture
def db() -> Database:
    d = Database.from_odl(ODL)
    d.insert("Person", name="Ada")
    d.insert("Pet", nick="Rex")
    return d


@pytest.fixture
def bank() -> Database:
    d = Database.from_odl(ACCOUNT_ODL, method_mode=AccessMode.EFFECTFUL)
    d.insert("Account", balance=100)
    return d


def commit_fault() -> FaultPlan:
    return FaultPlan((FaultRule(site="commit"),))


class TestScopeExtents:
    def test_read_effect_names_the_extent(self, db):
        eff = db.effect_of("{ p.name | p <- Persons }")
        assert scope_extents(db, eff) == ("Persons",)

    def test_add_effect_names_the_extent(self, db):
        eff = db.effect_of('new Person(name: "x")')
        assert scope_extents(db, eff) == ("Persons",)

    def test_untouched_extents_are_out_of_scope(self, db):
        eff = db.effect_of("{ p.name | p <- Persons }")
        assert "Pets" not in scope_extents(db, eff)

    def test_pure_query_has_empty_scope(self, db):
        eff = db.effect_of("1 + 2")
        assert scope_extents(db, eff) == ()

    def test_update_effect_names_the_extent(self, bank):
        (a,) = db_oids(bank, "Accounts")
        from repro.lang.ast import IntLit, MethodCall, OidRef

        eff = bank.effect_of(MethodCall(OidRef(a), "deposit", (IntLit(1),)))
        assert scope_extents(bank, eff) == ("Accounts",)


def db_oids(d: Database, extent: str) -> list[str]:
    return sorted(d.extent(extent))


class TestAtomicRun:
    def test_success_commits_normally(self, db):
        db.run('new Person(name: "Grace")', atomic=True)
        assert len(db.extent("Persons")) == 2

    def test_failure_rolls_back_created_objects(self, db):
        before_ee, before_oe = db.ee, db.oe
        q = '{ struct(x: new Person(name: "c")).x | p <- Persons }'
        # quota of 0 fails on the very first (New); atomic restores all
        with pytest.raises(ObjectQuotaExceeded):
            db.run(q, atomic=True, budget=Budget(max_new_objects=0))
        assert db.ee == before_ee and db.oe == before_oe

    def test_commit_fault_rolls_back(self, db):
        before_ee, before_oe = db.ee, db.oe
        with inject(commit_fault()):
            with pytest.raises(TransientFault):
                db.run('new Person(name: "Grace")', atomic=True)
        assert db.ee == before_ee and db.oe == before_oe

    def test_non_atomic_commit_fault_also_safe(self, db):
        # engines never mutate the database before commit, so even the
        # non-atomic path cannot leave a half-applied statement
        before_ee, before_oe = db.ee, db.oe
        with inject(commit_fault()):
            with pytest.raises(TransientFault):
                db.run('new Person(name: "Grace")')
        assert db.ee == before_ee and db.oe == before_oe

    def test_rollback_is_effect_scoped(self, db):
        """Only the extents in the static effect are snapshotted."""
        eff = db.effect_of('new Person(name: "x")')
        scope = TransactionScope.capture(db, eff)
        assert scope.extents == ("Persons",)
        assert all(e != "Pets" for e, _ in scope.prior_members)

    def test_oid_supply_is_not_rewound(self, db):
        def suffix(oid: str) -> int:
            return int(oid.rsplit("_", 1)[1])

        before = db.extent("Persons")
        with inject(commit_fault()):
            with pytest.raises(TransientFault):
                db.run('new Person(name: "Grace")', atomic=True)
        db.run('new Person(name: "Grace")', atomic=True)
        (fresh,) = db.extent("Persons") - before
        # the failed attempt's oid is skipped, never reused: the counter
        # moved past it, leaving a gap the bijection ∼ absorbs
        assert suffix(fresh) > max(suffix(o) for o in before) + 1

    def test_scope_rollback_restores_updated_records(self, bank):
        (a,) = db_oids(bank, "Accounts")
        eff = bank.effect_of("Accounts")  # R(Account): snapshot records
        scope = TransactionScope.capture(bank, eff)
        from repro.lang.ast import IntLit, MethodCall, OidRef

        bank.run(MethodCall(OidRef(a), "deposit", (IntLit(25),)))
        assert bank.attr(a, "balance").value == 125
        scope.rollback(bank)
        assert bank.attr(a, "balance").value == 100


class TestTransactionContextManager:
    def test_commit_on_clean_exit(self, db):
        with db.transaction():
            db.run('new Person(name: "Grace")')
            db.run('new Person(name: "Tim")')
        assert len(db.extent("Persons")) == 3

    def test_exception_rolls_everything_back(self, db):
        before_ee, before_oe = db.ee, db.oe
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.run('new Person(name: "Grace")')
                assert len(db.extent("Persons")) == 2  # visible inside
                raise RuntimeError("boom")
        assert db.ee == before_ee and db.oe == before_oe

    def test_exception_is_not_swallowed(self, db):
        with pytest.raises(ZeroDivisionError):
            with db.transaction():
                1 / 0

    def test_failing_statement_rolls_back_earlier_ones(self, db):
        before_oe = db.oe
        with pytest.raises(ObjectQuotaExceeded):
            with db.transaction():
                db.run('new Person(name: "Grace")')
                db.run(
                    'new Person(name: "Tim")',
                    budget=Budget(max_new_objects=0),
                )
        assert db.oe == before_oe
        assert len(db.extent("Persons")) == 1

    def test_direct_insert_is_tracked(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("Person", name="Grace")
                raise RuntimeError
        assert len(db.extent("Persons")) == 1

    def test_explicit_rollback(self, db):
        with db.transaction() as txn:
            db.run('new Person(name: "Grace")')
            txn.rollback()
        assert len(db.extent("Persons")) == 1

    def test_explicit_commit(self, db):
        with db.transaction() as txn:
            db.run('new Person(name: "Grace")')
            txn.commit()
        assert len(db.extent("Persons")) == 2

    def test_transactions_do_not_nest(self, db):
        with db.transaction():
            with pytest.raises(ReproError, match="nest"):
                with db.transaction():
                    pass

    def test_sequential_transactions_allowed(self, db):
        with db.transaction():
            db.run('new Person(name: "Grace")')
        with db.transaction():
            db.run('new Person(name: "Tim")')
        assert len(db.extent("Persons")) == 3

    def test_resolved_transaction_cannot_be_reused(self, db):
        with db.transaction() as txn:
            pass
        with pytest.raises(ReproError, match="not active"):
            txn.commit()
        with pytest.raises(ReproError, match="not active"):
            txn.rollback()

    def test_effect_accumulates_across_statements(self, db):
        with db.transaction() as txn:
            db.run("{ p.name | p <- Persons }")
            db.run('new Person(name: "Grace")')
            assert "Person" in txn.effect.reads()
            assert "Person" in txn.effect.adds()

    def test_rollback_scope_excludes_untouched_extents(self, db):
        """Pets was never touched, so rollback must not even look at it."""
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.run('new Person(name: "Grace")')
                raise RuntimeError
        # Pets survives untouched (it was outside every statement's effect)
        assert len(db.extent("Pets")) == 1

    def test_definitions_added_inside_are_removed(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.define("define adults() as { p | p <- Persons };")
                assert "adults" in db.definitions
                raise RuntimeError
        assert "adults" not in db.definitions
        # and the machine no longer resolves it either
        assert "adults" not in db.machine.defs

    def test_rollback_restores_updates(self, bank):
        (a,) = db_oids(bank, "Accounts")
        from repro.lang.ast import IntLit, MethodCall, OidRef

        with pytest.raises(RuntimeError):
            with bank.transaction():
                bank.run(MethodCall(OidRef(a), "deposit", (IntLit(25),)))
                assert bank.attr(a, "balance").value == 125
                raise RuntimeError
        assert bank.attr(a, "balance").value == 100

    def test_api_transaction_helper(self, db):
        import repro

        with repro.transaction(db):
            repro.run(db, 'new Person(name: "Grace")')
        assert len(db.extent("Persons")) == 2
