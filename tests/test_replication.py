"""WAL-shipped read replicas: shipping, freshness routing, robustness.

The replication layer's contract has three parts, tested here in
increasing order of adversity:

* **mechanism** — a replica bootstraps from the checkpoint + intact log
  and replays shipped records through the same ``apply_record`` path
  crash recovery uses, keeping per-extent LSN watermarks derived from
  each record's static write effect;
* **routing** — ``Database.run`` serves an effect-proven read-only
  query from a covering replica (counted) and degrades to the primary
  when no replica can be proven fresh (counted, never wrong);
* **robustness** — ship gaps (checkpoint folds, torn/corrupt frames,
  injected ``replica.ship``/``replica.apply`` faults) drive seeded
  backoff-and-resync; a replica whose state digest disagrees with the
  primary is quarantined with a named flight-recorder black box; a
  promoted replica becomes a fenced-off primary's successor.

The zero-staleness property itself (every routed read equals the
primary's answer, across seeded mixed batches) lives in
``tests/test_replication_differential.py``.
"""

import os
import types

import pytest

from repro.db import recovery, wal
from repro.db.database import Database
from repro.errors import ReproError
from repro.lang.ast import IntLit, MethodCall, OidRef
from repro.methods.ast import AccessMode
from repro.obs import flight as _flight
from repro.replication import (
    CATCHING_UP,
    LAGGING,
    QUARANTINED,
    SERVING,
    Replica,
    ReplicaSet,
    ShipGap,
    WalShipper,
    promote,
    state_digest,
)
from repro.resilience import faults as fault_injection
from repro.resilience.faults import SITES, FaultPlan, FaultRule, inject
from repro.resilience.retry import RetryPolicy

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
class Team extends Object (extent Teams) {
    attribute string tag;
}
"""

ACCOUNT_ODL = """
class Account extends Object (extent Accounts) {
    attribute int balance;
    int deposit(int amount) effect U(Account) {
        this.balance := this.balance + amount;
        return this.balance;
    }
}
"""


@pytest.fixture(autouse=True)
def _clean_slate():
    _flight.RECORDER.clear()
    yield
    fault_injection.uninstall()


def _fast_retry(**kw):
    return RetryPolicy.seeded(0, base_delay=0.0, jitter=0.0, **kw)


def _open(tmp_path, name="db", odl=ODL, **kw):
    return Database.open(str(tmp_path / name), odl, **kw)


# ---------------------------------------------------------------------------
# Shipping mechanism
# ---------------------------------------------------------------------------


class TestShipper:
    def test_tails_new_records_incrementally(self, tmp_path):
        db = _open(tmp_path)
        shipper = WalShipper(recovery.wal_path(db.wal_dir))
        assert shipper.poll() == ()
        db.insert("Person", name="a", age=1)
        (r1,) = shipper.poll()
        assert r1["lsn"] == 1 and r1["kind"] == "delta"
        db.insert("Person", name="b", age=2)
        db.insert("Team", tag="t")
        r2, r3 = shipper.poll()
        assert (r2["lsn"], r3["lsn"]) == (2, 3)
        assert shipper.poll() == ()
        assert shipper.snapshot()["records"] == 3

    def test_checkpoint_fold_is_a_ship_gap(self, tmp_path):
        db = _open(tmp_path)
        shipper = WalShipper(recovery.wal_path(db.wal_dir))
        db.insert("Person", name="a", age=1)
        db.insert("Person", name="b", age=2)
        shipper.poll()
        db.checkpoint()  # truncates the log under the shipper
        db.insert("Person", name="c", age=3)
        with pytest.raises(ShipGap, match="resync"):
            shipper.poll()
        assert shipper.snapshot()["gaps"] == 1

    def test_torn_tail_ships_prefix_then_completes(self, tmp_path):
        db = _open(tmp_path)
        path = recovery.wal_path(db.wal_dir)
        shipper = WalShipper(path)
        db.insert("Person", name="a", age=1)
        (r1,) = shipper.poll()  # offset now sits at record 1's end
        assert r1["lsn"] == 1
        db.insert("Person", name="b", age=2)
        db.close()
        whole = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(whole[: shipper.offset + 7])  # record 2 torn mid-frame
        assert shipper.poll() == ()  # in-flight append: wait, no gap
        with open(path, "wb") as fh:
            fh.write(whole)  # the same frame completes
        (r2,) = shipper.poll()
        assert r2["lsn"] == 2
        assert shipper.snapshot()["gaps"] == 0

    def test_persistent_corruption_is_a_gap(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        path = recovery.wal_path(db.wal_dir)
        shipper = WalShipper(path)
        shipper.poll()
        size = os.path.getsize(path)
        with open(path, "ab") as fh:
            fh.write(b"\xff" * 9)  # garbage frame that will never complete
        assert shipper.poll() == ()  # first strike: could be in flight
        with open(path, "ab") as fh:
            fh.write(b"\xff" * 32)  # the file grows past the torn frame
        with pytest.raises(ShipGap, match="corrupt frame"):
            shipper.poll()
        assert size < os.path.getsize(path)
        db.close()


class TestReplicaApply:
    def test_bootstrap_then_apply_tracks_marks(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        r = Replica("r1", db, retry=_fast_retry())
        assert r.state == SERVING
        assert r.applied_lsn == 1
        assert r.star == 1  # bootstrap: state equals the prefix exactly
        db.insert("Person", name="b", age=2)
        db.insert("Team", tag="t")
        assert r.poll() == 2
        assert r.marks == {"Person": 2, "Team": 3}
        assert r.db.ee.members("Persons") == db.ee.members("Persons")
        assert state_digest(r.db) == state_digest(db)

    def test_update_commit_ships_full_record_and_stars(self, tmp_path):
        db = _open(
            tmp_path, odl=ACCOUNT_ODL, method_mode=AccessMode.EFFECTFUL
        )
        db.run("new Account(balance: 100)")
        r = Replica("r1", db, retry=_fast_retry())
        (a,) = sorted(db.extent("Accounts"))
        db.run(MethodCall(OidRef(a), "deposit", (IntLit(25),)))
        r.poll()
        assert r.star == 2  # the full record advances the star mark
        assert r.db.run(f"{a}.balance").value == IntLit(125)

    def test_define_ships_and_stars(self, tmp_path):
        db = _open(tmp_path)
        r = Replica("r1", db, retry=_fast_retry())
        db.define("define adults() as { p | p <- Persons, p.age >= 18 };")
        r.poll()
        assert r.star == 1
        assert "adults" in r.db.definitions

    def test_out_of_order_record_is_a_gap(self, tmp_path):
        db = _open(tmp_path)
        r = Replica("r1", db, retry=_fast_retry())
        db.insert("Person", name="a", age=1)
        with pytest.raises(ShipGap, match="stream lost"):
            r._apply({"lsn": 3, "kind": "delta"})

    def test_replica_survives_primary_checkpoint(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        r = Replica("r1", db, retry=_fast_retry())
        db.checkpoint()
        db.insert("Person", name="b", age=2)
        r.poll()  # gap -> resync from the fresh checkpoint -> caught up
        assert r.resyncs_total == 2  # constructor + the gap
        assert r.applied_lsn == db.wal.last_lsn
        assert state_digest(r.db) == state_digest(db)


# ---------------------------------------------------------------------------
# Freshness routing
# ---------------------------------------------------------------------------


class TestRouting:
    def test_fresh_read_routes_to_replica(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=30)
        rset = db.replicate(2)
        res = db.run("{ p | p <- Persons, p.age >= 18 }")
        assert len(res.value.items) == 1
        assert db._qstats["routed_reads"] == 1
        assert rset.snapshot()["routed"] == 1

    def test_stale_replica_never_serves(self, tmp_path):
        db = _open(tmp_path)
        rset = db.replicate(1, auto_poll=False)
        db.insert("Person", name="late", age=9)
        # the replica has not shipped lsn 1; Person reads must degrade
        res = db.run("Persons")
        assert len(res.value.items) == 1  # the primary's (fresh) answer
        assert db._qstats["routed_reads"] == 0
        snap = rset.snapshot()
        assert snap["degraded"] == 1
        assert snap["degraded_reasons"] == {"no-fresh-replica": 1}

    def test_unrelated_class_still_routes(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Team", tag="t")
        rset = db.replicate(1, auto_poll=False)
        db.insert("Person", name="late", age=9)
        # Teams is untouched since the replica's bootstrap: A(Person)
        # cannot make new state reachable from Teams, so this routes
        res = db.run("Teams")
        assert len(res.value.items) == 1
        assert db._qstats["routed_reads"] == 1
        assert rset.snapshot()["degraded"] == 0

    def test_update_commit_blocks_all_routing_until_shipped(self, tmp_path):
        db = _open(
            tmp_path, odl=ACCOUNT_ODL, method_mode=AccessMode.EFFECTFUL
        )
        db.run("new Account(balance: 100)")
        rset = db.replicate(1, auto_poll=False)
        (a,) = sorted(db.extent("Accounts"))
        db.run(MethodCall(OidRef(a), "deposit", (IntLit(25),)))
        db.run("Accounts")  # the U commit starred the primary: degrade
        assert db._qstats["routed_reads"] == 0
        rset.poll()
        db.run("Accounts")  # shipped: the replica is provably fresh
        assert db._qstats["routed_reads"] == 1

    def test_auto_poll_recovers_a_miss(self, tmp_path):
        db = _open(tmp_path)
        rset = db.replicate(1, auto_poll=True)
        db.insert("Person", name="late", age=9)
        res = db.run("Persons")  # miss -> poll -> covered -> routed
        assert len(res.value.items) == 1
        assert db._qstats["routed_reads"] == 1
        assert rset.snapshot()["degraded"] == 0

    def test_writes_never_route(self, tmp_path):
        db = _open(tmp_path)
        rset = db.replicate(1)
        db.run('new Person(name: "w", age: 1)')
        assert rset.snapshot()["routed"] == 0
        assert len(db.extent("Persons")) == 1

    def test_least_loaded_covering_replica_wins(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        rset = db.replicate(3)
        for _ in range(6):
            db.run("Persons")
        served = sorted(r.served_total for r in rset)
        assert served == [2, 2, 2]  # round-robin via the load tie-break

    def test_replicate_requires_wal(self, tmp_path):
        db = Database.from_odl(ODL)
        with pytest.raises(ReproError, match="write-ahead log"):
            db.replicate(1)

    def test_detach_replicas_is_idempotent(self, tmp_path):
        db = _open(tmp_path)
        db.replicate(1)
        db.detach_replicas()
        assert db.replicas is None
        db.detach_replicas()
        db.run("Persons")  # no routing, no error
        assert db._qstats["routed_reads"] == 0


# ---------------------------------------------------------------------------
# Fault-driven resync and quarantine
# ---------------------------------------------------------------------------


class TestResync:
    def test_transient_ship_fault_backs_off_and_resyncs(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        sleeps: list[float] = []
        r = Replica(
            "r1",
            db,
            retry=RetryPolicy.seeded(
                0, base_delay=0.01, jitter=0.0, sleep=sleeps.append
            ),
        )
        plan = FaultPlan([FaultRule("replica.ship", at=1)])
        with inject(plan):
            db.insert("Person", name="b", age=2)
            assert r.poll() == 0  # injected fault: backoff + resync
        assert r.applied_lsn == 2  # the resync caught all the way up
        assert sleeps == [0.01]  # seeded exponential backoff, 1 failure
        assert r.ship_failures_total == 1
        assert state_digest(r.db) == state_digest(db)

    def test_repeated_faults_grow_the_backoff(self, tmp_path):
        db = _open(tmp_path)
        sleeps: list[float] = []
        r = Replica(
            "r1",
            db,
            retry=RetryPolicy.seeded(
                0, base_delay=0.01, jitter=0.0, sleep=sleeps.append
            ),
        )
        with inject(FaultPlan([FaultRule("replica.ship", every=1, times=3)])):
            for _ in range(3):
                r.poll()
        assert sleeps == [0.01, 0.02, 0.04]  # doubling, seeded, capped

    def test_apply_fault_resyncs_without_quarantine(self, tmp_path):
        db = _open(tmp_path)
        r = Replica("r1", db, retry=_fast_retry())
        db.insert("Person", name="a", age=1)
        with inject(FaultPlan([FaultRule("replica.apply", at=1)])):
            r.poll()
        assert r.state != QUARANTINED
        r.poll()
        assert r.applied_lsn == 1
        assert state_digest(r.db) == state_digest(db)

    def test_resync_does_not_touch_the_primary_log(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        path = recovery.wal_path(db.wal_dir)
        with open(path, "ab") as fh:
            fh.write(b"\xff" * 5)  # torn tail a *recover* would truncate
        size = os.path.getsize(path)
        r = Replica("r1", db, retry=_fast_retry())
        assert os.path.getsize(path) == size  # bootstrap never repairs
        assert r.applied_lsn == 1


class TestQuarantine:
    def _diverge(self, tmp_path, audit_every=1):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        rset = db.replicate(2, audit_every=audit_every, retry=_fast_retry())
        bad = rset.get("replica-1")
        # tamper with the replica's state behind the ship stream's back
        bad.db.insert("Person", name="phantom", age=99)
        return db, rset, bad

    def test_digest_audit_quarantines_divergence(self, tmp_path):
        db, rset, bad = self._diverge(tmp_path)
        assert rset.audit_all() is False
        assert bad.state == QUARANTINED
        assert "divergence" in bad.quarantine_reason
        good = rset.get("replica-2")
        assert good.state == SERVING

    def test_quarantine_writes_named_flight_dump(self, tmp_path):
        db, rset, bad = self._diverge(tmp_path)
        rset.audit_all()
        dump = os.path.join(db.wal_dir, "flight-replica-1.jsonl")
        assert os.path.exists(dump)
        text = open(dump, encoding="utf-8").read()
        assert "replica-quarantine" in text
        assert "replica-divergence" in text

    def test_quarantined_replica_never_serves_again(self, tmp_path):
        db, rset, bad = self._diverge(tmp_path)
        rset.audit_all()
        before = bad.served_total
        for _ in range(4):
            db.run("Persons")
        assert bad.served_total == before  # routed elsewhere
        assert db._qstats["routed_reads"] == 4  # replica-2 still covers
        assert bad.poll() == 0  # quarantine is terminal: no shipping

    def test_periodic_audit_fires_from_poll(self, tmp_path):
        db = _open(tmp_path)
        rset = db.replicate(1, audit_every=2, retry=_fast_retry())
        r = rset.get("replica-1")
        db.insert("Person", name="a", age=1)
        db.insert("Person", name="b", age=2)
        r.poll()  # 2 applied records >= audit_every: audits, agrees
        assert r.audits_total == 1
        assert r.state == SERVING

    def test_refused_record_quarantines(self, tmp_path):
        db = _open(tmp_path)
        rset = db.replicate(1, retry=_fast_retry())
        r = rset.get("replica-1")
        db.insert("Person", name="a", age=1)
        # a CRC-intact record that is semantically impossible (unknown
        # class) — the ship stream is fine, the *content* is poison, so
        # the replica must refuse loudly rather than resync forever
        good = wal.read_records(recovery.wal_path(db.wal_dir))[-1]
        bad = dict(good)
        bad["objects"] = {
            oid: {"class": "NoSuchClass", "attrs": {}}
            for oid in good["objects"]
        }
        db.wal.append(dict(bad, lsn=None))  # reserialise with a real lsn
        assert r.poll() == 1  # the poisoned record quarantines on apply
        assert r.state == QUARANTINED
        assert "refused to apply" in r.quarantine_reason


# ---------------------------------------------------------------------------
# Lag states
# ---------------------------------------------------------------------------


class TestLag:
    def test_lagging_state_and_recovery(self, tmp_path):
        db = _open(tmp_path)
        rset = db.replicate(1, lag_threshold=2, auto_poll=False)
        r = rset.get("replica-1")
        for i in range(4):
            db.insert("Person", name=f"p{i}", age=i)
        assert r.lag() == 4
        r._update_state()
        assert r.state == LAGGING
        r.poll()
        assert r.state == SERVING and r.lag() == 0

    def test_lagging_replica_still_serves_covered_reads(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Team", tag="t")
        rset = db.replicate(1, lag_threshold=0, auto_poll=False)
        r = rset.get("replica-1")
        for i in range(3):
            db.insert("Person", name=f"p{i}", age=i)
        r._update_state()
        assert r.state == LAGGING
        db.run("Teams")  # stale-but-covered is still correct
        assert db._qstats["routed_reads"] == 1


# ---------------------------------------------------------------------------
# Failover
# ---------------------------------------------------------------------------


class TestFailover:
    def test_promote_fences_old_primary(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        rset = db.replicate(2)
        newdb = promote(rset.get("replica-1"))
        assert db._fenced
        for stmt in (lambda: db.insert("Person", name="x", age=1),
                     lambda: db.run("Persons"),
                     lambda: db.checkpoint(),
                     lambda: db.replicate(1)):
            with pytest.raises(ReproError, match="fenced"):
                stmt()
        assert newdb.wal is not None
        assert len(newdb.extent("Persons")) == 1

    def test_promote_replays_the_unshipped_tail(self, tmp_path):
        db = _open(tmp_path)
        rset = db.replicate(1, auto_poll=False)
        r = rset.get("replica-1")
        for i in range(3):
            db.insert("Person", name=f"p{i}", age=i)
        assert r.applied_lsn == 0  # nothing shipped yet
        newdb = promote(r)
        assert len(newdb.extent("Persons")) == 3  # tail replayed

    def test_promoted_oids_never_collide(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        rset = db.replicate(1)
        old_oids = set(db.extent("Persons"))
        newdb = promote(rset.get("replica-1"))
        new_oid = newdb.insert("Person", name="b", age=2)
        assert new_oid not in old_oids  # supply resumed past the HWM

    def test_promote_rehomes_survivors(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        rset = db.replicate(3)
        newdb = promote(rset.get("replica-2"))
        assert newdb.replicas is not None
        names = sorted(r.name for r in newdb.replicas)
        assert names == ["replica-1", "replica-3"]
        newdb.insert("Person", name="b", age=2)
        newdb.replicas.poll()
        for r in newdb.replicas:
            assert state_digest(r.db) == state_digest(newdb)
        newdb.run("Persons")
        assert newdb._qstats["routed_reads"] == 1

    def test_promote_excludes_quarantined_survivors(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        rset = db.replicate(2, audit_every=1, retry=_fast_retry())
        bad = rset.get("replica-2")
        bad.db.insert("Person", name="phantom", age=9)
        rset.audit_all()
        assert bad.state == QUARANTINED
        newdb = promote(rset.get("replica-1"))
        assert newdb.replicas is None  # the only survivor was quarantined

    def test_cannot_promote_quarantined_replica(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        rset = db.replicate(1, audit_every=1, retry=_fast_retry())
        bad = rset.get("replica-1")
        bad.db.insert("Person", name="phantom", age=9)
        rset.audit_all()
        assert bad.state == QUARANTINED
        with pytest.raises(ReproError, match="quarantined"):
            promote(bad)

    def test_promote_fault_site_fires(self, tmp_path):
        db = _open(tmp_path)
        rset = db.replicate(1)
        from repro.errors import TransientFault

        with inject(FaultPlan([FaultRule("failover.promote", at=1)])):
            with pytest.raises(TransientFault):
                promote(rset.get("replica-1"))
        assert not db._fenced  # the fault fired before any fencing
        db.insert("Person", name="a", age=1)  # the primary still writes


# ---------------------------------------------------------------------------
# Satellite (a): close / detach ordering
# ---------------------------------------------------------------------------


class TestCloseDetachIdempotence:
    def test_close_twice_is_safe(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        db.close()
        db.close()
        assert db.wal is None

    def test_close_then_detach_then_close(self, tmp_path):
        db = _open(tmp_path)
        db.replicate(1)
        db.close()
        db.detach_replicas()
        db.close()
        assert db.wal is None and db.replicas is None

    def test_detach_then_close_any_order(self, tmp_path):
        db = _open(tmp_path)
        db.replicate(2)
        db.detach_replicas()
        db.close()
        db.detach_replicas()
        assert db.wal is None

    def test_fault_detach_then_close_counts_once(self, tmp_path):
        from repro import obs

        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        obs.enable()
        try:
            from repro.obs.metrics import REGISTRY

            from repro.errors import TransientFault

            before = REGISTRY.counter("wal_detached_total").value
            with inject(FaultPlan([FaultRule("wal.append", at=1)])):
                snap = db.snapshot()
                with pytest.raises(TransientFault):
                    db.restore(snap)  # unattributed log fails -> detach
            assert db.wal is None
            db.close()  # second close after the fault-driven detach
            db.close()
            assert REGISTRY.counter("wal_detached_total").value == before + 1
        finally:
            obs.disable()


# ---------------------------------------------------------------------------
# Satellite (b): fault-plan site validation
# ---------------------------------------------------------------------------


class TestFaultPlanValidation:
    def test_all_sixteen_sites_known(self):
        assert len(SITES) == 16
        for site in (
            "replica.ship",
            "replica.apply",
            "failover.promote",
            "shard.install",
            "exec.shard",
            "exec.traverse",
        ):
            assert site in SITES

    def test_rule_rejects_unknown_site(self):
        with pytest.raises(ReproError, match="unknown fault site"):
            FaultRule("replica.shp")

    def test_plan_rejects_duck_typed_rule(self):
        fake = types.SimpleNamespace(site="nope", kind="transient")
        with pytest.raises(ReproError, match="FaultRule instances"):
            FaultPlan([fake])
        with pytest.raises(ReproError, match="FaultRule instances"):
            FaultPlan().add(fake)

    def test_plan_rejects_mutated_rule(self):
        rule = FaultRule("commit")
        object.__setattr__(rule, "site", "not.a.site")
        with pytest.raises(ReproError, match="unknown fault site"):
            FaultPlan([rule])
        rule2 = FaultRule("commit")
        object.__setattr__(rule2, "kind", "explosive")
        with pytest.raises(ReproError, match="unknown fault kind"):
            FaultPlan().add(rule2)

    def test_valid_rules_for_new_sites_construct(self):
        plan = FaultPlan(
            [
                FaultRule("replica.ship", every=2),
                FaultRule("replica.apply", at=1),
                FaultRule("failover.promote", times=1),
            ]
        )
        assert len(plan.rules) == 3


# ---------------------------------------------------------------------------
# Scheduler integration: pinned reads leave the conflict graph
# ---------------------------------------------------------------------------


class TestPinnedBatchReads:
    def test_pinned_reads_drop_their_edges(self, tmp_path):
        db = _open(tmp_path)
        for i in range(3):
            db.insert("Person", name=f"p{i}", age=20 + i)
        db.replicate(2)
        res = db.run_many(
            [
                "{ p.name | p <- Persons }",
                "{ p | p <- Persons, p.age >= 21 }",
                'new Person(name: "w", age: 50)',
            ],
            workers=2,
        )
        assert all(o.ok for o in res)
        stats = db._last_batch
        assert stats["pinned_reads"] == 2
        # without pinning the writer would conflict with both reads
        assert stats["conflict_edges"] == 0

    def test_pinned_batch_equals_sequential(self, tmp_path):
        batch = [
            "{ p.name | p <- Persons }",
            'new Person(name: "w1", age: 50)',
            "{ t | t <- Teams }",  # Teams untouched: still pinnable
            "{ p.age | p <- Persons }",  # Person was added to: not pinnable
            'new Person(name: "w2", age: 51)',
        ]
        db = _open(tmp_path)
        for i in range(3):
            db.insert("Person", name=f"p{i}", age=20 + i)
        db.replicate(2)
        got = [o.value for o in db.run_many(batch, workers=4)]

        ref = _open(tmp_path, "ref")
        for i in range(3):
            ref.insert("Person", name=f"p{i}", age=20 + i)
        want = [ref.run(q).value for q in batch]
        assert got == want
        assert db._last_batch["pinned_reads"] == 2

    def test_no_replicas_means_no_pinning(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        res = db.run_many(["Persons", 'new Person(name: "b", age: 2)'])
        assert all(o.ok for o in res)
        assert db._last_batch["pinned_reads"] == 0
        assert db._last_batch["conflict_edges"] == 1


# ---------------------------------------------------------------------------
# Health surface
# ---------------------------------------------------------------------------


class TestReplicationHealth:
    def test_health_reports_replication(self, tmp_path):
        db = _open(tmp_path)
        db.insert("Person", name="a", age=1)
        db.replicate(2)
        db.run("Persons")
        snap = db.health()
        rep = snap["replication"]
        assert rep["count"] == 2 and rep["routed"] == 1
        states = {r["state"] for r in rep["replicas"]}
        assert states == {SERVING}
        from repro.db.health import render

        board = render(snap)
        assert "replication" in board and "routed=1" in board

    def test_health_without_replicas(self, tmp_path):
        db = _open(tmp_path)
        assert db.health()["replication"] is None
