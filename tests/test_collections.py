"""Tests for the bag/list collection extension (§3.1) and the ordered-
iteration determinism observation (§6.2 / XQuery)."""

import pytest

from repro.db.database import Database
from repro.errors import IOQLTypeError
from repro.lang.ast import BagLit, IntLit, ListLit
from repro.lang.parser import parse_query, parse_type
from repro.lang.pprint import pretty
from repro.lang.values import (
    bag_except,
    bag_intersect,
    bag_remove_one,
    bag_union,
    collection_to_set,
    is_value,
    list_concat,
    make_bag_value,
    make_set_value,
)
from repro.model.types import INT, BagType, ListType, SetType

ODL = """
class P extends Object (extent Ps) {
    attribute string name;
}
class F extends Object (extent Fs) {
    attribute string name;
}
"""


@pytest.fixture
def db():
    d = Database.from_odl(ODL)
    d.insert("P", name="Jack")
    d.insert("P", name="Jill")
    return d


class TestValuesAndCanonicalForm:
    def test_bag_keeps_duplicates(self):
        b = make_bag_value([IntLit(2), IntLit(1), IntLit(2)])
        assert b == BagLit((IntLit(1), IntLit(2), IntLit(2)))
        assert is_value(b)

    def test_unsorted_bag_not_a_value(self):
        assert not is_value(BagLit((IntLit(2), IntLit(1))))

    def test_list_keeps_order(self):
        l = ListLit((IntLit(2), IntLit(1), IntLit(2)))
        assert is_value(l)

    def test_lists_differ_by_order(self):
        assert ListLit((IntLit(1), IntLit(2))) != ListLit((IntLit(2), IntLit(1)))

    def test_bag_ops(self):
        a = make_bag_value([IntLit(1), IntLit(2), IntLit(2)])
        b = make_bag_value([IntLit(2), IntLit(3)])
        assert bag_union(a, b) == make_bag_value(
            [IntLit(1), IntLit(2), IntLit(2), IntLit(2), IntLit(3)]
        )
        assert bag_intersect(a, b) == make_bag_value([IntLit(2)])
        assert bag_except(a, b) == make_bag_value([IntLit(1), IntLit(2)])

    def test_bag_remove_one(self):
        a = make_bag_value([IntLit(2), IntLit(2)])
        assert bag_remove_one(a, IntLit(2)) == make_bag_value([IntLit(2)])

    def test_list_concat(self):
        assert list_concat(
            ListLit((IntLit(1),)), ListLit((IntLit(1),))
        ) == ListLit((IntLit(1), IntLit(1)))

    def test_collection_to_set(self):
        b = make_bag_value([IntLit(1), IntLit(1), IntLit(2)])
        assert collection_to_set(b) == make_set_value([IntLit(1), IntLit(2)])


class TestSyntax:
    def test_parse_literals(self):
        assert parse_query("bag(1, 2)") == BagLit((IntLit(1), IntLit(2)))
        assert parse_query("list(1, 2)") == ListLit((IntLit(1), IntLit(2)))
        assert parse_query("bag()") == BagLit(())
        assert parse_query("list()") == ListLit(())

    def test_parse_types(self):
        assert parse_type("bag<int>") == BagType(INT)
        assert parse_type("list<bag<int>>") == ListType(BagType(INT))

    @pytest.mark.parametrize(
        "src",
        [
            "bag(1, 2, 2)",
            "list(1, 2) union list(3)",
            "toset(bag(1, 1))",
            "{x | x <- list(1, 2), x < 2}",
            "size(bag(1, 1))",
        ],
    )
    def test_roundtrip(self, src):
        q = parse_query(src)
        assert parse_query(pretty(q)) == q


class TestTyping:
    def test_literal_types(self, db):
        assert db.typecheck("bag(1, 2)") == BagType(INT)
        assert db.typecheck("list(1, 2)") == ListType(INT)
        assert db.typecheck("toset(bag(1))") == SetType(INT)

    def test_kind_mixing_rejected(self, db):
        with pytest.raises(IOQLTypeError, match="one collection kind"):
            db.typecheck("{1} union bag(1)")

    def test_list_intersect_rejected(self, db):
        with pytest.raises(IOQLTypeError, match="only union"):
            db.typecheck("list(1) intersect list(2)")

    def test_list_except_rejected(self, db):
        with pytest.raises(IOQLTypeError, match="only union"):
            db.typecheck("list(1) except list(2)")

    def test_generator_over_bag_and_list(self, db):
        assert db.typecheck("{x + 1 | x <- bag(1, 2)}") == SetType(INT)
        assert db.typecheck("{x + 1 | x <- list(1, 2)}") == SetType(INT)

    def test_size_and_toset(self, db):
        assert db.typecheck("size(list(1, 1))") == INT
        assert db.typecheck("toset(list(1, 1))") == SetType(INT)

    def test_covariance(self, db):
        h = db.schema.hierarchy
        from repro.model.types import ClassType, NEVER

        assert h.subtype(BagType(NEVER), BagType(ClassType("P")))
        assert h.subtype(ListType(NEVER), ListType(INT))


class TestSemantics:
    def test_bag_union_additive(self, db):
        assert db.run("bag(1, 2) union bag(2)").value == make_bag_value(
            [IntLit(1), IntLit(2), IntLit(2)]
        )

    def test_bag_intersect_min(self, db):
        r = db.run("bag(1, 2, 2) intersect bag(2, 2, 2)")
        assert r.value == make_bag_value([IntLit(2), IntLit(2)])

    def test_bag_except_monus(self, db):
        r = db.run("bag(2, 2, 1) except bag(2)")
        assert r.value == make_bag_value([IntLit(1), IntLit(2)])

    def test_list_concat_ordered(self, db):
        r = db.run("list(3, 1) union list(2)")
        assert r.value == ListLit((IntLit(3), IntLit(1), IntLit(2)))

    def test_size_counts_multiplicity(self, db):
        assert db.run("size(bag(7, 7, 7))").python() == 3
        assert db.run("size({7, 7, 7})").python() == 1

    def test_toset_deduplicates(self, db):
        assert db.run("toset(bag(1, 1, 2))").value == make_set_value(
            [IntLit(1), IntLit(2)]
        )

    def test_comprehension_over_bag(self, db):
        r = db.run("{x * 10 | x <- bag(1, 1, 2)}")
        assert r.python() == frozenset({10, 20})

    def test_comprehension_over_list(self, db):
        r = db.run("{x * 10 | x <- list(2, 1, 2)}")
        assert r.python() == frozenset({10, 20})

    def test_bag_canon_step(self, db):
        from repro.semantics.machine import Config

        cfg = Config(db.ee, db.oe, BagLit((IntLit(2), IntLit(1))))
        step = db.machine.step(cfg)
        assert step.rule == "Bag canon"
        assert step.config.query == make_bag_value([IntLit(1), IntLit(2)])


class TestOrderedIterationDeterminism:
    """The §6.2 observation: sequence (list) iteration is deterministic,
    so an interfering body over a *list* is still deterministic, while
    the same body over a set/bag is not."""

    BODY = (
        '(if size(Fs) = 0 '
        ' then struct(r: "first", w: new F(name: "first")).r '
        ' else struct(r: "later", w: new F(name: "later")).r)'
    )

    def test_list_iteration_single_schedule(self, db):
        ex = db.explore("{x | x <- list(1, 2, 3)}")
        assert ex.paths == 1  # (List comp) is deterministic

    def test_set_iteration_many_schedules(self, db):
        assert db.explore("{x | x <- {1, 2, 3}}").paths == 6

    def test_bag_iteration_schedules(self, db):
        # distinct elements only fork the exploration once per value
        assert db.explore("{x | x <- bag(1, 1, 2)}").paths == 3

    def test_interfering_body_over_set_rejected(self, db):
        src = "{ %s | p <- Ps }" % self.BODY
        assert not db.is_deterministic(src)

    def test_same_body_over_list_accepted(self, db):
        """⊢′ with the list exemption: ordered iteration removes the
        non-determinism, so no nonint obligation arises."""
        src = "{ %s | x <- list(1, 2) }" % self.BODY
        assert db.is_deterministic(src)

    def test_list_acceptance_is_dynamically_justified(self, db):
        src = "{ %s | x <- list(1, 2) }" % self.BODY
        ex = db.explore(src)
        assert ex.paths == 1
        assert [str(v) for v in ex.distinct_values()] == ['{"first", "later"}']

    def test_commuting_list_concat_refused(self, db):
        q = db.parse("list(1) union list(2)")
        from repro.optimizer.planner import try_commute

        assert not try_commute(db, q).changed

    def test_list_concat_not_flagged_by_commutativity_checker(self, db):
        # ⊢″ says nothing about list concatenation (not commutative);
        # no conflict — but also no licence (the optimizer refuses)
        assert db.commutation_conflicts("list(1) union list(2)") == []


class TestMetatheoryWithCollections:
    def test_subject_reduction_through_collections(self, db):
        from repro.metatheory.theorems import check_subject_reduction

        for src in [
            "{x | x <- bag(1, 1, 2), x < 2}",
            "size(list(1, 2) union list(3))",
            "toset(bag(1, 1)) union {2}",
            "{ struct(a: x, b: new F(name: p.name)).a | x <- list(1, 2), p <- Ps }",
        ]:
            report = check_subject_reduction(
                db.machine, db.ee, db.oe, db.parse(src)
            )
            assert report, f"{src}: {report.detail}"

    def test_bijection_handles_lists_and_bags(self, db):
        from repro.semantics.bijection import values_equivalent
        from repro.lang.ast import OidRef
        from repro.db.store import ObjectEnv, ObjectRecord
        from repro.lang.ast import StrLit

        oe1 = ObjectEnv({"@a": ObjectRecord("P", (("name", StrLit("x")),))})
        oe2 = ObjectEnv({"@b": ObjectRecord("P", (("name", StrLit("x")),))})
        v1 = ListLit((OidRef("@a"), OidRef("@a")))
        v2 = ListLit((OidRef("@b"), OidRef("@b")))
        assert values_equivalent(v1, oe1, v2, oe2)
        v3 = ListLit((OidRef("@b"), OidRef("@b")))
        oe3 = ObjectEnv({"@b": ObjectRecord("F", (("name", StrLit("x")),))})
        assert not values_equivalent(v1, oe1, v3, oe3)
