"""Differential certification of the replication layer.

Two properties, both checked against an oracle rather than asserted
from the implementation's own bookkeeping:

* **Zero stale reads** — across 200 seeded mixed rounds (inserts,
  ``U``-effect method calls, defines, checkpoints, scheduled batches,
  sporadic replica polls and injected ship faults), every read the
  primary answers — routed to a replica or not — equals the answer of
  a replica-free reference database that received the identical write
  sequence.  The freshness rule (per-extent watermarks + the star mark
  for ``U``/``define`` commits) is what makes routed reads safe; this
  is the experiment that would catch it being wrong.

* **Failover ≡ recovery** — promoting a replica over a dead primary's
  directory (the in-process analogue of ``examples/
  replica_failover.py``'s ``kill -9``) yields byte-for-byte the state
  that crash recovery extracts from a copy of the same directory, at
  every record-boundary crash point and under a torn tail.  Promotion
  *is* recovery with a survivor's head start, and this proves the head
  start changes nothing.
"""

import os
import random
import shutil

import pytest

from repro.db import recovery, wal
from repro.db.database import Database
from repro.lang.ast import IntLit, MethodCall, OidRef
from repro.methods.ast import AccessMode
from repro.replication import QUARANTINED, Replica, promote, state_digest
from repro.resilience import faults as fault_injection
from repro.resilience.faults import FaultPlan, FaultRule
from repro.resilience.retry import RetryPolicy

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
class Team extends Object (extent Teams) {
    attribute string tag;
}
class Account extends Object (extent Accounts) {
    attribute int balance;
    int deposit(int amount) effect U(Account) {
        this.balance := this.balance + amount;
        return this.balance;
    }
}
"""

READS = (
    "Persons",
    "Teams",
    "Accounts",
    "{ p.name | p <- Persons }",
    "{ p | p <- Persons, p.age >= 30 }",
    "{ t.tag | t <- Teams }",
    "{ a.balance | a <- Accounts }",
    "{ p.age | p <- Persons, p.age < 25 }",
)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    yield
    fault_injection.uninstall()


def _fast_retry():
    return RetryPolicy.seeded(0, base_delay=0.0, jitter=0.0)


def _open_pair(tmp_path):
    live = Database.open(
        str(tmp_path / "live"), ODL, method_mode=AccessMode.EFFECTFUL
    )
    ref = Database.open(
        str(tmp_path / "ref"), ODL, method_mode=AccessMode.EFFECTFUL
    )
    return live, ref


def _write_op(rng, db):
    """One seeded write; returns the statement to replay on the oracle."""
    kind = rng.randrange(4)
    if kind == 0:
        return f'new Person(name: "p{rng.randrange(1000)}", age: {rng.randrange(18, 70)})'
    if kind == 1:
        return f'new Team(tag: "t{rng.randrange(100)}")'
    if kind == 2:
        return f"new Account(balance: {rng.randrange(10, 500)})"
    accounts = sorted(db.extent("Accounts"))
    if not accounts:
        return f"new Account(balance: {rng.randrange(10, 500)})"
    target = accounts[rng.randrange(len(accounts))]
    return MethodCall(OidRef(target), "deposit", (IntLit(rng.randrange(1, 50)),))


class TestZeroStaleReads:
    """The headline property: no routed read is ever stale."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_200_seeded_mixed_rounds(self, tmp_path, seed):
        rng = random.Random(seed)
        live, ref = _open_pair(tmp_path)
        rset = live.replicate(
            2, auto_poll=False, audit_every=0, retry=_fast_retry()
        )
        defined = 0
        divergences = []
        for round_no in range(100):
            # -- writes (identical sequence on live and oracle) --------
            for _ in range(rng.randrange(3)):
                stmt = _write_op(rng, live)
                live.run(stmt)
                ref.run(stmt)
            if rng.random() < 0.08:
                src = (
                    f"define v{defined}() as "
                    "{ p | p <- Persons, p.age >= 40 };"
                )
                defined += 1
                live.define(src)
                ref.define(src)
            # -- background churn the router must survive --------------
            if rng.random() < 0.30:
                rset.poll()
            if rng.random() < 0.10:
                live.checkpoint()  # ship gap: replicas must resync
            if rng.random() < 0.08:
                plan = FaultPlan(
                    [FaultRule("replica.ship", every=2, times=2)],
                    seed=round_no,
                )
                fault_injection.install(plan)
                rset.poll()
                fault_injection.uninstall()
            # -- reads: routed or degraded, never wrong ----------------
            for _ in range(rng.randrange(1, 3)):
                q = READS[rng.randrange(len(READS))]
                got = live.run(q).value
                want = ref.run(q).value
                if got != want:
                    divergences.append((round_no, q, got, want))
            if defined and rng.random() < 0.15:
                q = f"v{rng.randrange(defined)}()"
                if live.run(q).value != ref.run(q).value:
                    divergences.append((round_no, q))
        assert divergences == []
        assert live._qstats["routed_reads"] > 0  # the router did work
        for r in rset:
            assert r.state != QUARANTINED  # churn is lag, not divergence

    def test_scheduled_batches_with_pinned_reads(self, tmp_path):
        rng = random.Random(7)
        live, ref = _open_pair(tmp_path)
        for i in range(4):
            stmt = f'new Person(name: "p{i}", age: {20 + i * 7})'
            live.run(stmt)
            ref.run(stmt)
        live.replicate(2, retry=_fast_retry())
        pinned_seen = 0
        for _ in range(25):
            batch = []
            for _ in range(rng.randrange(2, 6)):
                if rng.random() < 0.4:
                    batch.append(_write_op(rng, live))
                else:
                    batch.append(READS[rng.randrange(len(READS))])
            got = [o.value for o in live.run_many(batch, workers=3)]
            want = [ref.run(q).value for q in batch]
            assert got == want, f"batch diverged: {batch}"
            pinned_seen += live._last_batch["pinned_reads"]
        assert pinned_seen > 0  # some reads really left the graph


class TestFailoverDifferential:
    """Promotion over a dead primary's directory ≡ crash recovery."""

    def _build_estate(self, tmp_path):
        d = str(tmp_path / "estate")
        db = Database.open(d, ODL, method_mode=AccessMode.EFFECTFUL)
        rng = random.Random(42)
        for _ in range(12):
            db.run(_write_op(rng, db))
        # abandon without close: the in-memory handle simply goes away,
        # like a kill -9 — the directory is the whole estate
        return d, db

    def _crash_copy(self, directory, dest, truncate_to=None, tear=False):
        shutil.copytree(directory, dest)
        path = recovery.wal_path(dest)
        if truncate_to is not None:
            with open(path, "r+b") as fh:
                fh.truncate(truncate_to)
        if tear:
            with open(path, "ab") as fh:
                fh.write(b"\x07garbage-tail\xff\xff")
        return dest

    @staticmethod
    def _assert_same_state(a, b, label):
        assert a.ee == b.ee, f"{label}: extents diverge"
        assert a.oe == b.oe, f"{label}: objects diverge"
        assert sorted(a.definitions) == sorted(b.definitions), (
            f"{label}: definitions diverge"
        )

    def _boundaries(self, directory):
        path = recovery.wal_path(directory)
        raw = open(path, "rb").read()
        offsets = []
        offset = len(wal.MAGIC)
        while offset < len(raw):
            _, offset = wal._read_one(raw, offset)
            offsets.append(offset)
        return offsets

    @pytest.mark.parametrize("tear", [False, True])
    def test_promote_equals_recovery_at_every_boundary(self, tmp_path, tear):
        d, _db = self._build_estate(tmp_path)
        for i, cut in enumerate(self._boundaries(d)):
            surv_dir = self._crash_copy(
                d, str(tmp_path / f"surv-{tear}-{i}"), cut, tear=tear
            )
            ref_dir = self._crash_copy(
                d, str(tmp_path / f"ref-{tear}-{i}"), cut, tear=tear
            )
            # the survivor: a cross-process-style replica of the dead
            # primary's directory, promoted in place
            replica = Replica(
                "survivor", directory=surv_dir, retry=_fast_retry()
            )
            promoted = promote(replica, directory=surv_dir)
            reference = recovery.recover(ref_dir, attach=False).db
            self._assert_same_state(
                promoted, reference, f"crash point {i} (tear={tear})"
            )
            # reads on the promoted primary work, writes go to its log
            assert promoted.run("Persons").value is not None
            promoted.insert("Person", name="after", age=1)
            promoted.close()

    def test_promoted_writes_resume_past_the_high_water_mark(self, tmp_path):
        d, _db = self._build_estate(tmp_path)
        surv = self._crash_copy(d, str(tmp_path / "surv"))
        replica = Replica("survivor", directory=surv, retry=_fast_retry())
        promoted = promote(replica, directory=surv)
        all_old = {oid for oid, _ in promoted.oe.items()}
        new_ref = promoted.insert("Person", name="fresh", age=5)
        new_oid = getattr(new_ref, "name", new_ref)
        assert new_oid not in all_old  # ∼: the supply resumed past ~
        # and the promoted estate recovers on its own
        promoted.close()
        again = recovery.recover(surv, attach=False).db
        assert new_oid in again.oe

    def test_survivor_reads_never_error_through_failover(self, tmp_path):
        d, _db = self._build_estate(tmp_path)
        surv = self._crash_copy(d, str(tmp_path / "surv"))
        replica = Replica("survivor", directory=surv, retry=_fast_retry())
        before = replica.serve("Persons").value  # read while headless
        promoted = promote(replica, directory=surv)
        after = promoted.run("Persons").value
        assert before == after  # the survivor was already caught up
        assert state_digest(promoted) == state_digest(replica.db)
