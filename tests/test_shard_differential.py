"""Differential certification: the sharded engine ≡ the unsharded one.

Twin databases carry identical seeded contents; one declares 8-way
attribute sharding on both classes, the other stays unsharded.  Every
seeded batch mixes confined reads, unconfined scans, hash joins and
single-shard / dynamic-shard writers; the sharded twin runs it through
``run_many`` (per-shard conflict refinement, merge-installs, pruned
plans), the unsharded twin sequentially.  Read answers are oid-free by
construction and must match exactly; writers may commute across
disjoint shards, so final states are compared up to the §3 bijection
(``∼``).  The driver's acceptance bar is ≥ 200 batches with zero
divergences; this suite runs 40 seeds × 5 batches = 200.

Two more sections certify the ``shard-delta`` durability path under the
same refinement: a crash-point sweep over a ``run_many``-produced log,
and replica freshness — a replica behind on shard *i* still serves
reads provably confined to shard *j ≠ i* and never serves stale ones.
"""

import random

import pytest

from repro.db import recovery
from repro.db.database import Database
from repro.db.shards import shard_of
from repro.db.wal import truncate_to
from repro.lang.ast import IntLit, StrLit
from repro.semantics.bijection import equivalent
from repro.lang.values import make_set_value  # noqa: F401  (doc pointer)

N_SEEDS = 40
BATCHES_PER_SEED = 5
STATEMENTS_PER_BATCH = 6
WORKERS = 3
K = 8
REGIONS = 12

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute string region;
    attribute int age;
}
class Order extends Object (extent Orders) {
    attribute string item;
    attribute string region;
    attribute int qty;
}
"""


def build_twins(seed: int) -> tuple[Database, Database]:
    rng = random.Random(91_000 + seed)
    sharded = Database.from_odl(ODL)
    plain = Database.from_odl(ODL)
    sharded.shard("Person", k=K, by="region")
    sharded.shard("Order", k=K, by="region")
    rows = [
        ("Person", f"p{i}", f"r{rng.randrange(REGIONS)}", rng.randrange(90))
        for i in range(rng.randrange(20, 40))
    ] + [
        ("Order", f"it{i}", f"r{rng.randrange(REGIONS)}", rng.randrange(9))
        for i in range(rng.randrange(10, 20))
    ]
    for db in (sharded, plain):
        for kind, a, region, n in rows:
            if kind == "Person":
                db.insert("Person", name=a, region=region, age=n)
            else:
                db.insert("Order", item=a, region=region, qty=n)
    return sharded, plain


def make_statement(rng: random.Random, tag: str) -> tuple[str, bool]:
    """One statement and whether it writes (heads are oid-free)."""
    j = rng.randrange(REGIONS)
    t = rng.randrange(90)
    roll = rng.random()
    if roll < 0.18:
        return (
            f'{{ p.name | p <- Persons, p.region = "r{j}" }}',
            False,
        )
    if roll < 0.36:
        return (
            f'{{ p.age | p <- Persons, p.region = "r{j}", p.age > {t} }}',
            False,
        )
    if roll < 0.50:
        return (f"{{ p.name | p <- Persons, p.age > {t} }}", False)
    if roll < 0.62:
        return (
            f'{{ struct(n: p.name, it: o.item) | '
            f'p <- Persons, p.region = "r{j}", '
            f"o <- Orders, p.region = o.region }}",
            False,
        )
    if roll < 0.72:
        return (
            f'{{ o.qty | o <- Orders, o.region = "r{j}", o.qty > 2 }}',
            False,
        )
    if roll < 0.90:
        return (
            f'new Person(name: "{tag}", region: "r{j}", age: {t})',
            True,
        )
    if roll < 0.96:
        return (
            f'new Order(item: "{tag}", region: "r{j}", qty: {t % 9})',
            True,
        )
    # dynamic shard key: the static analysis must refuse to confine it
    return (
        f'{{ new Order(item: "{tag}", region: p.region, qty: 1) '
        f'| p <- Persons, p.region = "r{j}" }}',
        True,
    )


def canon(value) -> object:
    items = getattr(value, "items", None)
    if items is None:
        return value
    return sorted(items, key=repr)


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_sharded_batches_match_unsharded_reference(seed):
    sharded, plain = build_twins(seed)
    rng = random.Random(92_000 + seed)
    for b in range(BATCHES_PER_SEED):
        batch, writer_flags = [], []
        for s in range(STATEMENTS_PER_BATCH):
            src, writes = make_statement(rng, f"w{seed}_{b}_{s}")
            batch.append(src)
            writer_flags.append(writes)
        res = sharded.run_many(batch, workers=WORKERS)
        got = res.values()
        want = [plain.run(src).value for src in batch]
        for i, (g, w) in enumerate(zip(got, want)):
            if writer_flags[i]:
                # writers answer fresh oids; sizes must agree, names
                # may differ when disjoint-shard writers overlapped
                assert len(getattr(g, "items", [g])) == len(
                    getattr(w, "items", [w])
                ), f"seed {seed} batch {b} stmt {i}: writer arity"
            else:
                assert canon(g) == canon(w), (
                    f"seed {seed} batch {b} stmt {i}: {batch[i]}"
                )
        assert equivalent(
            IntLit(0), sharded.ee, sharded.oe, IntLit(0), plain.ee, plain.oe
        ), f"seed {seed} batch {b}: final states diverged"


def test_total_batch_count_meets_acceptance_bar():
    assert N_SEEDS * BATCHES_PER_SEED >= 200


# ---------------------------------------------------------------------------
# shard-delta durability under run_many
# ---------------------------------------------------------------------------


def test_crash_points_over_scheduled_shard_deltas(tmp_path):
    """Every record-boundary crash of a sharded ``run_many`` log
    recovers to a consistent prefix of the admission order."""
    import shutil

    wal_dir = str(tmp_path / "wal")
    db, _ = build_twins(0)
    db.attach_wal(wal_dir)
    db.checkpoint()
    base = len(db.ee.members("Persons"))
    sizes = [db._wal.size()]
    batch = [
        f'new Person(name: "c{i}", region: "r{i % REGIONS}", age: {i})'
        for i in range(8)
    ]
    res = db.run_many(batch, workers=WORKERS)
    assert not res.errors
    db.close()
    # replay cut at every frame boundary: each prefix must land on
    # base + j rows with every object intact (recovery re-validates)
    raw_path = recovery.wal_path(wal_dir)
    with open(raw_path, "rb") as fh:
        raw = fh.read()
    cuts = []
    from repro.db.wal import MAGIC
    import struct as _struct

    off = len(MAGIC)
    cuts.append(off)
    frame = _struct.Struct(">II")
    while off < len(raw):
        length, _ = frame.unpack_from(raw, off)
        off += frame.size + length
        cuts.append(off)
    for j, cut in enumerate(cuts):
        crash = tmp_path / f"crash{j}"
        crash.mkdir()
        shutil.copy(
            recovery.checkpoint_path(wal_dir),
            recovery.checkpoint_path(str(crash)),
        )
        with open(recovery.wal_path(str(crash)), "wb") as fh:
            fh.write(raw[:cut])
        got = recovery.recover(str(crash), attach=False).db
        assert len(got.ee.members("Persons")) == base + j


# ---------------------------------------------------------------------------
# replica freshness at shard granularity
# ---------------------------------------------------------------------------


def _regions_for_two_distinct_shards() -> tuple[str, str]:
    """Two region literals guaranteed to hash to different shards."""
    first = f"r{0}"
    target = shard_of(StrLit(first), K)
    other = next(
        f"r{i}"
        for i in range(1, 100)
        if shard_of(StrLit(f"r{i}"), K) != target
    )
    return first, other


class TestReplicaShardFreshness:
    def _primary(self, tmp_path) -> Database:
        db, _ = build_twins(3)
        db.attach_wal(str(tmp_path / "wal"))
        db.checkpoint()
        return db

    def test_replica_tracks_per_shard_marks(self, tmp_path):
        db = self._primary(tmp_path)
        rset = db.replicate(1, auto_poll=False)
        rset.poll()
        hot, _ = _regions_for_two_distinct_shards()
        db.insert("Person", name="hot", region=hot, age=1)
        rset.poll()
        marks = rset.replicas[0].marks
        s = shard_of(StrLit(hot), K)
        assert marks[f"Person#{s}"] == db._wal.last_lsn
        db.close()

    def test_lagging_shard_does_not_block_disjoint_reads(self, tmp_path):
        db = self._primary(tmp_path)
        rset = db.replicate(1, auto_poll=False)
        rset.poll()
        hot, cold = _regions_for_two_distinct_shards()
        # the replica is now behind on exactly the hot region's shard
        db.insert("Person", name="fresh", region=hot, age=1)
        routed0 = rset.routed_total
        res = db.run(f'{{ p.name | p <- Persons, p.region = "{cold}" }}')
        assert rset.routed_total == routed0 + 1, "confined read not routed"
        assert "fresh" not in {
            getattr(v, "value", None) for v in res.value.items
        }
        db.close()

    def test_read_of_the_stale_shard_is_not_served_stale(self, tmp_path):
        db = self._primary(tmp_path)
        rset = db.replicate(1, auto_poll=False)
        rset.poll()
        hot, _ = _regions_for_two_distinct_shards()
        db.insert("Person", name="fresh", region=hot, age=1)
        routed0 = rset.routed_total
        res = db.run(f'{{ p.name | p <- Persons, p.region = "{hot}" }}')
        # served by the primary (or degraded) — never a stale answer
        assert rset.routed_total == routed0
        assert "fresh" in {
            getattr(v, "value", None) for v in res.value.items
        }
        db.close()

    def test_unconfined_read_requires_full_coverage(self, tmp_path):
        db = self._primary(tmp_path)
        rset = db.replicate(1, auto_poll=False)
        rset.poll()
        hot, _ = _regions_for_two_distinct_shards()
        db.insert("Person", name="fresh", region=hot, age=1)
        routed0 = rset.routed_total
        res = db.run("{ p.name | p <- Persons }")
        assert rset.routed_total == routed0  # replica behind on a shard
        assert "fresh" in {
            getattr(v, "value", None) for v in res.value.items
        }
        # after catch-up the same read routes again
        rset.poll()
        db.run("{ p.age | p <- Persons }")
        assert rset.routed_total == routed0 + 1
        db.close()
