"""Unit tests for the σ ≤ σ′ relation of §3.2 (repro.model.subtyping)."""

import pytest

from repro.errors import SchemaError
from repro.model.subtyping import ClassHierarchy, check_type_well_formed
from repro.model.types import (
    BOOL,
    INT,
    NEVER,
    OBJECT,
    STRING,
    ClassType,
    FuncType,
    RecordType,
    SetType,
)


@pytest.fixture
def h() -> ClassHierarchy:
    # Object <- Person <- Employee <- Manager ; Object <- Dog
    return ClassHierarchy(
        {
            "Person": OBJECT,
            "Employee": "Person",
            "Manager": "Employee",
            "Dog": OBJECT,
        }
    )


class TestHierarchyConstruction:
    def test_object_implicit(self):
        h = ClassHierarchy({})
        assert h.declared(OBJECT)
        assert h.superclass(OBJECT) is None

    def test_cycle_detected(self):
        with pytest.raises(SchemaError, match="cycle"):
            ClassHierarchy({"A": "B", "B": "A"})

    def test_self_cycle_detected(self):
        with pytest.raises(SchemaError, match="cycle"):
            ClassHierarchy({"A": "A"})

    def test_unknown_superclass(self):
        with pytest.raises(SchemaError, match="unknown"):
            ClassHierarchy({"A": "Ghost"})

    def test_ancestors(self, h):
        assert h.ancestors("Manager") == ["Manager", "Employee", "Person", OBJECT]

    def test_subclasses(self, h):
        assert h.subclasses("Person") == frozenset({"Person", "Employee", "Manager"})

    def test_unknown_class_queries(self, h):
        with pytest.raises(SchemaError):
            h.ancestors("Ghost")
        with pytest.raises(SchemaError):
            h.superclass("Ghost")


class TestClassSubtyping:
    def test_reflexive(self, h):
        assert h.is_subclass("Person", "Person")

    def test_direct(self, h):
        assert h.is_subclass("Employee", "Person")

    def test_transitive(self, h):
        assert h.is_subclass("Manager", "Person")
        assert h.is_subclass("Manager", OBJECT)

    def test_not_symmetric(self, h):
        assert not h.is_subclass("Person", "Employee")

    def test_unrelated(self, h):
        assert not h.is_subclass("Dog", "Person")
        assert not h.is_subclass("Person", "Dog")


class TestTypeSubtyping:
    def test_primitives_only_reflexive(self, h):
        assert h.subtype(INT, INT)
        assert not h.subtype(INT, BOOL)
        assert not h.subtype(BOOL, STRING)

    def test_class_rule(self, h):
        assert h.subtype(ClassType("Employee"), ClassType("Person"))
        assert not h.subtype(ClassType("Person"), ClassType("Employee"))

    def test_never_below_everything(self, h):
        for t in (INT, BOOL, ClassType("Dog"), SetType(INT), RecordType.of(a=INT)):
            assert h.subtype(NEVER, t)

    def test_set_covariance(self, h):
        assert h.subtype(SetType(ClassType("Employee")), SetType(ClassType("Person")))
        assert not h.subtype(SetType(ClassType("Person")), SetType(ClassType("Employee")))

    def test_empty_set_type_below_all_sets(self, h):
        assert h.subtype(SetType(NEVER), SetType(RecordType.of(a=INT)))

    def test_record_depth(self, h):
        sub = RecordType.of(who=ClassType("Employee"), n=INT)
        sup = RecordType.of(who=ClassType("Person"), n=INT)
        assert h.subtype(sub, sup)
        assert not h.subtype(sup, sub)

    def test_record_same_labels_same_order_required(self, h):
        a = RecordType.of(x=INT, y=INT)
        b = RecordType.of(y=INT, x=INT)
        assert not h.subtype(a, b)

    def test_record_width_off_by_default(self, h):
        wide = RecordType.of(x=INT, y=INT)
        narrow = RecordType.of(x=INT)
        assert not h.subtype(wide, narrow)

    def test_record_width_flag(self, h):
        """Note 3's extension, behind the flag."""
        wide = RecordType.of(x=ClassType("Employee"), y=INT)
        narrow = RecordType.of(x=ClassType("Person"))
        assert h.subtype(wide, narrow, width_records=True)
        assert not h.subtype(narrow, wide, width_records=True)

    def test_func_contravariance(self, h):
        f = FuncType((ClassType("Person"),), ClassType("Employee"))
        g = FuncType((ClassType("Employee"),), ClassType("Person"))
        assert h.subtype(f, g)
        assert not h.subtype(g, f)

    def test_partial_order_on_samples(self, h):
        """≤ is reflexive, transitive, antisymmetric on a sample set."""
        samples = [
            INT,
            BOOL,
            ClassType("Person"),
            ClassType("Employee"),
            ClassType("Manager"),
            SetType(ClassType("Person")),
            SetType(ClassType("Employee")),
            RecordType.of(a=ClassType("Person")),
            RecordType.of(a=ClassType("Employee")),
            NEVER,
        ]
        for a in samples:
            assert h.subtype(a, a)
            for b in samples:
                for c in samples:
                    if h.subtype(a, b) and h.subtype(b, c):
                        assert h.subtype(a, c)
                if h.subtype(a, b) and h.subtype(b, a):
                    assert a == b


class TestLub:
    def test_class_lub_always_exists(self, h):
        assert h.lub_class("Employee", "Dog") == OBJECT
        assert h.lub_class("Manager", "Employee") == "Employee"
        assert h.lub_class("Manager", "Person") == "Person"

    def test_lub_equal_types(self, h):
        assert h.lub(INT, INT) == INT

    def test_lub_primitives_none(self, h):
        assert h.lub(INT, BOOL) is None
        assert h.lub(STRING, INT) is None

    def test_lub_classes(self, h):
        assert h.lub(ClassType("Manager"), ClassType("Employee")) == ClassType(
            "Employee"
        )

    def test_lub_never_is_identity(self, h):
        assert h.lub(NEVER, SetType(INT)) == SetType(INT)
        assert h.lub(ClassType("Dog"), NEVER) == ClassType("Dog")

    def test_lub_sets_pointwise(self, h):
        assert h.lub(
            SetType(ClassType("Employee")), SetType(ClassType("Manager"))
        ) == SetType(ClassType("Employee"))

    def test_lub_records_pointwise(self, h):
        a = RecordType.of(p=ClassType("Employee"))
        b = RecordType.of(p=ClassType("Dog"))
        assert h.lub(a, b) == RecordType.of(p=ClassType(OBJECT))

    def test_lub_records_label_mismatch(self, h):
        assert h.lub(RecordType.of(p=INT), RecordType.of(q=INT)) is None


class TestWellFormedness:
    def test_primitives_ok(self, h):
        check_type_well_formed(INT, h)

    def test_known_class_ok(self, h):
        check_type_well_formed(SetType(ClassType("Dog")), h)

    def test_unknown_class_rejected(self, h):
        with pytest.raises(SchemaError, match="unknown class"):
            check_type_well_formed(RecordType.of(x=ClassType("Ghost")), h)


class TestMemoization:
    """subtype/lub are memoized per hierarchy; semantics unchanged.

    A hierarchy is immutable once built (schema edits build a new
    Schema, hence a new hierarchy), so the memos can never go stale.
    """

    def test_subtype_memo_populated_and_consistent(self, h):
        s, t = SetType(ClassType("Manager")), SetType(ClassType("Person"))
        first = h.subtype(s, t)
        assert (s, t, False) in h._subtype_memo
        assert h.subtype(s, t) is first is True

    def test_negative_results_memoized(self, h):
        assert not h.subtype(INT, BOOL)
        assert h._subtype_memo[(INT, BOOL, False)] is False
        assert not h.subtype(INT, BOOL)

    def test_width_flag_keys_separately(self, h):
        a = RecordType.of(x=INT, y=BOOL)
        b = RecordType.of(x=INT)
        assert h.subtype(a, b, width_records=True)
        assert not h.subtype(a, b)  # depth-only: labels must match

    def test_lub_memoizes_none(self, h):
        assert h.lub(INT, BOOL) is None
        assert (INT, BOOL) in h._lub_memo
        assert h.lub(INT, BOOL) is None  # served from the memo

    def test_is_subclass_memoized(self, h):
        assert h.is_subclass("Manager", "Person")
        assert h._subclass_memo[("Manager", "Person")] is True
        assert not h.is_subclass("Dog", "Person")
        assert h._subclass_memo[("Dog", "Person")] is False

    def test_memos_do_not_affect_equality(self):
        a = ClassHierarchy({"Person": OBJECT})
        b = ClassHierarchy({"Person": OBJECT})
        a.subtype(ClassType("Person"), ClassType(OBJECT))
        assert a == b  # memo state is not part of the dataclass value
