"""Tests for the flight recorder (repro.obs.flight)."""

import json
import os

import pytest

from repro.errors import TransientFault
from repro.obs.flight import DUMP_FILE, FlightRecorder, RECORDER, configure
from repro.resilience.faults import FaultPlan, FaultRule, inject


@pytest.fixture(autouse=True)
def clean_global_recorder():
    RECORDER.clear()
    yield
    RECORDER.clear()


class TestRing:
    def test_records_in_order_with_sequence_numbers(self):
        fr = FlightRecorder(capacity=8)
        fr.record("a", x=1)
        fr.record("b", x=2)
        evs = fr.events()
        assert [e["category"] for e in evs] == ["a", "b"]
        assert [e["seq"] for e in evs] == [1, 2]
        assert all("t" in e for e in evs)

    def test_overflow_drops_oldest_and_counts(self):
        fr = FlightRecorder(capacity=3)
        for i in range(5):
            fr.record("ev", i=i)
        evs = fr.events()
        assert [e["i"] for e in evs] == [2, 3, 4]
        assert fr.stats()["dropped"] == 2
        assert fr.stats()["recorded"] == 5

    def test_disabled_recorder_is_inert(self):
        fr = FlightRecorder(capacity=4)
        fr.enabled = False
        fr.record("ev")
        assert fr.events() == []
        assert fr.crash_dump("why", directory="/nonexistent") is None

    def test_clear_resets_everything(self):
        fr = FlightRecorder(capacity=2)
        fr.record("a")
        fr.record("b")
        fr.record("c")
        fr.clear()
        st = fr.stats()
        assert st["buffered"] == st["recorded"] == st["dropped"] == 0


class TestDump:
    def test_dump_writes_header_plus_events(self, tmp_path):
        fr = FlightRecorder(capacity=4)
        fr.record("commit", effect="{A(C)}")
        dest = str(tmp_path / "out.jsonl")
        fr.dump(dest, reason="test")
        lines = [json.loads(l) for l in open(dest, encoding="utf-8")]
        assert lines[0]["category"] == "flight-header"
        assert lines[0]["reason"] == "test"
        assert lines[0]["events"] == 1
        assert lines[1]["category"] == "commit"

    def test_crash_dump_appends_terminal_crash_event(self, tmp_path):
        fr = FlightRecorder(capacity=4)
        fr.record("before")
        path = fr.crash_dump(
            "boom", error=ValueError("bad"), directory=str(tmp_path)
        )
        assert path == str(tmp_path / DUMP_FILE)
        lines = [json.loads(l) for l in open(path, encoding="utf-8")]
        last = lines[-1]
        assert last["category"] == "crash"
        assert last["reason"] == "boom"
        assert last["error"] == "ValueError: bad"

    def test_crash_dump_without_directory_is_a_noop(self):
        fr = FlightRecorder(capacity=4)
        assert fr.dump_dir is None or fr.dump_dir
        fr.dump_dir = None
        assert fr.crash_dump("boom") is None
        assert fr.stats()["dumps"] == 0

    def test_crash_dump_swallows_os_errors(self, tmp_path):
        fr = FlightRecorder(capacity=4)
        missing = str(tmp_path / "no" / "such" / "dir")
        assert fr.crash_dump("boom", directory=missing) is None
        assert fr.stats()["dump_errors"] == 1

    def test_dump_lines_are_parseable_with_nonstring_payloads(self, tmp_path):
        fr = FlightRecorder(capacity=4)
        fr.record("odd", payload={"nested": (1, 2)}, exc=ValueError("x"))
        dest = str(tmp_path / "odd.jsonl")
        fr.dump(dest)
        for line in open(dest, encoding="utf-8"):
            json.loads(line)  # default=str keeps every line valid JSON


class TestConfigure:
    def test_capacity_change_preserves_recent_events(self):
        configure(capacity=4)
        try:
            for i in range(4):
                RECORDER.record("ev", i=i)
            configure(capacity=2)
            assert [e["i"] for e in RECORDER.events()] == [2, 3]
        finally:
            configure(capacity=512, enabled=True)

    def test_enable_toggle(self):
        configure(enabled=False)
        try:
            RECORDER.record("ev")
            assert RECORDER.events() == []
        finally:
            configure(enabled=True)


class TestPipelineIntegration:
    def test_commit_and_wal_events_reach_the_ring(self, hr_db, tmp_path):
        hr_db.attach_wal(str(tmp_path / "db"))
        RECORDER.clear()
        hr_db.insert("Manager", name="N", age=40, address="X", level=1)
        cats = [e["category"] for e in RECORDER.events()]
        assert "commit" in cats and "wal-append" in cats
        commit = next(
            e for e in RECORDER.events() if e["category"] == "commit"
        )
        assert commit["effect"] == "{A(Manager)}"
        hr_db.close()

    def test_fault_injection_is_recorded(self, hr_db):
        plan = FaultPlan([FaultRule("commit", at=1)])
        with inject(plan):
            with pytest.raises(TransientFault):
                hr_db.run('new Person(name: "x", age: 1, address: "y")')
        cats = [e["category"] for e in RECORDER.events()]
        assert "fault" in cats
        fault = next(
            e for e in RECORDER.events() if e["category"] == "fault"
        )
        assert fault["site"] == "commit"

    def test_wal_fsync_fault_leaves_a_dump_with_the_commit_effect(
        self, hr_db, tmp_path
    ):
        wal_dir = str(tmp_path / "db")
        hr_db.attach_wal(wal_dir)
        plan = FaultPlan([FaultRule("wal.fsync", at=1)])
        with inject(plan):
            with pytest.raises(TransientFault):
                hr_db.insert(
                    "Manager", name="doom", age=9, address="Z", level=2
                )
        dump = os.path.join(wal_dir, DUMP_FILE)
        assert os.path.exists(dump)
        lines = [json.loads(l) for l in open(dump, encoding="utf-8")]
        cats = [l["category"] for l in lines]
        assert cats[-1] == "crash"
        tail = lines[-5:]
        assert any(
            l["category"] == "fault" and l["site"] == "wal.fsync"
            for l in tail
        )
        commits = [l for l in lines if l["category"] == "commit"]
        assert commits and "A(Manager)" in commits[-1]["effect"]
        hr_db.close()

    def test_recovery_leaves_a_replay_postmortem(self, hr_db, tmp_path):
        from repro.db.recovery import recover

        wal_dir = str(tmp_path / "db")
        hr_db.attach_wal(wal_dir)
        hr_db.insert("Manager", name="M", age=33, address="Y", level=1)
        hr_db.close()
        result = recover(wal_dir, attach=False)
        assert result.replayed == 1
        dump = os.path.join(wal_dir, DUMP_FILE)
        lines = [json.loads(l) for l in open(dump, encoding="utf-8")]
        replays = [
            l for l in lines if l["category"] == "recovery-replay"
        ]
        assert replays and replays[-1]["replayed"] == 1

    def test_failed_run_counts_in_qstats(self, hr_db):
        from repro.errors import FuelExhausted
        from repro.resilience.budget import Budget

        with pytest.raises(FuelExhausted):
            hr_db.run(
                "{ p.name | p <- Persons }",
                engine="reduction",
                budget=Budget(max_steps=1),
            )
        assert hr_db._qstats["failures"] == 1
        assert hr_db._qstats["budget_exhausted"] == 1
