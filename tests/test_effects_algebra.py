"""Unit tests for the effect algebra of §4 (repro.effects.algebra)."""

import pytest

from repro.effects.algebra import (
    EMPTY,
    AccessKind,
    Atom,
    Effect,
    add,
    read,
    update,
)


class TestConstruction:
    def test_empty_is_empty(self):
        assert EMPTY.is_empty()
        assert len(EMPTY) == 0

    def test_of_builds_set(self):
        e = Effect.of(read("C"), add("D"))
        assert read("C") in e
        assert add("D") in e
        assert len(e) == 2

    def test_idempotence(self):
        assert Effect.of(read("C"), read("C")) == Effect.of(read("C"))

    def test_union_all(self):
        e = Effect.union_all([Effect.of(read("A")), Effect.of(add("B")), EMPTY])
        assert e == Effect.of(read("A"), add("B"))

    def test_union_all_empty_iterable(self):
        assert Effect.union_all([]) == EMPTY

    def test_atom_str(self):
        assert str(read("C")) == "R(C)"
        assert str(add("C")) == "A(C)"
        assert str(update("C")) == "U(C)"

    def test_effect_str(self):
        assert str(EMPTY) == "∅"
        assert "R(C)" in str(Effect.of(read("C")))


class TestAlgebraLaws:
    """∪ is associative, commutative, idempotent with unit ∅."""

    a = Effect.of(read("A"))
    b = Effect.of(add("B"))
    c = Effect.of(update("C"))

    def test_associative(self):
        assert (self.a | self.b) | self.c == self.a | (self.b | self.c)

    def test_commutative(self):
        assert self.a | self.b == self.b | self.a

    def test_idempotent(self):
        assert self.a | self.a == self.a

    def test_unit(self):
        assert self.a | EMPTY == self.a
        assert EMPTY | self.a == self.a


class TestSubeffect:
    def test_empty_below_everything(self):
        assert EMPTY.subeffect_of(Effect.of(read("C")))
        assert EMPTY <= EMPTY

    def test_inclusion(self):
        small = Effect.of(read("C"))
        big = Effect.of(read("C"), add("C"))
        assert small <= big
        assert not big <= small

    def test_reflexive(self):
        e = Effect.of(read("X"), add("Y"))
        assert e <= e


class TestProjections:
    e = Effect.of(read("A"), add("B"), update("C"), read("B"))

    def test_reads(self):
        assert self.e.reads() == frozenset({"A", "B"})

    def test_adds(self):
        assert self.e.adds() == frozenset({"B"})

    def test_updates(self):
        assert self.e.updates() == frozenset({"C"})

    def test_writes(self):
        assert self.e.writes() == frozenset({"B", "C"})


class TestNonInterference:
    """The paper's nonint(ε) predicate."""

    def test_pure_is_noninterfering(self):
        assert EMPTY.noninterfering()

    def test_read_only_is_noninterfering(self):
        assert Effect.of(read("A"), read("B")).noninterfering()

    def test_add_only_is_noninterfering(self):
        # two adds of the same class commute up to oid bijection
        assert Effect.of(add("A")).noninterfering()

    def test_read_add_different_classes_ok(self):
        assert Effect.of(read("A"), add("B")).noninterfering()

    def test_read_add_same_class_interferes(self):
        # the §1 example's effect: {R(F), A(F)}
        assert not Effect.of(read("F"), add("F")).noninterfering()

    def test_update_always_interferes(self):
        assert not Effect.of(update("C")).noninterfering()


class TestPairwiseInterference:
    """interferes_with: the ⊢″ side condition (Theorem 8)."""

    def test_pure_never_interferes(self):
        assert not EMPTY.interferes_with(Effect.of(read("A"), add("A")))

    def test_reads_never_interfere(self):
        assert not Effect.of(read("A")).interferes_with(Effect.of(read("A")))

    def test_write_vs_read_same_class(self):
        # the §4 intersection example: A(Person) vs R(Person)
        assert Effect.of(add("Person")).interferes_with(Effect.of(read("Person")))
        assert Effect.of(read("Person")).interferes_with(Effect.of(add("Person")))

    def test_add_add_same_class_commutes(self):
        assert not Effect.of(add("A")).interferes_with(Effect.of(add("A")))

    def test_update_update_same_class(self):
        assert Effect.of(update("A")).interferes_with(Effect.of(update("A")))

    def test_update_different_classes_ok(self):
        assert not Effect.of(update("A")).interferes_with(Effect.of(update("B")))

    def test_symmetry(self):
        pairs = [
            (Effect.of(read("A")), Effect.of(add("A"))),
            (Effect.of(update("A")), Effect.of(read("A"))),
            (Effect.of(add("A")), Effect.of(add("A"))),
        ]
        for x, y in pairs:
            assert x.interferes_with(y) == y.interferes_with(x)


class TestIterationOrder:
    def test_iteration_is_sorted(self):
        e = Effect.of(read("Z"), add("A"), update("M"))
        names = [a.cname for a in e]
        assert names == sorted(names)

    def test_hashable(self):
        assert len({EMPTY, Effect.of(read("A")), Effect.of(read("A"))}) == 2
