"""Tests for schema-requirements inference (the paper's citation [23])."""

import pytest

from repro.errors import IOQLTypeError
from repro.lang.parser import parse_query
from repro.model.odl_parser import parse_schema
from repro.model.types import BOOL, INT, STRING, ClassType, RecordType, SetType
from repro.typing.inference import TVar, check_against, infer_requirements

SCHEMA = parse_schema(
    """
    class Person extends Object (extent Persons) {
        attribute string name;
        attribute int age;
        int NetSalary(int rate);
    }
    """
)


def infer(src: str):
    return infer_requirements(parse_query(src))


class TestGroundQueries:
    def test_literals(self):
        assert infer("1 + 2").type == INT
        assert infer("true").type == BOOL
        assert infer('"s"').type == STRING

    def test_set_of_ints(self):
        assert infer("{1, 2}").type == SetType(INT)

    def test_record(self):
        assert infer("struct(a: 1, b: true)").type == RecordType(
            (("a", INT), ("b", BOOL))
        )

    def test_comprehension_ground(self):
        rep = infer("{x + 1 | x <- {1, 2}}")
        assert rep.type == SetType(INT)
        assert not rep.free_idents


class TestFreeIdentifierRequirements:
    def test_generator_source_demands_a_set(self):
        rep = infer("{x + 1 | x <- Employees}")
        assert rep.free_idents["Employees"] == SetType(INT)

    def test_attribute_demand_propagates(self):
        rep = infer("{e.age + 1 | e <- Employees}")
        (src_t,) = rep.free_idents.values()
        assert isinstance(src_t, SetType)
        elem = src_t.elem
        assert isinstance(elem, TVar)
        req = rep.open_requirements[elem.id]
        assert req.fields == {"age": INT}

    def test_method_demand(self):
        rep = infer("{e.NetSalary(100) | e <- Employees}")
        (src_t,) = rep.free_idents.values()
        elem = src_t.elem
        req = rep.open_requirements[elem.id]
        assert "NetSalary" in req.methods
        (params, _result) = req.methods["NetSalary"]
        assert params == (INT,)
        assert req.must_be_object

    def test_field_used_at_two_types_rejected(self):
        with pytest.raises(IOQLTypeError):
            infer("{ e.age + size(e.age) | e <- Es }")

    def test_consistent_multi_use(self):
        rep = infer("{ struct(a: e.age, b: e.age < 3) | e <- Es }")
        (src_t,) = rep.free_idents.values()
        req = rep.open_requirements[src_t.elem.id]
        assert req.fields["age"] == INT

    def test_equality_links_identifiers(self):
        rep = infer("x = y + 1")
        assert rep.free_idents == {"x": INT, "y": INT}

    def test_object_identity_requirement(self):
        rep = infer("a == b")
        for t in rep.free_idents.values():
            assert isinstance(t, TVar)
            assert rep.open_requirements[t.id].must_be_object


class TestClassRequirements:
    def test_new_pins_attributes(self):
        rep = infer('(new Person(name: "x", age: 3)).age')
        assert rep.type == INT
        assert rep.class_attrs["Person"]["name"] == STRING
        assert rep.class_attrs["Person"]["age"] == INT

    def test_cast_pins_class(self):
        rep = infer("(Person) p")
        assert rep.type == ClassType("Person")
        assert rep.free_idents["p"] == ClassType("Person")

    def test_attribute_through_cast(self):
        rep = infer("((Person) p).age + 1")
        assert rep.class_attrs["Person"]["age"] == INT

    def test_method_through_cast(self):
        rep = infer("((Person) p).NetSalary(5)")
        assert "NetSalary" in rep.class_methods["Person"]


class TestCheckAgainstSchema:
    def test_satisfied(self):
        rep = infer('((Person) p).age + ((Person) p).NetSalary(1)')
        assert check_against(rep, SCHEMA) == []

    def test_missing_class(self):
        rep = infer('new Ghost(x: 1) == new Ghost(x: 2)')
        assert any("Ghost" in p for p in check_against(rep, SCHEMA))

    def test_missing_attribute(self):
        rep = infer("((Person) p).salary")
        assert any("salary" in p for p in check_against(rep, SCHEMA))

    def test_wrong_attribute_type(self):
        rep = infer("((Person) p).name + 1")
        assert any("name" in p for p in check_against(rep, SCHEMA))

    def test_missing_method(self):
        rep = infer("((Person) p).fire()")
        assert any("fire" in p for p in check_against(rep, SCHEMA))


class TestAgreementWithFigure1:
    """Inference on fully-annotated-compatible queries agrees with the
    checker: anything the checker accepts, inference finds requirements
    the schema satisfies."""

    @pytest.mark.parametrize(
        "src",
        [
            "{ p.name | p <- Persons, p.age < 40 }",
            "{ struct(n: p.name, k: p.NetSalary(10)) | p <- Persons }",
            "size(Persons) + 1",
            "exists p in Persons : p.age = 30",
        ],
    )
    def test_inferred_requirements_satisfied(self, src):
        from repro.typing.checker import check_query
        from repro.typing.context import TypeContext

        q = parse_query(src, schema=SCHEMA)
        check_query(TypeContext(SCHEMA), q)  # Figure 1 accepts
        # inference runs on the schema-less parse
        rep = infer_requirements(parse_query(src))
        assert check_against(rep, SCHEMA) == []

    def test_ill_typed_rejected_by_both(self):
        with pytest.raises(IOQLTypeError):
            infer("1 + true")

    def test_describe_is_readable(self):
        rep = infer("{ e.age | e <- Employees }")
        text = rep.describe()
        assert "Employees" in text
        assert "age" in text
