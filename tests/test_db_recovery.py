"""Crash recovery: the prefix-consistency contract, certified by sweep.

The headline experiment (`TestCrashPointSweep`) builds a durable
database with 50+ journalled commits — delta records, define records
and ``U``-effect full records — remembering the exact (EE, OE, defs)
after every one.  It then simulates a crash at **every record boundary
and intra-record byte offset** of the log (every single byte under
``REPRO_SWEEP_FULL=1``; boundaries plus deterministic samples in quick
mode) by truncating — or tearing, i.e. truncating and appending
garbage — a copy of the log, recovering from the copy, and asserting
the result is **exactly** the state after the longest complete record
prefix.  Not ∼-equivalent: byte-identical oids, extents and records,
because replay is physical.

A bit-flip sweep asserts the other half of the contract: a corrupted
middle of the log either recovers to a (shorter) prefix or raises
loudly — no crash point and no flipped bit ever yields a state that
some prefix of the committed sequence cannot explain.
"""

import os
import random
import shutil
import struct
import zlib

import pytest

from repro.db import recovery, wal
from repro.db.database import Database
from repro.db.persistence import PersistenceError
from repro.db.recovery import apply_record, recover
from repro.db.wal import MAGIC, WalError
from repro.errors import TransientFault
from repro.lang.ast import IntLit, MethodCall, OidRef
from repro.methods.ast import AccessMode
from repro.resilience import faults as fault_injection
from repro.resilience.faults import FaultPlan, FaultRule, inject

FULL_SWEEP = os.environ.get("REPRO_SWEEP_FULL", "") not in ("", "0")

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
class Team extends Object (extent Teams) {
    attribute string tag;
}
"""

ACCOUNT_ODL = """
class Account extends Object (extent Accounts) {
    attribute int balance;
    int deposit(int amount) effect U(Account) {
        this.balance := this.balance + amount;
        return this.balance;
    }
}
"""


def _state(db):
    return (db.ee, db.oe, tuple(sorted(db.definitions)))


def _assert_state(db, expected, label):
    ee, oe, defs = expected
    assert db.ee == ee, f"{label}: extents diverge"
    assert db.oe == oe, f"{label}: objects diverge"
    assert tuple(sorted(db.definitions)) == defs, f"{label}: defs diverge"


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    yield
    fault_injection.uninstall()


# ---------------------------------------------------------------------------
# Basic open / recover lifecycle
# ---------------------------------------------------------------------------


class TestOpen:
    def test_open_without_checkpoint_or_odl_raises(self, tmp_path):
        with pytest.raises(PersistenceError, match="no checkpoint"):
            Database.open(str(tmp_path / "fresh"))

    def test_open_creates_then_reopens(self, tmp_path):
        d = str(tmp_path / "db")
        db = Database.open(d, ODL)
        db.run('new Person(name: "Ada", age: 36)')
        db.close()
        db2 = Database.open(d)
        assert len(db2.extent("Persons")) == 1
        # the reopened database keeps journalling
        db2.run('new Person(name: "Bob", age: 41)')
        db2.close()
        db3 = Database.open(d)
        assert len(db3.extent("Persons")) == 2
        db3.close()

    def test_recover_without_checkpoint_raises(self, tmp_path):
        with pytest.raises(PersistenceError, match="no checkpoint"):
            recover(str(tmp_path))

    def test_read_only_queries_append_nothing(self, tmp_path):
        d = str(tmp_path / "db")
        db = Database.open(d, ODL)
        db.run('new Person(name: "Ada", age: 36)')
        size = db.wal.size()
        db.run("{ p.name | p <- Persons }")
        db.run("1 + 2")
        assert db.wal.size() == size
        db.close()

    def test_checkpoint_folds_and_skips_on_stale_log(self, tmp_path):
        # the crash window between writing a checkpoint and resetting
        # the log: folded records must be skipped, not replayed twice
        d = str(tmp_path / "db")
        db = Database.open(d, ODL)
        for i in range(5):
            db.run(f'new Person(name: "p{i}", age: {20 + i})')
        stale = open(recovery.wal_path(d), "rb").read()
        db.checkpoint()
        for i in range(2):
            db.run(f'new Team(tag: "t{i}")')
        fresh = open(recovery.wal_path(d), "rb").read()
        expected = _state(db)
        db.close()
        # stitch the pre-checkpoint records back in front, as if the
        # reset never reached the disk
        with open(recovery.wal_path(d), "wb") as fh:
            fh.write(MAGIC + stale[len(MAGIC):] + fresh[len(MAGIC):])
        res = recover(d, attach=False)
        assert res.skipped == 5 and res.replayed == 2
        _assert_state(res.db, expected, "checkpoint crash window")

    def test_recovered_database_resumes_oid_supply_past_the_log(self, tmp_path):
        d = str(tmp_path / "db")
        db = Database.open(d, ODL)
        db.run('new Person(name: "Ada", age: 36)')
        db.run('new Person(name: "Bob", age: 41)')
        old = set(db.oe.oids())
        db.close()
        db2 = Database.open(d)
        db2.run('new Person(name: "Eve", age: 50)')
        fresh = set(db2.oe.oids()) - old
        assert len(fresh) == 1 and fresh.isdisjoint(old)
        db2.close()


# ---------------------------------------------------------------------------
# The crash-point sweep
# ---------------------------------------------------------------------------


def _build_history(directory):
    """≥50 journalled commits; returns the state after each record.

    ``states[k]`` is the exact state a recovery that sees the first
    ``k`` log records must reproduce (``states[0]`` = the initial
    checkpoint).  The history mixes the three record kinds: ``delta``
    (inserts), ``define``, and ``full`` (a snapshot restore).
    """
    db = Database.open(directory, ODL)
    states = [_state(db)]
    rng = random.Random(9_2003)
    snap = None
    for i in range(52):
        roll = rng.random()
        if i == 20:
            snap = db.snapshot()
            continue  # snapshots are not commits: no record
        if i == 30:
            db.restore(snap)  # full record (unattributed change)
        elif roll < 0.1:
            db.define(
                f"define q{i}() as {{ p | p <- Persons, p.age > {i} }};"
            )
        elif roll < 0.55:
            db.run(f'new Person(name: "p{i}", age: {18 + i % 40})')
        else:
            db.run(f'new Team(tag: "t{i}")')
        states.append(_state(db))
    db.close()
    return states


def _record_boundaries(raw):
    """Byte offsets at which the log is a complete record prefix."""
    boundaries = [len(MAGIC)]
    off = len(MAGIC)
    frame = struct.Struct(">II")
    while off < len(raw):
        length, _ = frame.unpack_from(raw, off)
        off += frame.size + length
        boundaries.append(off)
    assert off == len(raw)
    return boundaries


def _prefix_for(cut, boundaries):
    """How many complete records a log cut at byte ``cut`` retains."""
    return max(k for k, b in enumerate(boundaries) if b <= cut)


def _sweep_cuts(raw, boundaries):
    """Every byte in full mode; boundaries + per-record samples in quick."""
    if FULL_SWEEP:
        return list(range(len(MAGIC), len(raw) + 1))
    cuts = set(boundaries)
    rng = random.Random(2003)
    for start, end in zip(boundaries, boundaries[1:]):
        # the frame header, one payload byte, and the last byte of the
        # record are the interesting tears; plus two random offsets
        cuts.update((start + 1, start + 9, end - 1))
        cuts.update(rng.randrange(start + 1, end) for _ in range(2))
    return sorted(c for c in cuts if len(MAGIC) <= c <= len(raw))


def _crash_copy(src_dir, dst_dir, log_bytes):
    os.makedirs(dst_dir, exist_ok=True)
    shutil.copy(
        recovery.checkpoint_path(src_dir), recovery.checkpoint_path(dst_dir)
    )
    with open(recovery.wal_path(dst_dir), "wb") as fh:
        fh.write(log_bytes)


class TestCrashPointSweep:
    @pytest.fixture(scope="class")
    def history(self, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("wal-sweep"))
        states = _build_history(directory)
        raw = open(recovery.wal_path(directory), "rb").read()
        boundaries = _record_boundaries(raw)
        assert len(boundaries) - 1 == len(states) - 1 >= 50
        return directory, states, raw, boundaries

    def test_history_is_long_enough(self, history):
        _, states, _, boundaries = history
        assert len(boundaries) - 1 >= 50  # the acceptance floor

    def test_truncation_at_every_crash_point_recovers_a_prefix(
        self, history, tmp_path
    ):
        directory, states, raw, boundaries = history
        crash_dir = str(tmp_path / "crash")
        for cut in _sweep_cuts(raw, boundaries):
            _crash_copy(directory, crash_dir, raw[:cut])
            res = recover(crash_dir, attach=False)
            k = _prefix_for(cut, boundaries)
            assert res.torn == (cut not in boundaries)
            _assert_state(res.db, states[k], f"truncated at byte {cut}")

    def test_torn_write_at_every_crash_point_recovers_a_prefix(
        self, history, tmp_path
    ):
        # a torn write leaves garbage, not silence, after the last good
        # record — recovery must cut it off just the same
        directory, states, raw, boundaries = history
        crash_dir = str(tmp_path / "torn")
        rng = random.Random(5)
        cuts = _sweep_cuts(raw, boundaries)
        if not FULL_SWEEP:
            cuts = cuts[:: max(1, len(cuts) // 80)]
        for cut in cuts:
            garbage = bytes(rng.randrange(256) for _ in range(11))
            _crash_copy(directory, crash_dir, raw[:cut] + garbage)
            res = recover(crash_dir, attach=False)
            assert res.torn
            k = _prefix_for(cut, boundaries)
            _assert_state(res.db, states[k], f"torn write at byte {cut}")

    def test_bit_flips_recover_a_prefix_or_raise(self, history, tmp_path):
        directory, states, raw, boundaries = history
        crash_dir = str(tmp_path / "flip")
        rng = random.Random(7)
        if FULL_SWEEP:
            positions = range(len(raw))
        else:
            positions = sorted(
                rng.sample(range(len(raw)), min(200, len(raw)))
            )
        for pos in positions:
            flipped = bytearray(raw)
            flipped[pos] ^= 1 << rng.randrange(8)
            _crash_copy(directory, crash_dir, bytes(flipped))
            try:
                res = recover(crash_dir, attach=False)
            except (WalError, PersistenceError):
                continue  # loud failure is within the contract
            k = _prefix_for(pos, boundaries)
            _assert_state(
                res.db, states[k], f"bit flip at byte {pos}"
            )

    def test_recovered_prefix_answers_queries(self, history, tmp_path):
        # a recovered prefix is a *working* database, not just equal envs
        directory, states, raw, boundaries = history
        crash_dir = str(tmp_path / "alive")
        cut = boundaries[len(boundaries) // 2]
        _crash_copy(directory, crash_dir, raw[:cut])
        db = recover(crash_dir, attach=False).db
        names = db.run("{ p.name | p <- Persons }").value
        assert len(names.items) == len(db.extent("Persons"))


# ---------------------------------------------------------------------------
# Idempotence: recovery may itself crash
# ---------------------------------------------------------------------------


class TestRecoveryIdempotence:
    def _torn_directory(self, tmp_path):
        d = str(tmp_path / "db")
        db = Database.open(d, ODL)
        for i in range(6):
            db.run(f'new Person(name: "p{i}", age: {30 + i})')
        db.close()
        path = recovery.wal_path(d)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 3)
        return d

    def test_recovering_twice_reaches_the_same_state(self, tmp_path):
        d = self._torn_directory(tmp_path)
        first = recover(d, attach=False)
        assert first.torn
        second = recover(d, attach=False)
        assert not second.torn  # the tail was repaired on the first run
        _assert_state(second.db, _state(first.db), "second recovery")

    def test_crash_during_replay_then_clean_recovery(self, tmp_path):
        d = self._torn_directory(tmp_path)
        plan = FaultPlan([FaultRule("recovery.replay", at=3)])
        with inject(plan):
            with pytest.raises(TransientFault):
                recover(d, attach=False)
        res = recover(d, attach=False)
        assert not res.torn  # repair preceded the crashed replay
        assert res.replayed == 5
        assert len(res.db.extent("Persons")) == 5

    def test_repeated_crashes_converge(self, tmp_path):
        d = self._torn_directory(tmp_path)
        for at in (1, 2, 4):
            with inject(FaultPlan([FaultRule("recovery.replay", at=at)])):
                with pytest.raises(TransientFault):
                    recover(d, attach=False)
            fault_injection.uninstall()
        res = recover(d, attach=False)
        assert len(res.db.extent("Persons")) == 5


# ---------------------------------------------------------------------------
# U-effect commits log full records (the §5 coarsening)
# ---------------------------------------------------------------------------


class TestUpdateCommits:
    def test_update_commit_is_a_full_record(self, tmp_path):
        d = str(tmp_path / "bank")
        db = Database.open(d, ACCOUNT_ODL, method_mode=AccessMode.EFFECTFUL)
        db.run("new Account(balance: 100)")
        (a,) = sorted(db.extent("Accounts"))
        db.run(MethodCall(OidRef(a), "deposit", (IntLit(25),)))
        records = wal.read_records(recovery.wal_path(d))
        assert [r["kind"] for r in records] == ["delta", "full"]
        expected = _state(db)
        db.close()
        res = recover(d, attach=False)
        _assert_state(res.db, expected, "after update replay")
        balance = res.db.run(f"{a}.balance").value
        assert balance == IntLit(125)

    def test_update_crash_loses_only_the_update(self, tmp_path):
        d = str(tmp_path / "bank")
        db = Database.open(d, ACCOUNT_ODL, method_mode=AccessMode.EFFECTFUL)
        db.run("new Account(balance: 100)")
        (a,) = sorted(db.extent("Accounts"))
        pre_update = _state(db)
        db.run(MethodCall(OidRef(a), "deposit", (IntLit(25),)))
        db.close()
        path = recovery.wal_path(d)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 1)
        res = recover(d, attach=False)
        _assert_state(res.db, pre_update, "torn update record")


# ---------------------------------------------------------------------------
# Semantic validation of checksummed records
# ---------------------------------------------------------------------------


class TestApplyRecordValidation:
    def _db(self):
        return Database.from_odl(ODL)

    def test_unknown_kind_raises(self):
        with pytest.raises(WalError, match="unknown kind"):
            apply_record(self._db(), {"lsn": 1, "kind": "mystery"})

    def test_unknown_class_raises(self):
        rec = {
            "lsn": 1,
            "kind": "delta",
            "objects": {"@Alien_0": {"class": "Alien", "attrs": {}}},
            "extents": {},
        }
        with pytest.raises(WalError, match="unknown class"):
            apply_record(self._db(), rec)

    def test_wrong_attribute_set_raises(self):
        rec = {
            "lsn": 1,
            "kind": "delta",
            "objects": {
                "@Person_0": {
                    "class": "Person",
                    "attrs": {"name": {"t": "str", "v": "x"}},
                }
            },
            "extents": {},
        }
        with pytest.raises(WalError, match="attribute set"):
            apply_record(self._db(), rec)

    def test_extent_with_missing_object_raises(self):
        rec = {
            "lsn": 1,
            "kind": "delta",
            "objects": {},
            "extents": {"Persons": ["@Person_9"]},
        }
        with pytest.raises(WalError, match="missing object"):
            apply_record(self._db(), rec)

    def test_unknown_extent_raises(self):
        rec = {"lsn": 1, "kind": "delta", "objects": {}, "extents": {"Ufos": []}}
        with pytest.raises(WalError, match="unknown extent"):
            apply_record(self._db(), rec)

    def test_non_monotone_lsns_raise(self, tmp_path):
        d = str(tmp_path / "db")
        db = Database.open(d, ODL)
        db.run('new Person(name: "Ada", age: 36)')
        db.close()
        path = recovery.wal_path(d)
        raw = open(path, "rb").read()
        with open(path, "wb") as fh:  # duplicate the record: lsn 1, 1
            fh.write(raw + raw[len(MAGIC):])
        with pytest.raises(WalError, match="non-monotone"):
            recover(d, attach=False)
