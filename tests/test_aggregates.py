"""Tests for the sum aggregate (the total aggregate extension)."""

import pytest

from repro.db.database import Database
from repro.errors import IOQLTypeError
from repro.lang.parser import parse_query
from repro.lang.pprint import pretty
from repro.model.types import INT

ODL = """
class Item extends Object (extent Items) {
    attribute int price;
    attribute int qty;
}
"""


@pytest.fixture
def db():
    d = Database.from_odl(ODL)
    d.insert("Item", price=10, qty=2)
    d.insert("Item", price=5, qty=1)
    d.insert("Item", price=10, qty=4)
    return d


class TestTyping:
    def test_sum_of_int_collections(self, db):
        assert db.typecheck("sum({1, 2})") == INT
        assert db.typecheck("sum(bag(1, 2))") == INT
        assert db.typecheck("sum(list(1, 2))") == INT
        assert db.typecheck("sum({})") == INT

    def test_sum_of_comprehension(self, db):
        assert db.typecheck("sum({ i.price | i <- Items })") == INT

    def test_sum_of_strings_rejected(self, db):
        with pytest.raises(IOQLTypeError, match="integer elements"):
            db.typecheck('sum({"a"})')

    def test_sum_of_scalar_rejected(self, db):
        with pytest.raises(IOQLTypeError, match="collection"):
            db.typecheck("sum(1)")

    def test_effect_passthrough(self, db):
        assert "Item" in db.effect_of("sum({ i.price | i <- Items })").reads()


class TestSemantics:
    def test_sum_empty_is_zero(self, db):
        """Totality — the property that keeps Theorem 3 intact."""
        assert db.run("sum({})").python() == 0
        assert db.run("sum(bag())").python() == 0
        assert db.run("sum(list())").python() == 0

    def test_set_sum_deduplicates(self, db):
        # {10, 5, 10} is the set {5, 10}
        assert db.run("sum({ i.price | i <- Items })").python() == 15

    def test_bag_sum_counts_duplicates(self, db):
        """The textbook reason query engines need bags: SUM over a
        projection must not collapse duplicates."""
        # prices as a bag via per-item records, summed with multiplicity
        q = (
            "sum({ struct(id: i, p: i.price).p | i <- Items }) "
        )
        # heads are deduped records → projecting p loses dups anyway;
        # the honest formulation sums a bag literal of the values:
        assert db.run("sum(bag(10, 5, 10))").python() == 25
        assert db.run("sum({10, 5, 10})").python() == 15

    def test_list_sum(self, db):
        assert db.run("sum(list(1, 1, 1))").python() == 3

    def test_sum_in_expression(self, db):
        assert db.run("sum({1, 2}) * 10").python() == 30

    def test_engines_agree(self, db):
        for src in ["sum(bag(1, 2, 2))", "sum({ i.qty | i <- Items })"]:
            a = db.run(src, commit=False).python()
            b = db.run(src, commit=False, engine="bigstep").python()
            assert a == b

    def test_soundness_with_sum(self, db):
        from repro.metatheory.theorems import (
            check_progress,
            check_subject_reduction,
        )

        q = db.parse("sum({ i.price + i.qty | i <- Items }) + sum(bag(1, 1))")
        assert check_subject_reduction(db.machine, db.ee, db.oe, q)
        assert check_progress(db.machine, db.ee, db.oe, q)


class TestSyntaxAndTools:
    def test_roundtrip(self):
        q = parse_query("sum(bag(1, 2)) + sum({})")
        assert parse_query(pretty(q)) == q

    def test_trace_rule_name(self, db):
        from repro.semantics.tracing import trace

        t = trace(db.machine, db.ee, db.oe, db.parse("sum({1, 2})"))
        assert "Sum" in t.rules_used()

    def test_optimizer_leaves_sum_sound(self, db):
        from repro.optimizer.planner import optimize

        q = db.parse("sum({ i.price | i <- Items, 1 = 1 })")
        res = optimize(db, q)
        assert db.run(q, commit=False).value == db.run(res.query, commit=False).value
