"""Unit tests for the shared lexer (repro.lang.lexer)."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import Token, TokenStream, tokenize


def kinds(src: str) -> list[str]:
    return [t.kind for t in tokenize(src)]


class TestBasicTokens:
    def test_integers(self):
        toks = tokenize("12 345")
        assert [(t.kind, t.text) for t in toks[:-1]] == [("INT", "12"), ("INT", "345")]

    def test_identifiers_vs_keywords(self):
        toks = tokenize("foo select Person")
        assert [t.kind for t in toks[:-1]] == ["IDENT", "select", "IDENT"]

    def test_string_literal(self):
        toks = tokenize('"hello world"')
        assert toks[0].kind == "STRING"
        assert toks[0].text == "hello world"

    def test_string_escapes(self):
        toks = tokenize(r'"a\"b\\c\nd"')
        assert toks[0].text == 'a"b\\c\nd'

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated string"):
            tokenize('"abc')

    def test_eof_always_present(self):
        assert tokenize("")[-1].kind == "EOF"
        assert tokenize("x")[-1].kind == "EOF"


class TestOperators:
    def test_multichar_maximal_munch(self):
        assert kinds("== <= >= <- :=")[:-1] == ["==", "<=", ">=", "<-", ":="]

    def test_eq_vs_eqeq(self):
        assert kinds("= ==")[:-1] == ["=", "=="]

    def test_arrow_vs_lt(self):
        # the documented quirk: `<-` wins over `<` `-`
        assert kinds("x <- y")[:-1] == ["IDENT", "<-", "IDENT"]
        assert kinds("x < - y")[:-1] == ["IDENT", "<", "-", "IDENT"]

    def test_punctuation(self):
        assert kinds("( ) { } . , ; : |")[:-1] == list("(){}.,;:|")

    def test_unknown_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("a $ b")


class TestComments:
    def test_line_comment(self):
        assert kinds("1 // comment\n2")[:-1] == ["INT", "INT"]

    def test_block_comment(self):
        assert kinds("1 /* multi\nline */ 2")[:-1] == ["INT", "INT"]

    def test_unterminated_block(self):
        with pytest.raises(ParseError, match="unterminated block"):
            tokenize("1 /* oops")


class TestPositions:
    def test_line_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_error_carries_position(self):
        try:
            tokenize("ab\n cd $")
        except ParseError as exc:
            assert exc.line == 2
            assert exc.column == 5
        else:
            pytest.fail("expected ParseError")


class TestTokenStream:
    def test_peek_does_not_consume(self):
        ts = TokenStream.of("a b")
        assert ts.peek().text == "a"
        assert ts.peek().text == "a"

    def test_peek_ahead(self):
        ts = TokenStream.of("a b c")
        assert ts.peek(2).text == "c"
        assert ts.peek(99).kind == "EOF"

    def test_next_consumes(self):
        ts = TokenStream.of("a b")
        assert ts.next().text == "a"
        assert ts.next().text == "b"
        assert ts.next().kind == "EOF"
        assert ts.next().kind == "EOF"  # EOF is sticky

    def test_expect_success(self):
        ts = TokenStream.of("define x")
        assert ts.expect("define").text == "define"

    def test_expect_failure(self):
        ts = TokenStream.of("define")
        with pytest.raises(ParseError, match="expected 'IDENT'"):
            ts.expect("IDENT")

    def test_accept(self):
        ts = TokenStream.of(", x")
        assert ts.accept(",") is not None
        assert ts.accept(",") is None
        assert ts.peek().text == "x"

    def test_at(self):
        ts = TokenStream.of("{ }")
        assert ts.at("{")
        assert ts.at("{", "}")
        assert not ts.at("}")

    def test_at_eof(self):
        ts = TokenStream.of("")
        assert ts.at_eof()
