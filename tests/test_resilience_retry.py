"""Statically-gated retry: a failed query is replayed only when the
paper's analyses prove the replay indistinguishable from a first run."""

import pytest

from repro.db.database import Database
from repro.errors import IOQLTypeError, TransientFault
from repro.methods.ast import AccessMode
from repro.resilience.faults import FaultPlan, FaultRule, inject
from repro.resilience.retry import (
    ReplayDecision,
    RetryExhausted,
    RetryPolicy,
    replay_decision,
)

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
}
"""

ACCOUNT_ODL = """
class Account extends Object (extent Accounts) {
    attribute int balance;
    int deposit(int amount) effect U(Account) {
        this.balance := this.balance + amount;
        return this.balance;
    }
}
"""


@pytest.fixture
def db() -> Database:
    d = Database.from_odl(ODL)
    d.insert("Person", name="Ada")
    return d


def noop_sleep(_delay: float) -> None:
    pass


def quiet_policy(**kw) -> RetryPolicy:
    kw.setdefault("sleep", noop_sleep)
    return RetryPolicy.seeded(0, **kw)


class TestReplayDecision:
    def test_read_only_deterministic_is_safe(self, db):
        d = replay_decision(db, "{ p.name | p <- Persons }")
        assert d.safe and "read-only" in d.reason

    def test_decision_is_truthy(self, db):
        assert bool(replay_decision(db, "1 + 2"))
        assert not bool(ReplayDecision(False, "no"))

    def test_write_without_rollback_is_refused(self, db):
        d = replay_decision(db, 'new Person(name: "x")', rolled_back=False)
        assert not d.safe
        assert "double-apply" in d.reason

    def test_write_with_rollback_is_safe(self, db):
        d = replay_decision(db, 'new Person(name: "x")', rolled_back=True)
        assert d.safe and "rolled back" in d.reason

    def test_nondeterministic_is_refused_even_when_rolled_back(self):
        bank = Database.from_odl(ACCOUNT_ODL, method_mode=AccessMode.EFFECTFUL)
        bank.insert("Account", balance=0)
        d = replay_decision(
            bank, "{ a.deposit(1) | a <- Accounts }", rolled_back=True
        )
        assert not d.safe
        assert "⊢′" in d.reason


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_retryable_defaults_to_transient_only(self):
        p = quiet_policy()
        assert p.retryable(TransientFault())
        assert not p.retryable(IOQLTypeError("nope"))
        assert not p.retryable(ValueError())

    def test_retry_on_is_configurable(self):
        p = quiet_policy(retry_on=(TransientFault, TimeoutError))
        assert p.retryable(TimeoutError())

    def test_delay_doubles_per_failure(self):
        p = quiet_policy(base_delay=1.0, max_delay=100.0, jitter=0.0)
        assert p.delay_for(1) == 1.0
        assert p.delay_for(2) == 2.0
        assert p.delay_for(3) == 4.0

    def test_delay_capped_at_max(self):
        p = quiet_policy(base_delay=1.0, max_delay=3.0, jitter=0.0)
        assert p.delay_for(5) == 3.0

    def test_jitter_bounds(self):
        p = quiet_policy(base_delay=1.0, jitter=0.5)
        for failures in range(1, 4):
            d = p.delay_for(1)
            assert 1.0 <= d <= 1.5

    def test_failures_are_one_based(self):
        with pytest.raises(ValueError):
            quiet_policy().delay_for(0)

    def test_seeded_policies_agree(self):
        a = RetryPolicy.seeded(42, sleep=noop_sleep)
        b = RetryPolicy.seeded(42, sleep=noop_sleep)
        assert [a.delay_for(n) for n in (1, 2, 3)] == [
            b.delay_for(n) for n in (1, 2, 3)
        ]

    def test_backoff_sleeps_the_delay(self):
        slept = []
        p = RetryPolicy(
            base_delay=0.25, jitter=0.0, sleep=slept.append
        )
        d = p.backoff(1)
        assert slept == [0.25] and d == 0.25

    def test_zero_delay_skips_sleep(self):
        slept = []
        p = RetryPolicy(base_delay=0.0, jitter=0.0, sleep=slept.append)
        p.backoff(1)
        assert slept == []


class TestRetryExhausted:
    def test_carries_cause_and_site(self):
        last = TransientFault("boom", site="commit")
        exc = RetryExhausted(3, last)
        assert exc.attempts == 3 and exc.last is last
        assert exc.site == "commit"

    def test_exhaustion_is_terminal_not_transient(self):
        # regression: RetryExhausted used to subclass TransientFault, so
        # an outer RetryPolicy saw "inner retries ran out" as one more
        # retryable fault and multiplied attempts (inner × outer)
        exc = RetryExhausted(3, TransientFault("boom", site="commit"))
        assert not isinstance(exc, TransientFault)
        assert not RetryPolicy().retryable(exc)

    def test_nested_retry_does_not_amplify_attempts(self, db):
        # a persistently failing commit site: every attempt faults
        plan = FaultPlan((FaultRule(site="commit", every=1),))
        inner = quiet_policy(max_attempts=3)
        outer = quiet_policy(max_attempts=4)

        def run_with_inner():
            db.run(
                'new Person(name: "x")',
                atomic=True,
                retry=inner,
            )

        with inject(plan):
            # the outer loop is what a naive client stacks around run();
            # exhaustion must escape it on the FIRST outer attempt
            outer_attempts = 0
            with pytest.raises(RetryExhausted) as excinfo:
                while True:
                    outer_attempts += 1
                    try:
                        run_with_inner()
                        break
                    except Exception as exc:
                        if (
                            outer_attempts >= outer.max_attempts
                            or not outer.retryable(exc)
                        ):
                            raise
        assert excinfo.value.attempts == inner.max_attempts
        assert outer_attempts == 1
        # the commit site was hit exactly once per *inner* attempt
        assert plan.hits["commit"] == inner.max_attempts


class TestEndToEndRetry:
    def test_read_query_survives_one_store_fault(self, db):
        plan = FaultPlan((FaultRule(site="store.read", at=1),))
        with inject(plan):
            r = db.run(
                "{ p.name | p <- Persons }", retry=quiet_policy()
            )
        assert r.python() == frozenset({"Ada"})
        assert plan.fired["store.read"] == 1

    def test_write_query_needs_atomic_to_retry(self, db):
        plan = FaultPlan((FaultRule(site="commit", at=1),))
        with inject(plan):
            with pytest.raises(TransientFault):
                db.run('new Person(name: "x")', retry=quiet_policy())
        # the refusal re-raises the original failure, not RetryExhausted
        assert len(db.extent("Persons")) == 1

    def test_atomic_write_query_retries_and_converges(self, db):
        plan = FaultPlan((FaultRule(site="commit", at=1),))
        with inject(plan):
            db.run(
                'new Person(name: "x")', atomic=True, retry=quiet_policy()
            )
        assert len(db.extent("Persons")) == 2

    def test_persistent_fault_exhausts_attempts(self, db):
        plan = FaultPlan((FaultRule(site="commit", every=1),))
        with inject(plan):
            with pytest.raises(RetryExhausted) as exc:
                db.run(
                    'new Person(name: "x")',
                    atomic=True,
                    retry=quiet_policy(max_attempts=3),
                )
        assert exc.value.attempts == 3
        assert isinstance(exc.value.last, TransientFault)
        assert len(db.extent("Persons")) == 1  # rolled back every time

    def test_retries_backoff_between_attempts(self, db):
        slept = []
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.01, jitter=0.0, sleep=slept.append
        )
        plan = FaultPlan((FaultRule(site="commit", every=1),))
        with inject(plan):
            with pytest.raises(RetryExhausted):
                db.run('new Person(name: "x")', atomic=True, retry=policy)
        # 3 attempts → 2 backoffs, exponentially spaced
        assert slept == [0.01, 0.02]

    def test_non_retryable_failure_is_not_retried(self, db):
        slept = []
        policy = RetryPolicy(sleep=slept.append)
        with pytest.raises(IOQLTypeError):
            db.run("1 + true", retry=policy)
        assert slept == []

    def test_no_retry_policy_means_fail_fast(self, db):
        plan = FaultPlan((FaultRule(site="commit", at=1),))
        with inject(plan):
            with pytest.raises(TransientFault):
                db.run('new Person(name: "x")', atomic=True)
        assert len(db.extent("Persons")) == 1
