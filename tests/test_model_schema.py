"""Unit tests for object schemas and atype/atypes/mtype (repro.model.schema)."""

import pytest

from repro.effects.algebra import Effect, read
from repro.errors import SchemaError
from repro.model.schema import AttrDef, ClassDef, MethodDef, Schema
from repro.model.types import BOOL, INT, OBJECT, STRING, ClassType, FuncType, SetType


def person() -> ClassDef:
    return ClassDef(
        "Person",
        OBJECT,
        "Persons",
        (AttrDef("name", STRING), AttrDef("age", INT)),
        (MethodDef("greet", (), STRING),),
    )


def employee() -> ClassDef:
    return ClassDef(
        "Employee",
        "Person",
        "Employees",
        (AttrDef("salary", INT),),
        (MethodDef("NetSalary", (("TaxRate", INT),), INT),),
    )


class TestWellFormedness:
    def test_valid_schema(self):
        Schema([person(), employee()])

    def test_duplicate_class(self):
        with pytest.raises(SchemaError, match="defined twice"):
            Schema([person(), person()])

    def test_object_not_redefinable(self):
        bad = ClassDef(OBJECT, OBJECT, "Objects")
        with pytest.raises(SchemaError, match="Object"):
            Schema([bad])

    def test_unknown_superclass(self):
        bad = ClassDef("A", "Ghost", "As")
        with pytest.raises(SchemaError):
            Schema([bad])

    def test_duplicate_extent(self):
        a = ClassDef("A", OBJECT, "Shared")
        b = ClassDef("B", OBJECT, "Shared")
        with pytest.raises(SchemaError, match="extent"):
            Schema([a, b])

    def test_duplicate_attribute(self):
        bad = ClassDef(
            "A", OBJECT, "As", (AttrDef("x", INT), AttrDef("x", BOOL))
        )
        with pytest.raises(SchemaError, match="duplicate attribute"):
            Schema([bad])

    def test_attribute_shadowing_rejected(self):
        child = ClassDef("Child", "Person", "Children", (AttrDef("name", STRING),))
        with pytest.raises(SchemaError, match="shadows"):
            Schema([person(), child])

    def test_non_phi_attribute_rejected(self):
        """Note 1: no set/record types inside class definitions."""
        bad = ClassDef("A", OBJECT, "As", (AttrDef("xs", SetType(INT)),))
        with pytest.raises(SchemaError, match="Note 1"):
            Schema([bad])

    def test_attribute_unknown_class(self):
        bad = ClassDef("A", OBJECT, "As", (AttrDef("x", ClassType("Ghost")),))
        with pytest.raises(SchemaError, match="unknown class"):
            Schema([bad])

    def test_duplicate_method(self):
        bad = ClassDef(
            "A",
            OBJECT,
            "As",
            (),
            (MethodDef("m", (), INT), MethodDef("m", (("x", INT),), INT)),
        )
        with pytest.raises(SchemaError, match="no overloading"):
            Schema([bad])

    def test_duplicate_method_param(self):
        bad = ClassDef(
            "A", OBJECT, "As", (), (MethodDef("m", (("x", INT), ("x", INT)), INT),)
        )
        with pytest.raises(SchemaError, match="duplicate parameter"):
            Schema([bad])

    def test_override_same_signature_ok(self):
        child = ClassDef(
            "Child", "Person", "Children", (), (MethodDef("greet", (), STRING),)
        )
        Schema([person(), child])

    def test_override_changed_signature_rejected(self):
        child = ClassDef(
            "Child", "Person", "Children", (), (MethodDef("greet", (), INT),)
        )
        with pytest.raises(SchemaError, match="different signature"):
            Schema([person(), child])

    def test_method_effects_rejected_in_core(self):
        """§2: read-only methods must have effect ∅."""
        bad = ClassDef(
            "A",
            OBJECT,
            "As",
            (),
            (MethodDef("m", (), INT, effect=Effect.of(read("A"))),),
        )
        with pytest.raises(SchemaError, match="read-only"):
            Schema([bad])

    def test_method_effects_allowed_in_s5_mode(self):
        cd = ClassDef(
            "A",
            OBJECT,
            "As",
            (),
            (MethodDef("m", (), INT, effect=Effect.of(read("A"))),),
        )
        Schema([cd], allow_method_effects=True)


class TestAuxiliaryFunctions:
    @pytest.fixture
    def schema(self) -> Schema:
        return Schema([person(), employee()])

    def test_atype_own(self, schema):
        assert schema.atype("Employee", "salary") == INT

    def test_atype_inherited(self, schema):
        assert schema.atype("Employee", "name") == STRING

    def test_atype_unknown_attr(self, schema):
        with pytest.raises(SchemaError, match="no attribute"):
            schema.atype("Person", "salary")

    def test_atype_unknown_class(self, schema):
        with pytest.raises(SchemaError, match="unknown class"):
            schema.atype("Ghost", "x")

    def test_atypes_inherited_first(self, schema):
        names = [a for a, _ in schema.atypes("Employee")]
        assert names == ["name", "age", "salary"]

    def test_atypes_of_root_subclass(self, schema):
        assert [a for a, _ in schema.atypes("Person")] == ["name", "age"]

    def test_mtype_own(self, schema):
        assert schema.mtype("Employee", "NetSalary") == FuncType((INT,), INT)

    def test_mtype_inherited(self, schema):
        assert schema.mtype("Employee", "greet") == FuncType((), STRING)

    def test_mtype_unknown(self, schema):
        with pytest.raises(SchemaError, match="no method"):
            schema.mtype("Person", "NetSalary")

    def test_mbody_resolves_override(self):
        base = person()
        child = ClassDef(
            "Child",
            "Person",
            "Children",
            (),
            (MethodDef("greet", (), STRING, body="child-body"),),
        )
        schema = Schema([base, child])
        assert schema.mbody("Child", "greet").body == "child-body"
        assert schema.mbody("Person", "greet").body is None

    def test_extent_class(self, schema):
        assert schema.extent_class("Employees") == "Employee"

    def test_extent_class_unknown(self, schema):
        with pytest.raises(SchemaError, match="unknown extent"):
            schema.extent_class("Ghosts")

    def test_class_extent(self, schema):
        assert schema.class_extent("Person") == "Persons"

    def test_extent_env(self, schema):
        assert schema.extent_env() == {"Persons": "Person", "Employees": "Employee"}

    def test_contains(self, schema):
        assert "Person" in schema
        assert "Ghost" not in schema

    def test_class_names(self, schema):
        assert schema.class_names() == frozenset({"Person", "Employee"})
