"""Big-step vs small-step agreement (the presentation the paper didn't
pick must compute the same function)."""

import random

import pytest

from repro.db.database import Database
from repro.errors import FuelExhausted, StuckError
from repro.metatheory.generators import (
    QueryGenerator,
    make_random_schema,
    make_random_store,
)
from repro.semantics.bigstep import BigStepEvaluator, evaluate_bigstep
from repro.semantics.evaluator import evaluate
from repro.semantics.machine import Machine
from repro.semantics.strategy import FIRST, LAST

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    int double_age() { return this.age + this.age; }
    int forever() { while (true) { } }
}
"""


@pytest.fixture
def db():
    d = Database.from_odl(ODL, method_fuel=200)
    d.insert("Person", name="Ada", age=36)
    d.insert("Person", name="Bob", age=17)
    d.define("define adults() as { p | p <- Persons, p.age >= 18 };")
    return d


AGREEMENT_QUERIES = [
    "1 + 2 * 3",
    "{ p.name | p <- Persons, p.age > 18 }",
    "{ struct(n: p.name, d: p.double_age()) | p <- Persons }",
    "size(Persons union Persons)",
    "exists p in Persons : p.age = 36",
    "adults() union { p | p <- Persons }",
    "{ x + y | x <- {1, 2}, y <- {10, 20}, x < y }",
    "{ x | x <- bag(1, 1, 2) }",
    "{ x | x <- list(3, 1, 2) }",
    "toset(bag(1, 2) union bag(2))",
    'new Person(name: "Cyd", age: 1)',
    "{ struct(a: p.name, b: new Person(name: p.name, age: 0)).a | p <- Persons }",
    "if size(Persons) = 2 then { (Person) p | p <- Persons } else {}",
]


class TestAgreementWithMachine:
    @pytest.mark.parametrize("src", AGREEMENT_QUERIES)
    @pytest.mark.parametrize("strategy", [FIRST, LAST])
    def test_same_value_and_environments(self, db, src, strategy):
        q = db.parse(src)
        small = evaluate(db.machine, db.ee, db.oe, q, strategy=strategy)
        # reset the shared oid counter alignment: use a fresh database so
        # fresh-oid names coincide
        db2 = Database.from_odl(ODL, method_fuel=200)
        db2.insert("Person", name="Ada", age=36)
        db2.insert("Person", name="Bob", age=17)
        db2.define("define adults() as { p | p <- Persons, p.age >= 18 };")
        big = evaluate_bigstep(db2.machine, db2.ee, db2.oe, db2.parse(src), strategy=strategy)
        assert big.value == small.value
        assert big.effect == small.effect
        assert big.ee == small.ee
        assert big.oe == small.oe

    @pytest.mark.parametrize("seed", range(10))
    def test_random_queries_agree_first_strategy(self, seed):
        rng = random.Random(9000 + seed)
        schema = make_random_schema(rng)
        ee, oe, supply1 = make_random_store(schema, rng)
        gen = QueryGenerator(schema, oe, rng, max_depth=4)
        q = gen.query(gen.random_type())
        from repro.db.store import OidSupply

        m1 = Machine(schema, oid_supply=OidSupply())
        small = evaluate(m1, ee, oe, q, strategy=FIRST)
        ev = BigStepEvaluator(schema, oid_supply=OidSupply())
        big = ev.evaluate(ee, oe, q, strategy=FIRST)
        assert big.value == small.value
        assert big.effect == small.effect
        assert big.ee == small.ee
        assert big.oe == small.oe


class TestBigStepBehaviour:
    def test_divergence_raises_fuel(self, db):
        q = db.parse("{ p.forever() | p <- Persons }")
        with pytest.raises(FuelExhausted):
            evaluate_bigstep(db.machine, db.ee, db.oe, q)

    def test_node_fuel_bounds_runaway(self, db):
        q = db.parse("{ x + y | x <- {1, 2, 3}, y <- {1, 2, 3} }")
        with pytest.raises(FuelExhausted):
            evaluate_bigstep(db.machine, db.ee, db.oe, q, fuel=5)

    def test_stuck_on_unbound(self, db):
        with pytest.raises(StuckError):
            evaluate_bigstep(db.machine, db.ee, db.oe, db.parse("zz + 1"))

    def test_environment_scoping(self, db):
        # same var name in sibling comprehensions must not leak
        q = db.parse("{ x | x <- {1} } union { x | x <- {2} }")
        assert evaluate_bigstep(db.machine, db.ee, db.oe, q).python() == frozenset({1, 2})

    def test_from_database_wrapper(self, db):
        r = evaluate_bigstep(db, db.ee, db.oe, db.parse("1 + 1"))
        assert r.python() == 2

    def test_new_commits_to_result_env(self, db):
        r = evaluate_bigstep(
            db.machine, db.ee, db.oe, db.parse('new Person(name: "Z", age: 9)')
        )
        assert len(r.ee.members("Persons")) == 3
        assert "Person" in r.effect.adds()

    def test_short_circuit_if(self, db):
        # the untaken branch would be stuck
        q = db.parse("if true then 1 else (zz + 1)")
        assert evaluate_bigstep(db.machine, db.ee, db.oe, q).python() == 1
