"""The sharding layer: hashing, partitions, per-shard installs, WAL.

Covers ``repro.db.shards`` directly (stable crc32 assignment, partition
caching and identity reuse, spec validation), the ``Database.shard``
surface, the ``shard.install`` fault site's whole-commit atomicity, the
``shard-delta`` WAL record (replay, crash points, checkpoint
round-trip) and the primary's per-shard write marks.
"""

import zlib

import pytest

from repro.db import recovery
from repro.db.database import Database
from repro.db.persistence import PersistenceError, dump_database, load_database
from repro.db.shards import (
    ShardedExtents,
    commit_deltas,
    oid_shard,
    shard_key,
    shard_of,
    static_read_shards,
    static_write_shards,
    validate_spec,
)
from repro.db.wal import read_records, truncate_to
from repro.errors import ReproError
from repro.lang.ast import BoolLit, IntLit, OidRef, StrLit
from repro.replication.replica import state_digest
from repro.resilience.faults import FaultPlan, FaultRule, inject

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute string region;
    attribute int age;
}
class Note extends Object (extent Notes) {
    attribute string body;
}
"""


def make_db(k: int = 4, by: str | None = "region") -> Database:
    db = Database.from_odl(ODL)
    db.shard("Person", k=k, by=by)
    return db


def seed(db: Database, n: int = 24, regions: int = 6) -> None:
    for i in range(n):
        db.insert(
            "Person", name=f"p{i}", region=f"r{i % regions}", age=i
        )


# ---------------------------------------------------------------------------
# hashing: stable, process-independent, typed fast paths
# ---------------------------------------------------------------------------


class TestShardAssignment:
    def test_shard_key_fast_paths(self):
        assert shard_key(IntLit(7)) == "i:7"
        assert shard_key(BoolLit(True)) == "b:True"
        assert shard_key(StrLit("r3")) == "s:r3"
        assert shard_key(OidRef("o12")) == "o:o12"

    def test_shard_of_is_crc32_not_builtin_hash(self):
        # the exact figure a replica in another process must compute
        for lit, key in ((StrLit("r3"), "s:r3"), (IntLit(41), "i:41")):
            expected = zlib.crc32(key.encode("utf-8")) % 8
            assert shard_of(lit, 8) == expected

    def test_oid_shard_matches_crc32(self):
        assert oid_shard("o7", 5) == zlib.crc32(b"o7") % 5

    def test_distinct_string_and_int_keys_do_not_collide_by_type(self):
        # "7" and 7 key different prefixes, so they may land anywhere,
        # but their canonical keys must differ
        assert shard_key(StrLit("7")) != shard_key(IntLit(7))


# ---------------------------------------------------------------------------
# spec validation and declaration
# ---------------------------------------------------------------------------


class TestValidateSpec:
    def test_ok_resolves_extent(self):
        db = Database.from_odl(ODL)
        spec = validate_spec(db.schema, "Person", "region", 8)
        assert (spec.extent, spec.k, spec.by) == ("Persons", 8, "region")

    def test_rejects_bad_k(self):
        db = Database.from_odl(ODL)
        with pytest.raises(ReproError, match="shard count"):
            validate_spec(db.schema, "Person", None, 0)

    def test_rejects_unknown_class(self):
        db = Database.from_odl(ODL)
        with pytest.raises(ReproError, match="no extent"):
            validate_spec(db.schema, "Ghost", None, 4)

    def test_rejects_unknown_attribute(self):
        db = Database.from_odl(ODL)
        with pytest.raises(ReproError, match="no attribute"):
            validate_spec(db.schema, "Person", "color", 4)

    def test_database_shard_returns_spec_and_enables(self):
        db = Database.from_odl(ODL)
        assert not db._shards.enabled
        spec = db.shard("Person", k=4, by="region")
        assert db._shards.enabled
        assert db._shards.spec("Persons") is spec


# ---------------------------------------------------------------------------
# partitions: correctness, caching, identity reuse on A-only installs
# ---------------------------------------------------------------------------


class TestPartitions:
    def test_partition_is_a_partition(self):
        db = make_db(k=4)
        seed(db)
        parts = db._shards.partition(
            "Persons", db.ee, db.oe, db._state_version
        )
        members = db.ee.members("Persons")
        union = frozenset().union(*parts)
        assert union == members
        assert sum(len(p) for p in parts) == len(members)

    def test_partition_respects_declared_attribute(self):
        db = make_db(k=4)
        seed(db)
        parts = db._shards.partition(
            "Persons", db.ee, db.oe, db._state_version
        )
        for i, part in enumerate(parts):
            for oid in part:
                region = db.oe.get(oid).attr("region")
                assert shard_of(region, 4) == i

    def test_unsharded_extent_partitions_to_none(self):
        db = make_db()
        assert (
            db._shards.partition("Notes", db.ee, db.oe, db._state_version)
            is None
        )

    def test_pinned_snapshot_version_partitions_to_none(self):
        db = make_db()
        seed(db)
        assert db._shards.partition("Persons", db.ee, db.oe, -1) is None

    def test_same_version_returns_cached_tuple(self):
        db = make_db()
        seed(db)
        v = db._state_version
        first = db._shards.partition("Persons", db.ee, db.oe, v)
        again = db._shards.partition("Persons", db.ee, db.oe, v)
        assert again is first

    def test_insert_keeps_untouched_shard_identity(self):
        db = make_db(k=4)
        seed(db)
        before = db._shards.partition(
            "Persons", db.ee, db.oe, db._state_version
        )
        db.insert("Person", name="x", region="r0", age=1)
        after = db._shards.partition(
            "Persons", db.ee, db.oe, db._state_version
        )
        touched = shard_of(StrLit("r0"), 4)
        for i in range(4):
            if i == touched:
                assert after[i] is not before[i]
                assert len(after[i]) == len(before[i]) + 1
            else:
                # the identity token downstream caches validate against
                assert after[i] is before[i]

    def test_commit_deltas_buckets_added_oids(self):
        db = make_db(k=4)
        seed(db, n=8)
        base_ee = db.ee
        db.insert("Person", name="d1", region="r1", age=9)
        db.insert("Person", name="d2", region="r2", age=9)
        extent_adds, shard_adds = commit_deltas(
            db._shards, db.schema, base_ee, db.ee, db.oe, {"Person"}
        )
        assert len(extent_adds["Persons"]) == 2
        got = set()
        for s, oids in shard_adds["Persons"].items():
            got |= oids
            for oid in oids:
                assert (
                    shard_of(db.oe.get(oid).attr("region"), 4) == s
                )
        assert got == set(extent_adds["Persons"])


# ---------------------------------------------------------------------------
# static shard analysis
# ---------------------------------------------------------------------------


class TestStaticAnalysis:
    def test_confined_read(self):
        db = make_db(k=4)
        q = db.parse('{ p.name | p <- Persons, p.region = "r2" }')
        got = static_read_shards(db._shards, db.schema, q)
        assert got == {"Person": frozenset({shard_of(StrLit("r2"), 4)})}

    def test_unconfined_read_reports_all_shards(self):
        db = make_db(k=4)
        q = db.parse("{ p.name | p <- Persons, p.age > 3 }")
        got = static_read_shards(db._shards, db.schema, q)
        assert got == {}  # Person absent: treat as all shards

    def test_confined_write(self):
        db = make_db(k=4)
        q = db.parse('new Person(name: "n", region: "r1", age: 2)')
        got = static_write_shards(db._shards, db.schema, q)
        assert got == {"Person": frozenset({shard_of(StrLit("r1"), 4)})}

    def test_dynamic_key_write_poisons_class(self):
        db = make_db(k=4)
        q = db.parse(
            '{ new Person(name: "n", region: p.region, age: 2) '
            "| p <- Persons }"
        )
        got = static_write_shards(db._shards, db.schema, q)
        assert got == {}

    def test_oid_sharding_gives_no_read_refinement(self):
        db = make_db(k=4, by=None)
        q = db.parse('{ p.name | p <- Persons, p.region = "r2" }')
        got = static_read_shards(db._shards, db.schema, q)
        assert got == {}


# ---------------------------------------------------------------------------
# the shard.install fault site: whole-commit atomicity
# ---------------------------------------------------------------------------


class TestShardInstallAtomicity:
    def test_fault_in_one_shard_install_rolls_back_everything(
        self, tmp_path
    ):
        db = make_db(k=4)
        seed(db)
        db.attach_wal(str(tmp_path / "wal"))
        pre_digest = state_digest(db)
        pre_lsn = db._wal.last_lsn
        plan = FaultPlan(
            (FaultRule(site="shard.install", at=1, kind="transient"),)
        )
        with inject(plan):
            with pytest.raises(Exception):
                db.run('new Person(name: "boom", region: "r0", age: 1)')
        # nothing visible, nothing durable: the commit is all-or-nothing
        assert state_digest(db) == pre_digest
        assert db._wal.last_lsn == pre_lsn
        # and the database is not wedged
        res = db.run('new Person(name: "ok", region: "r0", age: 1)')
        assert res is not None
        assert state_digest(db) != pre_digest
        db.close()

    def test_fault_on_second_shard_still_aborts_whole_commit(self):
        db = make_db(k=4)
        seed(db)
        pre = db.ee
        # a two-shard writer: both news must vanish together
        plan = FaultPlan(
            (FaultRule(site="shard.install", at=2, kind="transient"),)
        )
        src = (
            '{ new Person(name: "a", region: "r0", age: 1) | '
            "x <- Persons, x.age = 0 }"
        )
        db.run(src)  # sanity: the writer shape commits when unfaulted
        with inject(plan):
            with pytest.raises(Exception):
                db.run(
                    '{ struct(a: new Person(name: "a", region: "r0", age: 1),'
                    ' b: new Person(name: "b", region: "r1", age: 1)) '
                    "| x <- Persons, x.age = 0 }"
                )
        # r0 and r1 hash to different shards for k=4; neither add landed
        assert len(db.ee.members("Persons")) == len(pre.members("Persons")) + 1


# ---------------------------------------------------------------------------
# shard-delta WAL records: shape, replay, crash points, checkpoints
# ---------------------------------------------------------------------------


class TestShardDeltaWal:
    def test_insert_logs_shard_delta_record(self, tmp_path):
        db = make_db(k=4)
        db.attach_wal(str(tmp_path / "wal"))
        db.insert("Person", name="a", region="r2", age=3)
        rec = read_records(recovery.wal_path(str(tmp_path / "wal")))[-1]
        assert rec["kind"] == "shard-delta"
        assert list(rec["adds"]) == ["Persons"]
        per_shard = rec["shards"]["Persons"]
        assert set(per_shard) == {str(shard_of(StrLit("r2"), 4))}
        (added,) = per_shard.values()
        assert added == rec["adds"]["Persons"]
        db.close()

    def test_unsharded_class_omitted_from_shards_stanza(self, tmp_path):
        db = make_db(k=4)
        db.attach_wal(str(tmp_path / "wal"))
        db.insert("Note", body="hello")
        rec = read_records(recovery.wal_path(str(tmp_path / "wal")))[-1]
        # shard-delta carries the adds, but no shard ids for Notes —
        # replicas fall back to the class-level watermark
        assert "Notes" in rec["adds"]
        assert "Notes" not in rec.get("shards", {})
        db.close()

    def test_recovery_replays_shard_deltas(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        db = make_db(k=4)
        db.attach_wal(wal_dir)
        db.checkpoint()
        seed(db, n=10)
        want = state_digest(db)
        db.close()
        got = recovery.recover(wal_dir, attach=False).db
        assert state_digest(got) == want
        # the spec itself rode the checkpoint
        assert got._shards.spec("Persons") is not None

    def test_crash_at_every_record_boundary_recovers_a_prefix(
        self, tmp_path
    ):
        wal_dir = str(tmp_path / "wal")
        db = make_db(k=4)
        db.attach_wal(wal_dir)
        db.checkpoint()
        base = len(db.ee.members("Persons"))
        sizes = [db._wal.size()]
        for i in range(6):
            db.insert("Person", name=f"c{i}", region=f"r{i % 3}", age=i)
            sizes.append(db._wal.size())
        db.close()
        for j, cut in enumerate(sizes):
            crash = tmp_path / f"crash{j}"
            crash.mkdir()
            import shutil

            shutil.copy(
                recovery.checkpoint_path(wal_dir),
                recovery.checkpoint_path(str(crash)),
            )
            shutil.copy(
                recovery.wal_path(wal_dir), recovery.wal_path(str(crash))
            )
            truncate_to(recovery.wal_path(str(crash)), cut)
            got = recovery.recover(str(crash), attach=False).db
            assert len(got.ee.members("Persons")) == base + j

    def test_checkpoint_round_trips_the_sharding_stanza(self):
        db = make_db(k=4)
        seed(db, n=6)
        doc = dump_database(db, ODL)
        assert doc["sharding"] == [
            {"class": "Person", "by": "region", "k": 4}
        ]
        back = load_database(doc)
        spec = back._shards.spec("Persons")
        assert (spec.k, spec.by) == (4, "region")
        assert state_digest(back) == state_digest(db)

    def test_bad_sharding_stanza_raises_persistence_error(self):
        db = make_db(k=4)
        doc = dump_database(db, ODL)
        doc["sharding"] = [{"class": "Person", "by": "ghost", "k": 4}]
        with pytest.raises(PersistenceError, match="sharding stanza"):
            load_database(doc)


# ---------------------------------------------------------------------------
# per-shard write marks on the primary
# ---------------------------------------------------------------------------


class TestWriteMarks:
    def test_sharded_insert_marks_the_exact_shard(self, tmp_path):
        db = make_db(k=4)
        db.attach_wal(str(tmp_path / "wal"))
        db.insert("Person", name="a", region="r2", age=3)
        marks = db.write_marks()
        s = shard_of(StrLit("r2"), 4)
        assert marks[f"Person#{s}"] == db._wal.last_lsn
        assert "Person" not in marks  # refined, not duplicated
        db.close()

    def test_unsharded_insert_marks_the_class(self, tmp_path):
        db = make_db(k=4)
        db.attach_wal(str(tmp_path / "wal"))
        db.insert("Note", body="x")
        assert db.write_marks()["Note"] == db._wal.last_lsn
        db.close()


class TestSnapshot:
    def test_snapshot_reports_layout_and_counters(self):
        db = make_db(k=4)
        seed(db, n=12)
        db.run('{ p.name | p <- Persons, p.region = "r1" }')
        snap = db._shards.snapshot(db.ee)
        entry = snap["extents"]["Persons"]
        assert entry["k"] == 4 and entry["by"] == "region"
        assert entry["rows"] == 12
        if entry["shard_sizes"] is not None:
            assert sum(entry["shard_sizes"]) == 12
        assert snap["installs"] >= 0 and snap["epoch"] >= 1

    def test_registry_starts_disabled(self):
        assert not ShardedExtents().enabled
