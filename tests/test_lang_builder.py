"""Unit tests for the fluent builder DSL (repro.lang.builder)."""

import pytest

from repro.lang import builder as B
from repro.lang.parser import parse_query


class TestLeaves:
    def test_literals(self):
        assert B.build(B.int_(3)) == parse_query("3")
        assert B.build(B.bool_(True)) == parse_query("true")
        assert B.build(B.str_("x")) == parse_query('"x"')

    def test_identifiers(self):
        assert B.build(B.var("x")) == parse_query("x")
        assert B.build(B.oid("@p")) == parse_query("@p")

    def test_extent(self):
        from repro.lang.ast import ExtentRef

        assert B.build(B.extent("Ps")) == ExtentRef("Ps")


class TestOperators:
    def test_arithmetic(self):
        q = B.int_(1) + B.int_(2) * B.int_(3)
        # builder applies Python precedence: * binds first
        assert B.build(q) == parse_query("1 + 2 * 3")

    def test_int_coercion(self):
        assert B.build(B.var("x") + 1) == parse_query("x + 1")

    def test_comparisons(self):
        assert B.build(B.var("x") < 3) == parse_query("x < 3")
        assert B.build(B.var("x") >= 3) == parse_query("x >= 3")

    def test_equality_methods(self):
        assert B.build(B.var("x").eq(1)) == parse_query("x = 1")
        assert B.build(B.var("a").same(B.var("b"))) == parse_query("a == b")

    def test_set_ops(self):
        q = B.set_(1).union(B.set_(2)).intersect(B.set_(3))
        assert B.build(q) == parse_query("{1} union {2} intersect {3}")

    def test_except(self):
        assert B.build(B.set_(1).except_(B.set_(2))) == parse_query("{1} except {2}")


class TestStructures:
    def test_set(self):
        assert B.build(B.set_(1, 2, 3)) == parse_query("{1, 2, 3}")

    def test_record(self):
        assert B.build(B.record(a=1, b=True)) == parse_query("struct(a: 1, b: true)")

    def test_attr_chain(self):
        assert B.build(B.var("x").attr("foo").attr("bar")) == parse_query("x.foo.bar")

    def test_method_call(self):
        assert B.build(B.var("x").call("m", 1, 2)) == parse_query("x.m(1, 2)")

    def test_new(self):
        q = B.new("P", a=1, b="s")
        assert B.build(q) == parse_query('new P(a: 1, b: "s")')

    def test_cast(self):
        assert B.build(B.var("x").cast("Person")) == parse_query("(Person) x")

    def test_size(self):
        assert B.build(B.size(B.set_(1))) == parse_query("size({1})")

    def test_if(self):
        assert B.build(B.if_(B.bool_(True), 1, 2)) == parse_query(
            "if true then 1 else 2"
        )

    def test_defcall(self):
        assert B.build(B.defcall("f", 1)) == parse_query("f(1)")


class TestComprehensions:
    def test_generator_and_predicate(self):
        q = B.comp(
            B.var("p").attr("name"),
            B.gen("p", B.extent("Persons")),
            B.var("p").attr("age") > 30,
        )
        expected = parse_query(
            "{p.name | p <- Persons, p.age > 30}", extents={"Persons"}
        )
        assert B.build(q) == expected

    def test_no_qualifiers(self):
        assert B.build(B.comp(B.int_(1))) == parse_query("{1 | }")


class TestErgonomics:
    def test_str_renders_pretty(self):
        assert str(B.var("x") + 1) == "x + 1"

    def test_bad_lift_rejected(self):
        with pytest.raises(TypeError):
            B.var("x") + 1.5  # floats are not IOQL values
