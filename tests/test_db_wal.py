"""The write-ahead log file format and its two readers.

The log is the durability layer's single point of truth, so this suite
pins its contract at the byte level: framing and checksums, monotone
LSNs, self-repairing appends (a failed append leaves the file exactly
as it was), checkpoint folding via :meth:`WriteAheadLog.reset`, and —
most importantly — that the **strict** reader (:func:`read_records`)
raises :class:`WalError` for *every* single-byte truncation and every
single-bit flip of a log: a checksummed log is never silently wrong.
"""

import json
import os
import struct
import zlib

import pytest

from repro.db import wal
from repro.db.wal import (
    MAGIC,
    WalError,
    WriteAheadLog,
    read_records,
    scan,
    truncate_to,
)
from repro.resilience import faults as fault_injection
from repro.resilience.faults import FaultPlan, FaultRule, inject
from repro.errors import TransientFault

_FRAME = struct.Struct(">II")


def _log_with(tmp_path, records, **kw):
    path = str(tmp_path / "wal.log")
    w = WriteAheadLog(path, **kw)
    for rec in records:
        w.append(rec)
    w.close()
    return path


# ---------------------------------------------------------------------------
# Format and append
# ---------------------------------------------------------------------------


class TestFormat:
    def test_fresh_log_is_just_the_header(self, tmp_path):
        path = str(tmp_path / "wal.log")
        w = WriteAheadLog(path)
        w.close()
        with open(path, "rb") as fh:
            assert fh.read() == MAGIC

    def test_append_assigns_monotone_lsns(self, tmp_path):
        path = str(tmp_path / "wal.log")
        w = WriteAheadLog(path)
        assert [w.append({"kind": "delta"}) for _ in range(5)] == [1, 2, 3, 4, 5]
        assert w.last_lsn == 5
        w.close()
        assert [r["lsn"] for r in read_records(path)] == [1, 2, 3, 4, 5]

    def test_append_does_not_mutate_the_caller_record(self, tmp_path):
        path = str(tmp_path / "wal.log")
        w = WriteAheadLog(path)
        rec = {"kind": "delta", "stmt": "x"}
        w.append(rec)
        w.close()
        assert "lsn" not in rec

    def test_payload_round_trips_non_ascii(self, tmp_path):
        rec = {"kind": "delta", "stmt": 'new Person(name: "Ewa Żółć — ☃")'}
        path = _log_with(tmp_path, [rec])
        (got,) = read_records(path)
        assert got["stmt"] == rec["stmt"]

    def test_frame_is_length_then_crc_then_payload(self, tmp_path):
        path = _log_with(tmp_path, [{"kind": "delta"}])
        raw = open(path, "rb").read()
        length, crc = _FRAME.unpack_from(raw, len(MAGIC))
        payload = raw[len(MAGIC) + _FRAME.size:]
        assert len(payload) == length
        assert zlib.crc32(payload) == crc
        assert json.loads(payload)["lsn"] == 1

    def test_closed_log_refuses_appends(self, tmp_path):
        path = str(tmp_path / "wal.log")
        w = WriteAheadLog(path)
        w.close()
        with pytest.raises(WalError, match="closed"):
            w.append({"kind": "delta"})

    def test_reopen_continues_at_the_given_lsn(self, tmp_path):
        path = _log_with(tmp_path, [{"kind": "delta"}, {"kind": "delta"}])
        w = WriteAheadLog(path, next_lsn=3)
        w.append({"kind": "delta"})
        w.close()
        assert [r["lsn"] for r in read_records(path)] == [1, 2, 3]


class TestReset:
    def test_reset_truncates_to_the_header(self, tmp_path):
        path = str(tmp_path / "wal.log")
        w = WriteAheadLog(path)
        for _ in range(3):
            w.append({"kind": "delta"})
        w.reset()
        assert w.size() == len(MAGIC)
        assert read_records(path) == []
        w.close()

    def test_lsns_keep_counting_across_reset(self, tmp_path):
        # the crash window between checkpoint and reset relies on folded
        # records staying recognisably old — numbering must not restart
        path = str(tmp_path / "wal.log")
        w = WriteAheadLog(path)
        for _ in range(3):
            w.append({"kind": "delta"})
        w.reset()
        assert w.append({"kind": "delta"}) == 4
        w.close()


# ---------------------------------------------------------------------------
# Self-repairing append
# ---------------------------------------------------------------------------


class TestAppendSelfRepair:
    def _crash_one_append(self, tmp_path, site):
        path = str(tmp_path / "wal.log")
        w = WriteAheadLog(path)
        w.append({"kind": "delta", "n": 1})
        before = w.size()
        plan = FaultPlan([FaultRule(site, at=1)])
        with inject(plan):
            with pytest.raises(TransientFault):
                w.append({"kind": "delta", "n": 2})
        return w, path, before

    @pytest.mark.parametrize("site", ["wal.append", "wal.fsync"])
    def test_failed_append_leaves_the_file_untouched(self, tmp_path, site):
        w, path, before = self._crash_one_append(tmp_path, site)
        assert w.size() == before
        assert [r["n"] for r in read_records(path)] == [1]
        w.close()

    @pytest.mark.parametrize("site", ["wal.append", "wal.fsync"])
    def test_failed_append_does_not_burn_its_lsn(self, tmp_path, site):
        w, path, _ = self._crash_one_append(tmp_path, site)
        assert w.append({"kind": "delta", "n": 3}) == 2
        w.close()
        assert [(r["lsn"], r["n"]) for r in read_records(path)] == [
            (1, 1),
            (2, 3),
        ]

    def test_wal_fsync_fault_truncates_bytes_already_written(self, tmp_path):
        # the fsync site fires *after* the frame hit the OS buffer: the
        # repair path really has bytes to remove, not just a no-op
        path = str(tmp_path / "wal.log")
        w = WriteAheadLog(path)
        plan = FaultPlan([FaultRule("wal.fsync", at=1)])
        with inject(plan):
            with pytest.raises(TransientFault):
                w.append({"kind": "delta"})
        assert w.size() == len(MAGIC)
        w.close()
        assert read_records(path) == []


# ---------------------------------------------------------------------------
# Readers: tolerant scan, strict read_records
# ---------------------------------------------------------------------------


class TestScan:
    def test_missing_file_is_an_empty_log(self, tmp_path):
        records, valid, error = scan(str(tmp_path / "absent.log"))
        assert (records, valid, error) == ([], 0, None)

    def test_intact_log_scans_without_error(self, tmp_path):
        path = _log_with(tmp_path, [{"kind": "delta"}] * 3)
        records, valid, error = scan(path)
        assert [r["lsn"] for r in records] == [1, 2, 3]
        assert valid == os.path.getsize(path)
        assert error is None

    def test_bad_header_is_unrecoverable(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with open(path, "wb") as fh:
            fh.write(b"NOTAWAL!" + b"\x00" * 16)
        with pytest.raises(WalError, match="header"):
            scan(path)

    def test_truncated_header_is_unrecoverable(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with open(path, "wb") as fh:
            fh.write(MAGIC[:-3])
        with pytest.raises(WalError, match="header"):
            scan(path)

    def test_torn_tail_yields_the_intact_prefix(self, tmp_path):
        path = _log_with(tmp_path, [{"kind": "delta", "n": i} for i in range(3)])
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 2)
        records, valid, error = scan(path)
        assert [r["n"] for r in records] == [0, 1]
        assert error is not None and "torn" in str(error)
        truncate_to(path, valid)
        assert [r["n"] for r in read_records(path)] == [0, 1]

    def test_truncate_to_is_idempotent(self, tmp_path):
        path = _log_with(tmp_path, [{"kind": "delta"}])
        size = os.path.getsize(path)
        truncate_to(path, size)
        truncate_to(path, size)
        assert os.path.getsize(path) == size

    def test_checksummed_garbage_payload_still_fails(self, tmp_path):
        # a frame whose CRC matches but whose payload is not a record
        # object: the reader validates semantics, not just bytes
        path = str(tmp_path / "wal.log")
        for payload in [b"\xff\xfe", b"[1,2]", b'{"no": "lsn"}']:
            with open(path, "wb") as fh:
                fh.write(MAGIC)
                fh.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
                fh.write(payload)
            _, _, error = scan(path)
            assert isinstance(error, WalError)
            with pytest.raises(WalError):
                read_records(path)

    def test_implausible_length_prefix_is_corruption(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with open(path, "wb") as fh:
            fh.write(MAGIC)
            fh.write(_FRAME.pack(wal.MAX_RECORD_BYTES + 1, 0))
            fh.write(b"x" * 64)
        _, valid, error = scan(path)
        assert valid == len(MAGIC)
        assert error is not None and "implausible" in str(error)


class TestStrictReaderExhaustively:
    """Every truncation point and every bit flip must raise, never lie."""

    def _reference_log(self, tmp_path):
        return _log_with(
            tmp_path,
            [
                {"kind": "delta", "stmt": f"q{i}", "payload": "x" * i}
                for i in range(4)
            ],
        )

    def test_every_truncation_point_raises_or_is_a_prefix(self, tmp_path):
        path = self._reference_log(tmp_path)
        raw = open(path, "rb").read()
        # the offsets where a truncated log is *complete* (a prefix)
        boundaries = {len(MAGIC)}
        off = len(MAGIC)
        while off < len(raw):
            length, _ = _FRAME.unpack_from(raw, off)
            off += _FRAME.size + length
            boundaries.add(off)
        mangled = str(tmp_path / "cut.log")
        for cut in range(len(MAGIC), len(raw) + 1):
            with open(mangled, "wb") as fh:
                fh.write(raw[:cut])
            if cut in boundaries:
                read_records(mangled)  # complete prefix: must parse
            else:
                with pytest.raises(WalError):
                    read_records(mangled)

    def test_every_single_bit_flip_raises(self, tmp_path):
        path = self._reference_log(tmp_path)
        raw = bytearray(open(path, "rb").read())
        mangled = str(tmp_path / "flip.log")
        for byte_index in range(len(raw)):
            for bit in range(8):
                flipped = bytearray(raw)
                flipped[byte_index] ^= 1 << bit
                with open(mangled, "wb") as fh:
                    fh.write(flipped)
                with pytest.raises(WalError):
                    read_records(mangled)

    def test_appended_garbage_raises(self, tmp_path):
        path = self._reference_log(tmp_path)
        with open(path, "ab") as fh:
            fh.write(b"\x00\x01\x02garbage")
        with pytest.raises(WalError):
            read_records(path)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    yield
    fault_injection.uninstall()
