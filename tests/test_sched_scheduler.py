"""Unit tests for the effect-guided batch scheduler (repro.sched).

The contract under test: ``run_many`` answers exactly as a sequential
admission-order run would, and the conflict graph it builds from the
Figure 3 effects is the licence for every overlap it performs.
"""

import threading

import pytest

from repro import obs
from repro.db.database import Database
from repro.effects.algebra import EMPTY, Effect, add, read, update
from repro.errors import IOQLTypeError, ReproError
from repro.lang.values import from_value
from repro.resilience.faults import FaultPlan, FaultRule, inject
from repro.sched import QueryScheduler, Session, conflicts

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
class Pet extends Object (extent Pets) {
    attribute string species;
}
"""


@pytest.fixture
def db() -> Database:
    d = Database.from_odl(ODL)
    d.insert("Person", name="Ada", age=36)
    d.insert("Person", name="Bob", age=17)
    d.insert("Pet", species="cat")
    return d


class TestConflictPredicate:
    def test_disjoint_reads_do_not_conflict(self):
        a = Effect.of(read("Person"))
        b = Effect.of(read("Pet"))
        assert not conflicts(a, b)

    def test_shared_reads_do_not_conflict(self):
        a = Effect.of(read("Person"))
        assert not conflicts(a, a)

    def test_empty_effects_do_not_conflict(self):
        assert not conflicts(EMPTY, EMPTY)

    def test_read_vs_add_same_class_conflicts(self):
        assert conflicts(Effect.of(read("Person")), Effect.of(add("Person")))
        assert conflicts(Effect.of(add("Person")), Effect.of(read("Person")))

    def test_read_vs_add_disjoint_class_is_free(self):
        assert not conflicts(Effect.of(read("Pet")), Effect.of(add("Person")))

    def test_writer_writer_always_conflicts(self):
        # coarser than interferes_with: commit replaces EE/OE wholesale,
        # so even class-disjoint writers must serialize
        a = Effect.of(add("Person"))
        b = Effect.of(add("Pet"))
        assert not a.interferes_with(b)
        assert conflicts(a, b)

    def test_update_conflicts_with_everything(self):
        # reference chasing escapes the R-set: no disjointness argument
        u = Effect.of(update("Person"))
        assert conflicts(u, Effect.of(read("Pet")))
        assert conflicts(Effect.of(read("Pet")), u)
        assert conflicts(u, EMPTY)
        assert conflicts(EMPTY, u)


class TestAdmission:
    def test_kinds(self, db):
        sched = QueryScheduler(db)
        adms = sched.admit(
            ["Persons", 'new Person(name: "x", age: 1)', "not a query ]["]
        )
        assert [a.kind for a in adms] == ["read", "write", "error"]
        assert adms[0].ok and adms[1].ok and not adms[2].ok

    def test_type_error_is_admission_error(self, db):
        sched = QueryScheduler(db)
        (adm,) = sched.admit(["1 + Persons"])
        assert not adm.ok
        assert isinstance(adm.error, IOQLTypeError)

    def test_admit_fault_site(self, db):
        sched = QueryScheduler(db)
        with inject(FaultPlan((FaultRule(site="sched.admit", at=1),))):
            adms = sched.admit(["Persons", "Pets"])
        # the fault lands on the first admission only; the batch goes on
        assert not adms[0].ok
        assert adms[1].ok

    def test_needs_a_worker(self, db):
        with pytest.raises(ReproError):
            QueryScheduler(db, workers=0)


class TestConflictGraph:
    def _graph(self, db, sources):
        sched = QueryScheduler(db)
        adms = sched.admit(sources)
        return QueryScheduler.conflict_graph(adms)

    def test_pure_reads_form_no_edges(self, db):
        deps = self._graph(db, ["Persons", "Pets", "size(Persons)"])
        assert deps == {0: set(), 1: set(), 2: set()}

    def test_edges_point_backwards_only(self, db):
        deps = self._graph(
            db,
            [
                "Persons",
                'new Person(name: "x", age: 1)',
                "{ p.name | p <- Persons }",
            ],
        )
        assert deps[0] == set()
        assert deps[1] == {0}  # writer after the Person reader
        assert deps[2] == {1}  # reader after the Person writer
        for j, ds in deps.items():
            assert all(i < j for i in ds)

    def test_writers_chain_in_admission_order(self, db):
        deps = self._graph(
            db,
            [
                'new Person(name: "a", age: 1)',
                'new Pet(species: "dog")',
                'new Person(name: "b", age: 2)',
            ],
        )
        # writer-writer coarsening: every later writer depends on every
        # earlier one, even across disjoint classes
        assert deps[1] == {0}
        assert deps[2] == {0, 1}

    def test_failed_admissions_are_excluded(self, db):
        deps = self._graph(db, ["][", "Persons"])
        assert 0 not in deps
        assert deps[1] == set()

    def test_disjoint_reader_skips_the_writer(self, db):
        deps = self._graph(db, ['new Person(name: "x", age: 1)', "Pets"])
        assert deps[1] == set()


class TestRunMany:
    def test_read_batch_matches_sequential(self, db):
        sources = [
            "{ p.name | p <- Persons }",
            "size(Persons)",
            "{ x.species | x <- Pets }",
        ]
        expected = [db.run(s).python() for s in sources]
        result = db.run_many(sources, workers=4)
        assert [from_value(o.value) for o in result] == expected

    def test_values_in_admission_order(self, db):
        sources = ["1 + 1", "2 + 2", "3 + 3"]
        result = db.run_many(sources, workers=4)
        assert [from_value(o.value) for o in result] == [2, 4, 6]

    def test_writers_serialize_in_admission_order(self, db):
        n0 = len(db.extent("Persons"))
        sources = [
            'new Person(name: "w1", age: 1)',
            'new Person(name: "w2", age: 2)',
            'new Person(name: "w3", age: 3)',
        ]
        result = db.run_many(sources, workers=4)
        oids = [str(o.value) for o in result]
        # oid allocation order is the admission order, exactly as a
        # sequential run would allocate — not merely ∼-equivalent
        seq = Database.from_odl(ODL)
        seq.insert("Person", name="Ada", age=36)
        seq.insert("Person", name="Bob", age=17)
        seq.insert("Pet", species="cat")
        expected = [str(seq.run(s).value) for s in sources]
        assert oids == expected
        assert len(db.extent("Persons")) == n0 + 3

    def test_read_sees_snapshot_or_later_consistent_state(self, db):
        # a reader that conflicts with an earlier writer must see it
        sources = [
            'new Person(name: "Cyd", age: 9)',
            "size(Persons)",
        ]
        result = db.run_many(sources, workers=4)
        assert from_value(result[1].value) == 3

    def test_error_does_not_poison_the_batch(self, db):
        sources = ["1 + 1", "][", "2 + 2"]
        result = db.run_many(sources, workers=4)
        assert result[0].ok and result[2].ok and not result[1].ok
        assert len(result.errors) == 1
        with pytest.raises(Exception):
            result.values()

    def test_workers_one_is_sequential(self, db):
        result = db.run_many(["1", "2", "3"], workers=1)
        assert [from_value(o.value) for o in result] == [1, 2, 3]

    def test_batch_result_shape(self, db):
        result = db.run_many(["1", "2"], workers=2)
        assert len(result) == 2
        assert [o.index for o in result] == [0, 1]
        assert result.conflict_edges == 0
        assert result.conflict_rate == 0.0
        assert result.wall_time > 0

    def test_conflict_rate_counts_edges(self, db):
        result = db.run_many(
            ['new Person(name: "a", age: 1)', 'new Person(name: "b", age: 2)'],
            workers=2,
        )
        assert result.conflict_edges == 1
        assert result.conflict_rate == 1.0

    def test_empty_batch(self, db):
        result = db.run_many([], workers=4)
        assert len(result) == 0
        assert result.values() == []

    def test_concurrent_readers_all_answer_from_the_snapshot(self, db):
        sources = ["{ p.name | p <- Persons }"] * 4
        result = db.run_many(sources, workers=4)
        assert all(from_value(o.value) == frozenset({"Ada", "Bob"}) for o in result)


class TestSession:
    def test_context_manager_dispatches(self, db):
        with db.session(workers=2) as s:
            a = s.submit("1 + 1")
            b = s.submit("size(Persons)")
        assert from_value(a.result()) == 2
        assert from_value(b.result()) == 2

    def test_result_before_dispatch_raises(self, db):
        s = Session(db)
        p = s.submit("1")
        with pytest.raises(ReproError, match="not dispatched"):
            p.result()

    def test_double_dispatch_raises(self, db):
        s = Session(db)
        s.submit("1")
        s.dispatch()
        with pytest.raises(ReproError, match="already dispatched"):
            s.dispatch()
        with pytest.raises(ReproError, match="already dispatched"):
            s.submit("2")

    def test_exception_skips_dispatch(self, db):
        with pytest.raises(ValueError):
            with db.session() as s:
                s.submit("1")
                raise ValueError("client bug")
        assert s.result is None

    def test_submit_is_thread_safe(self, db):
        s = Session(db, workers=4)
        handles = []
        lock = threading.Lock()

        def client(i):
            p = s.submit(f"{i} + 0")
            with lock:
                handles.append(p)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        s.dispatch()
        # every handle resolves to its own submission's answer
        for p in handles:
            assert from_value(p.result()) == int(str(p.source).split(" ")[0])


class TestObservability:
    def test_batch_metrics_and_span(self, db):
        obs.enable()
        obs.reset()
        try:
            db.run_many(
                ["Persons", 'new Person(name: "m", age: 5)'], workers=2
            )
            assert obs.REGISTRY.value("sched_batches_total") == 1
            assert obs.REGISTRY.value("sched_queries_total", kind="read") == 1
            assert obs.REGISTRY.value("sched_queries_total", kind="write") == 1
            assert obs.REGISTRY.value("sched_conflict_edges_total") == 1
            roots = [s.name for s in obs.TRACER.finished]
            assert "sched.batch" in roots
        finally:
            obs.disable()
            obs.reset()

    def test_obs_off_records_nothing(self, db):
        obs.disable()
        obs.reset()
        db.run_many(["Persons"], workers=2)
        assert obs.REGISTRY.counter_values("sched_batches_total") == {}
        assert len(obs.TRACER.finished) == 0
