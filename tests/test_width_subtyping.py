"""Tests for Note 3's width-subtyping mode (TypeContext flag)."""

import pytest

from repro.errors import IOQLTypeError
from repro.lang.parser import parse_program, parse_query
from repro.model.odl_parser import parse_schema
from repro.model.types import INT, RecordType, SetType
from repro.typing.checker import check_definition, check_query
from repro.typing.context import TypeContext

SCHEMA = parse_schema(
    "class P extends Object (extent Ps) { attribute int n; }"
)


def _ctx(**kw):
    return TypeContext(SCHEMA, **kw)


def _with_def(ctx, src):
    p = parse_program(src + " 0", schema=SCHEMA)
    return ctx.with_def(p.definitions[0].name, check_definition(ctx, p.definitions[0]))


class TestNarrowDefault:
    def test_wider_argument_rejected(self):
        ctx = _with_def(_ctx(), "define f(r: struct(a: int)) as r.a;")
        with pytest.raises(IOQLTypeError, match="not a subtype"):
            check_query(ctx, parse_query("f(struct(a: 1, b: true))"))

    def test_exact_argument_accepted(self):
        ctx = _with_def(_ctx(), "define f(r: struct(a: int)) as r.a;")
        assert check_query(ctx, parse_query("f(struct(a: 1))")) == INT


class TestWideMode:
    def test_wider_argument_accepted(self):
        ctx = _with_def(
            _ctx(width_records=True), "define f(r: struct(a: int)) as r.a;"
        )
        assert check_query(
            ctx, parse_query("f(struct(a: 1, b: true))")
        ) == INT

    def test_field_order_free_in_wide_mode(self):
        ctx = _with_def(
            _ctx(width_records=True), "define f(r: struct(a: int)) as r.a;"
        )
        assert check_query(
            ctx, parse_query("f(struct(b: true, a: 1))")
        ) == INT

    def test_depth_still_enforced(self):
        ctx = _with_def(
            _ctx(width_records=True), "define f(r: struct(a: int)) as r.a;"
        )
        with pytest.raises(IOQLTypeError):
            check_query(ctx, parse_query('f(struct(a: "s", b: 1))'))

    def test_missing_field_still_rejected(self):
        ctx = _with_def(
            _ctx(width_records=True), "define f(r: struct(a: int)) as r.a;"
        )
        with pytest.raises(IOQLTypeError):
            check_query(ctx, parse_query("f(struct(b: 1))"))

    def test_sets_of_wide_records(self):
        # covariance composes with width
        ctx = _with_def(
            _ctx(width_records=True),
            "define g(rs: set<struct(a: int)>) as { r.a | r <- rs };",
        )
        t = check_query(
            ctx, parse_query("g({struct(a: 1, b: true)})")
        )
        assert t == SetType(INT)

    def test_narrow_mode_soundness_unaffected(self):
        """The default checker is byte-for-byte the paper's rule: wide
        acceptance must not leak into the default."""
        assert not SCHEMA.subtype(
            RecordType.of(a=INT, b=INT), RecordType.of(a=INT)
        )
        assert SCHEMA.subtype(
            RecordType.of(a=INT, b=INT),
            RecordType.of(a=INT),
            width_records=True,
        )
