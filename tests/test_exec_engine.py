"""Engine routing and the effect-invalidated plan/result/index caches.

Theorem 4 gates the routing (only provably read-only queries reach the
compiled engine); Theorem 5 licenses the invalidation (a committed
write's dynamic trace is bounded by its static effect, so entries whose
``R`` set avoids the written classes survive).
"""

import pytest

from repro import obs
from repro.db.database import Database
from repro.effects.algebra import Effect, add, update
from repro.errors import TransientFault
from repro.exec.cache import PlanCache, PlanEntry, schema_fingerprint
from repro.resilience.budget import Budget
from repro.resilience.faults import FaultPlan, FaultRule, inject

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
class Pet extends Object (extent Pets) {
    attribute string species;
}
"""


@pytest.fixture
def db() -> Database:
    d = Database.from_odl(ODL)
    d.insert("Person", name="Ada", age=36)
    d.insert("Person", name="Bob", age=17)
    d.insert("Pet", species="cat")
    return d


class TestRouting:
    def test_read_only_query_routes_to_compiled(self, db):
        result = db.run("{ p.name | p <- Persons }")
        assert result.engine == "compiled"
        assert result.python() == frozenset({"Ada", "Bob"})

    def test_write_query_falls_back_to_reduction(self, db):
        result = db.run('new Person(name: "Cyd", age: 1)')
        assert result.engine == "reduction"
        assert len(db.extent("Persons")) == 3

    def test_decision_explains_write_fallback(self, db):
        dec = db.plan_decision('new Pet(species: "dog")')
        assert dec.engine == "reduction"
        assert "Theorem 4" in dec.reason
        assert "Pet" in dec.reason

    def test_decision_explains_compiled_choice(self, db):
        dec = db.plan_decision("size(Persons)")
        assert dec.engine == "compiled"
        assert "read-only" in dec.reason

    def test_forced_compiled_rejects_writes(self, db):
        with pytest.raises(ValueError, match="Theorem 4"):
            db.run('new Person(name: "x", age: 0)', engine="compiled")

    def test_forced_engines_still_work(self, db):
        want = frozenset({"Ada"})
        for engine in ("compiled", "reduction", "bigstep"):
            r = db.run(
                "{ p.name | p <- Persons, p.age > 18 }", engine=engine
            )
            assert r.python() == want, engine
            assert r.engine == engine

    def test_compiled_preserves_environments(self, db):
        ee, oe = db.ee, db.oe
        db.run("{ p | p <- Persons, p.age > 0 }")
        assert db.ee is ee and db.oe is oe

    def test_dynamic_effect_reported(self, db):
        r = db.run("{ p.name | p <- Persons }")
        assert r.effect.reads() == frozenset({"Person"})
        assert not r.effect.writes()

    def test_lazy_scan_skips_unreached_extent(self, db):
        # the else branch never runs, so Pet is never dynamically read
        r = db.run("if true then 1 else size(Pets)")
        assert r.engine == "compiled"
        assert "Pet" not in r.effect.reads()


class TestResultCache:
    def test_repeat_query_served_from_cache(self, db):
        q = "{ p.name | p <- Persons }"
        first = db.run(q)
        dec = db.plan_decision(q)
        assert dec.entry.result is not None
        # poison the plan: a re-execution would now blow up
        object.__setattr__(dec.entry.plan, "fn", None)
        second = db.run(q)
        assert second.python() == first.python()
        assert second.steps == first.steps

    def test_add_write_evicts_only_touched_entries(self, db):
        db.run("{ p.name | p <- Persons }")
        db.run("{ x.species | x <- Pets }")
        person_q = db.parse("{ p.name | p <- Persons }")
        pet_q = db.parse("{ x.species | x <- Pets }")
        assert person_q in db._plan_cache.cached_queries()
        db.insert("Person", name="Cyd", age=3)
        cached = db._plan_cache.cached_queries()
        assert person_q not in cached  # R(Person) ∩ A(Person) ≠ ∅
        assert pet_q in cached  # disjoint: provably unaffected
        # the surviving entry's result was promoted across the write
        pet_entry = db._plan_cache.get(pet_q, db._defs_version)
        assert pet_entry.result_version == db._state_version

    def test_evicted_query_recomputes_fresh_answer(self, db):
        q = "{ p.name | p <- Persons }"
        assert db.run(q).python() == frozenset({"Ada", "Bob"})
        db.insert("Person", name="Cyd", age=3)
        assert db.run(q).python() == frozenset({"Ada", "Bob", "Cyd"})

    def test_query_write_evicts_like_insert(self, db):
        db.run("{ p.age | p <- Persons }")
        person_q = db.parse("{ p.age | p <- Persons }")
        db.run('new Person(name: "Eve", age: 9)')  # commits A(Person)
        assert person_q not in db._plan_cache.cached_queries()
        assert db.run("{ p.age | p <- Persons }").python() == frozenset(
            {36, 17, 9}
        )

    def test_restore_invalidates_cached_results(self, db):
        snap = db.snapshot()
        db.insert("Person", name="Cyd", age=3)
        q = "size(Persons)"
        assert db.run(q).python() == 3
        db.restore(snap)
        assert db.run(q).python() == 2

    def test_rollback_invalidates_cached_results(self, db):
        q = "size(Persons)"
        assert db.run(q).python() == 2
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.run('new Person(name: "T", age: 1)')
                assert db.run(q).python() == 3
                raise RuntimeError("abort")
        assert db.run(q).python() == 2

    def test_define_retires_old_plans(self, db):
        db.define("define adults() as { p | p <- Persons, p.age >= 18 };")
        assert db.run("size(adults())").python() == 1
        old_defs_version = db._defs_version
        db.define("define kids() as { p | p <- Persons, p.age < 18 };")
        assert db._defs_version > old_defs_version
        # the adults() plan compiled under the old DE version is not
        # consulted for the new key; the answer stays right
        assert db.run("size(adults())").python() == 1
        assert db.run("size(kids())").python() == 1


class TestNoteWriteUnit:
    """note_write semantics pinned at the unit level (Theorem 5 rules)."""

    def _cache_with(self, reads: frozenset, version: int) -> tuple:
        db = Database.from_odl(ODL)
        cache = PlanCache(schema_fingerprint(db.schema))
        entry = PlanEntry(
            plan=None,
            reads=reads,
            static_effect=Effect.of(),
            result=db.parse("1"),
            result_version=version,
        )
        cache.put(db.parse("1"), 0, entry)
        return cache, entry

    def test_add_atom_evicts_intersecting_reader(self):
        cache, _ = self._cache_with(frozenset({"Person"}), 5)
        cache.note_write(Effect.of(add("Person")), 5, 6)
        assert len(cache) == 0

    def test_add_atom_promotes_disjoint_reader(self):
        cache, entry = self._cache_with(frozenset({"Pet"}), 5)
        cache.note_write(Effect.of(add("Person")), 5, 6)
        assert len(cache) == 1
        assert entry.result_version == 6

    def test_update_atom_drops_all_results(self):
        # attribute reads carry no effect atom, so a disjoint R set does
        # NOT prove independence from a U write (reference chasing)
        cache, entry = self._cache_with(frozenset({"Pet"}), 5)
        cache.note_write(Effect.of(update("Person")), 5, 6)
        assert len(cache) == 1  # the plan survives
        assert entry.result is None  # the result does not
        assert entry.result_version == -1

    def test_read_only_effect_is_a_noop(self):
        cache, entry = self._cache_with(frozenset({"Person"}), 5)
        cache.note_write(Effect.of(), 5, 6)
        assert len(cache) == 1
        assert entry.result_version == 5


class TestCapacityEviction:
    """Size-neutral re-puts never evict (regression).

    ``put`` used to evict the oldest entry whenever the cache was at
    capacity, even when the key being written was *already resident* —
    so a hot query that re-putting its own entry (result refresh) at a
    full cache steadily evicted innocent plans and pumped the
    ``evictions`` counter.
    """

    def _entry(self, db: Database) -> PlanEntry:
        return PlanEntry(
            plan=None,
            reads=frozenset(),
            static_effect=Effect.of(),
            result=None,
            result_version=-1,
        )

    def test_new_key_at_capacity_evicts_oldest(self):
        db = Database.from_odl(ODL)
        cache = PlanCache(schema_fingerprint(db.schema), max_entries=2)
        cache.put(db.parse("1"), 0, self._entry(db))
        cache.put(db.parse("2"), 0, self._entry(db))
        cache.put(db.parse("3"), 0, self._entry(db))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(db.parse("1"), 0) is None  # oldest dropped
        assert cache.get(db.parse("3"), 0) is not None

    def test_re_put_at_capacity_is_eviction_free(self):
        db = Database.from_odl(ODL)
        cache = PlanCache(schema_fingerprint(db.schema), max_entries=2)
        cache.put(db.parse("1"), 0, self._entry(db))
        cache.put(db.parse("2"), 0, self._entry(db))
        for _ in range(10):
            cache.put(db.parse("2"), 0, self._entry(db))
        # the overwrite is size-neutral: nothing leaves, counter flat
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get(db.parse("1"), 0) is not None

    def test_re_put_replaces_the_entry(self):
        db = Database.from_odl(ODL)
        cache = PlanCache(schema_fingerprint(db.schema), max_entries=1)
        first = self._entry(db)
        second = self._entry(db)
        cache.put(db.parse("1"), 0, first)
        cache.put(db.parse("1"), 0, second)
        assert cache.get(db.parse("1"), 0) is second
        assert cache.evictions == 0


class TestIndexMaintenance:
    def test_join_builds_persistent_index(self, db):
        q = (
            "{ struct(a: p.name, b: q.name) "
            "| p <- Persons, q <- Persons, q.age = p.age }"
        )
        db.run(q)
        assert len(db._indexes) == 1

    def test_insert_drops_touched_index(self, db):
        q = (
            "{ struct(a: p.name, b: q.name) "
            "| p <- Persons, q <- Persons, q.age = p.age }"
        )
        db.run(q)
        db.insert("Pet", species="dog")  # A(Pet): Persons index survives
        assert len(db._indexes) == 1
        db.insert("Person", name="Cyd", age=3)  # A(Person): dropped
        assert len(db._indexes) == 0

    def test_stale_index_never_answers(self, db):
        q = (
            "{ struct(a: p.name, b: q.name) "
            "| p <- Persons, q <- Persons, q.age = p.age }"
        )
        n2 = len(db.run(q).python())
        db.insert("Person", name="Ada2", age=36)
        n3 = len(db.run(q).python())
        assert n2 == 2 and n3 == 5  # (Ada,Ada2) pairs + Bob


class TestFaultAndBudgetParity:
    """The compiled engine exposes the same fault sites and budget
    charging discipline as the machine."""

    def test_store_read_fault_site(self, db):
        with inject(FaultPlan((FaultRule(site="store.read", at=1),))):
            with pytest.raises(TransientFault) as exc:
                db.run("{ p.name | p <- Persons }", engine="compiled")
        assert exc.value.site == "store.read"

    def test_machine_step_fault_site(self, db):
        with inject(FaultPlan((FaultRule(site="machine.step", at=1),))):
            with pytest.raises(TransientFault):
                db.run("1 + 2", engine="compiled")

    def test_step_budget_enforced(self, db):
        with pytest.raises(Exception) as exc:
            db.run(
                "{ struct(a: p, b: q) | p <- Persons, q <- Persons }",
                engine="compiled",
                budget=Budget(max_steps=2),
            )
        assert "steps" in str(exc.value) or exc.type.__name__ == "FuelExhausted"

    def test_budget_consumed_matches_ops(self, db):
        b = Budget(max_steps=10_000)
        r = db.run("{ p.name | p <- Persons }", engine="compiled", budget=b)
        assert b.steps_used == r.steps > 0


class TestObsFastPath:
    def test_obs_off_records_nothing(self, db):
        obs.disable()
        obs.reset()
        db.run("{ p.name | p <- Persons }", engine="compiled")
        assert obs.REGISTRY.counter_values("exec_compiled_total") == {}
        assert len(obs.TRACER.finished) == 0

    def test_obs_off_builds_no_span_objects(self, db, monkeypatch):
        """The fast-path guard returns before any span is constructed."""
        import repro.obs.spans as spans_mod

        def boom(*a, **kw):  # pragma: no cover - must never run
            raise AssertionError("span built while instrumentation is off")

        obs.disable()
        monkeypatch.setattr(spans_mod, "Span", boom)
        r = db.run("{ p.name | p <- Persons }", engine="compiled")
        assert r.python() == frozenset({"Ada", "Bob"})

    def test_obs_on_emits_exec_plan_span(self, db):
        obs.enable()
        obs.reset()
        try:
            db.run("{ p.name | p <- Persons }", engine="compiled")

            def walk(sp):
                yield sp.name
                for child in sp.children:
                    yield from walk(child)

            names = {
                n for root in obs.TRACER.finished for n in walk(root)
            }
            assert "exec.plan" in names
        finally:
            obs.disable()
            obs.reset()

    def test_obs_on_counts_compiled_runs(self, db):
        obs.enable()
        obs.reset()
        try:
            db.run("{ p.name | p <- Persons }")
            db.run("{ p.name | p <- Persons }")  # result-cache hit
            compiled = obs.REGISTRY.counter_values("exec_compiled_total")
            hits = obs.REGISTRY.counter_values("exec_result_cache_hits_total")
            assert sum(compiled.values()) == 1
            assert sum(hits.values()) == 1
        finally:
            obs.disable()
            obs.reset()


class TestShellSurface:
    def test_query_reports_compiled_engine(self):
        from repro.shell import Shell

        sh = Shell(Database.from_odl(ODL))
        out = sh.handle("size(Persons)")
        assert "compiled plan" in out

    def test_explain_shows_engine_and_reason(self):
        from repro.shell import Shell

        sh = Shell(Database.from_odl(ODL))
        out = sh.handle(".explain { p.name | p <- Persons }")
        assert "engine         : compiled" in out
        assert "deterministic  : yes" in out

    def test_explain_shows_fallback_reason(self):
        from repro.shell import Shell

        sh = Shell(Database.from_odl(ODL))
        out = sh.handle('.explain new Person(name: "x", age: 0)')
        assert "engine         : reduction" in out
        assert "Theorem 4" in out
