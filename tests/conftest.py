"""Shared fixtures: the paper's schemas and small curated databases."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.methods.ast import AccessMode

# The §2 running example, extended with enough structure to exercise
# inheritance, object-valued attributes and methods.
EMPLOYEE_ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    attribute string address;
    bool is_adult() { return this.age >= 18; }
}
class Manager extends Person (extent Managers) {
    attribute int level;
}
class Employee extends Person (extent Employees) {
    attribute int EmpID;
    attribute int GrossSalary;
    attribute Manager UniqueManager;
    int NetSalary(int TaxRate) { return this.GrossSalary - TaxRate; }
}
"""

# The §1 example: class P (name), class F (name, pal), with a diverging
# method on P.
JACK_JILL_ODL = """
class P extends Object (extent Ps) {
    attribute string name;
    string loop() { while (true) { } }
}
class F extends Object (extent Fs) {
    attribute string name;
    attribute P pal;
}
"""

# The paper's §1 non-deterministic query: per P object, if no F object
# exists yet, create one and answer "Peter"; otherwise answer the
# object's own name.  Visiting Jack first yields {"Peter","Jill"};
# visiting Jill first yields {"Peter","Jack"}.
JACK_JILL_QUERY = """
{ (if size(Fs) = 0
   then struct(result: "Peter", witness: new F(name: "Peter", pal: p)).result
   else p.name)
  | p <- Ps }
"""

# The §1 variant with the diverging method: terminates iff Jill is
# visited first.
JACK_JILL_LOOP_QUERY = """
{ (if p.name = "Jack"
    then (if size(Fs) = 0 then p.loop() else "Jack")
    else struct(r: p.name, w: new F(name: "Peter", pal: p)).r)
  | p <- Ps }
"""


@pytest.fixture
def hr_db() -> Database:
    """Employee/Manager database with a few objects."""
    db = Database.from_odl(EMPLOYEE_ODL)
    boss = db.insert("Manager", name="Grace", age=50, address="NYC", level=3)
    db.insert(
        "Employee",
        name="Ada",
        age=36,
        address="London",
        EmpID=1,
        GrossSalary=5000,
        UniqueManager=boss,
    )
    db.insert(
        "Employee",
        name="Edsger",
        age=45,
        address="Austin",
        EmpID=2,
        GrossSalary=4200,
        UniqueManager=boss,
    )
    return db


@pytest.fixture
def jack_jill_db() -> Database:
    """The §1 database: two P objects, no F objects."""
    db = Database.from_odl(JACK_JILL_ODL, method_fuel=300)
    db.insert("P", name="Jack")
    db.insert("P", name="Jill")
    return db


@pytest.fixture
def empty_hr_db() -> Database:
    """The Employee schema with no objects."""
    return Database.from_odl(EMPLOYEE_ODL)
