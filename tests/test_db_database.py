"""Unit tests for the Database façade (repro.db.database)."""

import pytest

from repro.effects.algebra import Effect, add, read
from repro.errors import IOQLEffectError, IOQLTypeError
from repro.lang.ast import OidRef
from repro.model.types import INT, STRING, SetType
from repro.semantics.strategy import LAST


class TestPopulation:
    def test_insert_returns_oid(self, empty_hr_db):
        oid = empty_hr_db.insert("Person", name="Ada", age=36, address="X")
        assert isinstance(oid, OidRef)
        assert oid.name in empty_hr_db.extent("Persons")

    def test_insert_checks_attribute_set(self, empty_hr_db):
        with pytest.raises(IOQLTypeError, match="exactly"):
            empty_hr_db.insert("Person", name="Ada")

    def test_insert_checks_types(self, empty_hr_db):
        with pytest.raises(IOQLTypeError):
            empty_hr_db.insert("Person", name=1, age=36, address="X")

    def test_insert_object_valued(self, empty_hr_db):
        boss = empty_hr_db.insert("Manager", name="G", age=1, address="Y", level=1)
        e = empty_hr_db.insert(
            "Employee",
            name="A", age=2, address="Z", EmpID=1, GrossSalary=3,
            UniqueManager=boss,
        )
        assert empty_hr_db.attr(e, "UniqueManager") == boss

    def test_attr_read(self, hr_db):
        (mgr,) = hr_db.extent("Managers")
        assert hr_db.attr(mgr, "name").value == "Grace"


class TestQueries:
    def test_simple_query(self, hr_db):
        r = hr_db.query("{ e.name | e <- Employees }")
        assert r.python() == frozenset({"Ada", "Edsger"})

    def test_path_expression(self, hr_db):
        r = hr_db.query("{ e.UniqueManager.name | e <- Employees }")
        assert r.python() == frozenset({"Grace"})

    def test_method_in_query(self, hr_db):
        r = hr_db.query("{ e.NetSalary(100) | e <- Employees }")
        assert r.python() == frozenset({4900, 4100})

    def test_select_sugar(self, hr_db):
        r = hr_db.query(
            "select struct(who: e.name, net: e.NetSalary(0)) "
            "from e in Employees where e.GrossSalary > 4500"
        )
        assert r.python() == frozenset() or r.python() == ({"who": "Ada", "net": 5000},)

    def test_typecheck_before_run(self, hr_db):
        with pytest.raises(IOQLTypeError):
            hr_db.run("1 + true")

    def test_commit_behaviour(self, hr_db):
        before = len(hr_db.extent("Persons"))
        hr_db.run('new Person(name: "N", age: 1, address: "A")')
        assert len(hr_db.extent("Persons")) == before + 1

    def test_no_commit(self, hr_db):
        before = len(hr_db.extent("Persons"))
        hr_db.run('new Person(name: "N", age: 1, address: "A")', commit=False)
        assert len(hr_db.extent("Persons")) == before

    def test_strategy_passthrough(self, hr_db):
        a = hr_db.run("{ e.EmpID | e <- Employees }", strategy=LAST)
        assert a.python() == frozenset({1, 2})


class TestDefinitions:
    def test_define_and_call(self, hr_db):
        hr_db.define(
            "define paid_more(limit: int) as "
            "{ e.name | e <- Employees, e.GrossSalary > limit };"
        )
        assert hr_db.query("paid_more(4500)").python() == frozenset({"Ada"})

    def test_define_records_latent_effect(self, hr_db):
        t = hr_db.define("define all_emps() as Employees;")
        assert t.effect == Effect.of(read("Employee"))

    def test_duplicate_define_rejected(self, hr_db):
        hr_db.define("define f(x: int) as x;")
        with pytest.raises(IOQLTypeError, match="already exists"):
            hr_db.define("define f(x: int) as x + 1;")

    def test_definitions_compose(self, hr_db):
        hr_db.define("define base() as 100;")
        hr_db.define("define doubled() as base() + base();")
        assert hr_db.query("doubled()").python() == 200


class TestStaticAnalysis:
    def test_typecheck(self, hr_db):
        assert hr_db.typecheck("{ e.EmpID | e <- Employees }") == SetType(INT)

    def test_effect_of(self, hr_db):
        assert hr_db.effect_of("Managers") == Effect.of(read("Manager"))

    def test_typecheck_with_effect(self, hr_db):
        t, e = hr_db.typecheck_with_effect(
            'new Person(name: "x", age: 1, address: "a")'
        )
        assert str(t) == "Person"
        assert e == Effect.of(add("Person"))

    def test_oids_typed_in_context(self, hr_db):
        (mgr,) = hr_db.extent("Managers")
        assert str(hr_db.typecheck(OidRef(mgr))) == "Manager"

    def test_is_deterministic_positive(self, hr_db):
        assert hr_db.is_deterministic("{ p.name | p <- Persons }")

    def test_is_deterministic_negative(self, hr_db):
        src = (
            "{ (if size(Persons) = 0 then 0 "
            "   else struct(a: 1, b: new Person(name: p.name, age: 0, address: p.address)).a) "
            "  | p <- Persons }"
        )
        assert not hr_db.is_deterministic(src)
        assert hr_db.determinism_witnesses(src)

    def test_commutation_conflicts(self, hr_db):
        src = (
            "Persons union "
            '{ struct(a: q, b: new Person(name: "x", age: 0, address: "y")).a | q <- Persons }'
        )
        assert hr_db.commutation_conflicts(src)
        with pytest.raises(IOQLEffectError):
            hr_db.check_commutable(src)

    def test_check_commutable_ok(self, hr_db):
        hr_db.check_commutable("Persons union Managers")


class TestSnapshots:
    def test_snapshot_restore(self, hr_db):
        snap = hr_db.snapshot()
        hr_db.run('new Person(name: "tmp", age: 0, address: "t")')
        hr_db.define("define junk() as 1;")
        hr_db.restore(snap)
        assert "junk" not in hr_db.definitions
        r = hr_db.query("{ p.name | p <- Persons }")
        assert "tmp" not in r.python()

    def test_restore_keeps_definitions_of_snapshot(self, hr_db):
        hr_db.define("define keep() as 7;")
        snap = hr_db.snapshot()
        hr_db.run('new Person(name: "x", age: 0, address: "t")')
        hr_db.restore(snap)
        assert hr_db.query("keep()").python() == 7


class TestExplore:
    def test_explore_does_not_commit(self, hr_db):
        before = len(hr_db.extent("Persons"))
        hr_db.explore('new Person(name: "e", age: 0, address: "t")')
        assert len(hr_db.extent("Persons")) == before

    def test_explore_deterministic_query(self, hr_db):
        ex = hr_db.explore("{ e.EmpID | e <- Employees }")
        assert ex.deterministic()
