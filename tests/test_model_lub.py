"""Unit tests for the LUB analysis and the introduction's observation."""

import pytest

from repro.errors import SchemaError
from repro.model.lub import (
    InterfaceHierarchy,
    find_lub_failure,
    odmg_counterexample,
)
from repro.model.types import OBJECT


class TestClassesOnly:
    """Without interfaces (the §2 model), LUBs always exist."""

    @pytest.fixture
    def h(self):
        return InterfaceHierarchy(
            class_parent={"A": OBJECT, "B": "A", "C": "A", "D": "B"}
        )

    def test_lub_sibling_classes(self, h):
        assert h.lub("B", "C") == "A"

    def test_lub_chain(self, h):
        assert h.lub("D", "B") == "B"
        assert h.lub("D", "C") == "A"

    def test_lub_with_object(self, h):
        assert h.lub("A", OBJECT) == OBJECT

    def test_no_failure_without_interfaces(self, h):
        assert find_lub_failure(h) is None

    def test_subtype(self, h):
        assert h.subtype("D", "A")
        assert not h.subtype("A", "D")


class TestWithInterfaces:
    """The introduction's point: classes + interfaces ⇒ LUBs may not exist."""

    def test_odmg_counterexample_has_no_lub(self):
        h = odmg_counterexample()
        assert h.lub("Clerk", "Temp") is None
        mins = h.minimal_upper_bounds("Clerk", "Temp")
        assert mins == frozenset({"Payable", "Insurable"})

    def test_find_lub_failure_locates_it(self):
        failure = find_lub_failure(odmg_counterexample())
        assert failure is not None
        a, b, mins = failure
        assert {a, b} == {"Clerk", "Temp"}
        assert len(mins) == 2

    def test_single_shared_interface_has_lub(self):
        h = InterfaceHierarchy(
            class_parent={"A": OBJECT, "B": OBJECT},
            implements={"A": frozenset({"I"}), "B": frozenset({"I"})},
            iface_parents={"I": frozenset()},
        )
        assert h.lub("A", "B") == "I"
        assert find_lub_failure(h) is None

    def test_interface_extension_restores_lub(self):
        # if I and J both extend K, two classes implementing {I, J} have
        # minimal upper bounds {I, J} — still no LUB; but a class pair
        # sharing only K has the LUB K
        h = InterfaceHierarchy(
            class_parent={"A": OBJECT, "B": OBJECT},
            implements={"A": frozenset({"I"}), "B": frozenset({"J"})},
            iface_parents={
                "I": frozenset({"K"}),
                "J": frozenset({"K"}),
                "K": frozenset(),
            },
        )
        assert h.lub("A", "B") == "K"

    def test_supertypes_include_transitive_interfaces(self):
        h = InterfaceHierarchy(
            class_parent={"A": OBJECT},
            implements={"A": frozenset({"I"})},
            iface_parents={"I": frozenset({"J"}), "J": frozenset()},
        )
        assert h.supertypes("A") >= {"A", "I", "J", OBJECT}

    def test_inherited_interfaces_via_superclass(self):
        h = InterfaceHierarchy(
            class_parent={"A": OBJECT, "B": "A"},
            implements={"A": frozenset({"I"})},
            iface_parents={"I": frozenset()},
        )
        assert h.subtype("B", "I")


class TestValidation:
    def test_implements_unknown_interface(self):
        with pytest.raises(SchemaError, match="unknown"):
            InterfaceHierarchy(
                class_parent={"A": OBJECT},
                implements={"A": frozenset({"Ghost"})},
            )

    def test_implements_unknown_class(self):
        with pytest.raises(SchemaError, match="unknown class"):
            InterfaceHierarchy(
                implements={"Ghost": frozenset()},
            )

    def test_interface_cycle(self):
        with pytest.raises(SchemaError, match="cycle"):
            InterfaceHierarchy(
                iface_parents={"I": frozenset({"J"}), "J": frozenset({"I"})}
            )

    def test_unknown_type_query(self):
        h = InterfaceHierarchy()
        with pytest.raises(SchemaError):
            h.supertypes("Nope")
