"""Unit tests for exhaustive reduction-order exploration."""

import pytest

from repro.lang.ast import IntLit, StrLit
from repro.lang.parser import parse_query
from repro.lang.values import make_set_value
from repro.model.odl_parser import parse_schema
from repro.db.store import ExtentEnv, ObjectEnv, OidSupply, populate
from repro.semantics.explorer import count_schedules, explore
from repro.semantics.machine import Machine

ODL = """
class P extends Object (extent Ps) {
    attribute string name;
    string hang() { while (true) { } }
}
class F extends Object (extent Fs) {
    attribute string name;
}
"""


@pytest.fixture(scope="module")
def schema():
    return parse_schema(ODL)


@pytest.fixture
def env(schema):
    ee, oe, supply = ExtentEnv.for_schema(schema), ObjectEnv(), OidSupply()
    for n in ("Jack", "Jill"):
        ee, oe, _ = populate(schema, ee, oe, supply, "P", [("name", StrLit(n))])
    return Machine(schema, oid_supply=supply, method_fuel=100), ee, oe


def xp(env, src, **kw):
    m, ee, oe = env
    return explore(m, ee, oe, parse_query(src, extents={"Ps", "Fs"}), **kw)


class TestDeterministicQueries:
    def test_pure_single_outcome(self, env):
        ex = xp(env, "{p.name | p <- Ps}")
        assert len(ex.outcomes) == 1
        assert ex.deterministic()
        assert not ex.diverged and not ex.stuck

    def test_value_query(self, env):
        ex = xp(env, "42")
        assert ex.paths == 1
        assert ex.outcomes[0].value == IntLit(42)

    def test_multiple_paths_single_outcome(self, env):
        ex = xp(env, "{p.name | p <- Ps}")
        assert ex.paths == 2  # two iteration orders
        assert len(ex.distinct_values()) == 1

    def test_schedule_count_grows_factorially(self, schema):
        ee, oe, supply = ExtentEnv.for_schema(schema), ObjectEnv(), OidSupply()
        m = Machine(schema, oid_supply=supply)
        assert count_schedules(m, ee, oe, parse_query("{x | x <- {1, 2, 3}}")) == 6


class TestNonDeterministicQueries:
    SRC = (
        '{ (if size(Fs) = 0 '
        '   then struct(r: "Peter", w: new F(name: "Peter")).r '
        '   else p.name) | p <- Ps }'
    )

    def test_two_observable_answers(self, env):
        ex = xp(env, self.SRC)
        values = {str(v) for v in ex.distinct_values()}
        assert values == {'{"Jill", "Peter"}', '{"Jack", "Peter"}'}
        assert not ex.deterministic()

    def test_new_only_body_deterministic_up_to_bijection(self, env):
        src = "{ struct(a: p.name, b: new F(name: p.name)).a | p <- Ps }"
        ex = xp(env, src)
        # distinct final OEs (different oid orders) but ∼-equal
        assert ex.deterministic(up_to_bijection=True)
        assert len(ex.distinct_values()) == 1

    def test_strict_vs_bijection(self, env):
        src = "{ struct(a: p.name, b: new F(name: p.name)).a | p <- Ps }"
        ex = xp(env, src)
        if len(ex.outcomes) > 1:
            assert not ex.deterministic(up_to_bijection=False)


class TestDivergence:
    def test_divergence_on_some_schedule(self, env):
        src = (
            '{ (if p.name = "Jack" '
            '    then (if size(Fs) = 0 then p.hang() else "Jack") '
            '    else struct(r: p.name, w: new F(name: "x")).r) | p <- Ps }'
        )
        ex = xp(env, src, max_steps=500)
        assert ex.diverged  # Jack-first hangs
        assert ex.outcomes  # Jill-first terminates
        assert not ex.deterministic()

    def test_always_divergent(self, env):
        ex = xp(env, "{ p.hang() | p <- Ps }", max_steps=500)
        assert ex.diverged
        assert not ex.outcomes


class TestBounds:
    def test_truncation_flag(self, env):
        ex = xp(env, "{x | x <- {1, 2, 3, 4, 5}}", max_paths=3)
        assert ex.truncated
        assert not ex.deterministic()

    def test_max_steps_counts_as_divergence(self, env):
        ex = xp(env, "{p.name | p <- Ps}", max_steps=2)
        assert ex.diverged

    def test_budget_exhaustion_truncates_gracefully(self, env):
        from repro.resilience.budget import Budget

        ex = xp(env, "{p.name | p <- Ps}", budget=Budget(max_steps=3))
        assert ex.truncated  # degraded, not raised
        assert not ex.deterministic()

    def test_roomy_budget_changes_nothing(self, env):
        from repro.resilience.budget import Budget

        free = xp(env, "{p.name | p <- Ps}")
        bounded = xp(env, "{p.name | p <- Ps}", budget=Budget(max_steps=10_000))
        assert not bounded.truncated
        assert bounded.paths == free.paths
        assert bounded.deterministic() == free.deterministic()


class TestSummary:
    def test_complete_exploration_has_no_warning(self, env):
        text = xp(env, "{p.name | p <- Ps}").summary()
        assert "schedules: 2" in text
        assert "deterministic up to ∼: True" in text
        assert "warning" not in text
        assert "(truncated)" not in text

    def test_truncated_summary_carries_the_warning(self, env):
        text = xp(env, "{x | x <- {1, 2, 3, 4, 5}}", max_paths=3).summary()
        assert "(truncated)" in text
        assert "results are a sample, not a proof" in text

    def test_budget_truncated_summary_carries_the_warning(self, env):
        from repro.resilience.budget import Budget

        text = xp(
            env, "{p.name | p <- Ps}", budget=Budget(max_steps=3)
        ).summary()
        assert "results are a sample, not a proof" in text

    def test_divergence_reported(self, env):
        text = xp(env, "{ p.hang() | p <- Ps }", max_steps=500).summary()
        assert "some schedule diverges" in text
