"""Unit tests for the IOQL parser (repro.lang.parser)."""

import pytest

from repro.errors import ParseError
from repro.lang.ast import (
    BoolLit,
    Cast,
    Cmp,
    CmpKind,
    Comp,
    DefCall,
    ExtentRef,
    Field,
    Gen,
    If,
    IntLit,
    IntOp,
    IntOpKind,
    MethodCall,
    New,
    ObjEq,
    Pred,
    PrimEq,
    RecordLit,
    SetLit,
    SetOp,
    SetOpKind,
    Size,
    StrLit,
    Var,
)
from repro.lang.parser import parse_program, parse_query, parse_type
from repro.model.types import BOOL, INT, STRING, ClassType, RecordType, SetType


class TestLiterals:
    def test_int(self):
        assert parse_query("42") == IntLit(42)

    def test_negative_int(self):
        assert parse_query("-42") == IntLit(-42)

    def test_bools(self):
        assert parse_query("true") == BoolLit(True)
        assert parse_query("false") == BoolLit(False)

    def test_string(self):
        assert parse_query('"hi"') == StrLit("hi")

    def test_var(self):
        assert parse_query("x") == Var("x")


class TestOperators:
    def test_addition_left_assoc(self):
        q = parse_query("1 + 2 + 3")
        assert q == IntOp(IntOpKind.ADD, IntOp(IntOpKind.ADD, IntLit(1), IntLit(2)), IntLit(3))

    def test_mul_binds_tighter(self):
        q = parse_query("1 + 2 * 3")
        assert q == IntOp(IntOpKind.ADD, IntLit(1), IntOp(IntOpKind.MUL, IntLit(2), IntLit(3)))

    def test_parens(self):
        q = parse_query("(1 + 2) * 3")
        assert q == IntOp(IntOpKind.MUL, IntOp(IntOpKind.ADD, IntLit(1), IntLit(2)), IntLit(3))

    def test_unary_minus_expression(self):
        q = parse_query("-(x)")
        assert q == IntOp(IntOpKind.SUB, IntLit(0), Var("x"))

    def test_prim_eq(self):
        assert parse_query("1 = 2") == PrimEq(IntLit(1), IntLit(2))

    def test_obj_eq(self):
        assert parse_query("x == y") == ObjEq(Var("x"), Var("y"))

    def test_comparisons(self):
        assert parse_query("1 < 2") == Cmp(CmpKind.LT, IntLit(1), IntLit(2))
        assert parse_query("1 >= 2") == Cmp(CmpKind.GE, IntLit(1), IntLit(2))

    def test_set_ops(self):
        q = parse_query("a union b intersect c")
        assert q == SetOp(
            SetOpKind.INTERSECT,
            SetOp(SetOpKind.UNION, Var("a"), Var("b")),
            Var("c"),
        )

    def test_setop_binds_looser_than_arith(self):
        q = parse_query("{1} union {1 + 2}")
        assert isinstance(q, SetOp)
        assert q.right == SetLit((IntOp(IntOpKind.ADD, IntLit(1), IntLit(2)),))


class TestPostfix:
    def test_field(self):
        assert parse_query("x.name") == Field(Var("x"), "name")

    def test_path_expression(self):
        q = parse_query("x.foo.bar")
        assert q == Field(Field(Var("x"), "foo"), "bar")

    def test_method_call(self):
        q = parse_query("x.m(1, y)")
        assert q == MethodCall(Var("x"), "m", (IntLit(1), Var("y")))

    def test_method_no_args(self):
        assert parse_query("x.m()") == MethodCall(Var("x"), "m", ())

    def test_defcall(self):
        assert parse_query("f(1, 2)") == DefCall("f", (IntLit(1), IntLit(2)))

    def test_defcall_no_args(self):
        assert parse_query("f()") == DefCall("f", ())


class TestCast:
    def test_cast(self):
        assert parse_query("(Person) x") == Cast("Person", Var("x"))

    def test_cast_vs_parens(self):
        # "(x) + 1" is a parenthesised variable, not a cast
        q = parse_query("(x) + 1")
        assert q == IntOp(IntOpKind.ADD, Var("x"), IntLit(1))

    def test_nested_cast(self):
        q = parse_query("(A) (B) x")
        assert q == Cast("A", Cast("B", Var("x")))


class TestStructures:
    def test_empty_set(self):
        assert parse_query("{}") == SetLit(())

    def test_set_literal(self):
        assert parse_query("{1, 2, 3}") == SetLit((IntLit(1), IntLit(2), IntLit(3)))

    def test_record(self):
        q = parse_query("struct(a: 1, b: true)")
        assert q == RecordLit((("a", IntLit(1)), ("b", BoolLit(True))))

    def test_new(self):
        q = parse_query('new Person(name: "x", age: 3)')
        assert q == New("Person", (("name", StrLit("x")), ("age", IntLit(3))))

    def test_size(self):
        assert parse_query("size({1})") == Size(SetLit((IntLit(1),)))

    def test_if(self):
        q = parse_query("if true then 1 else 2")
        assert q == If(BoolLit(True), IntLit(1), IntLit(2))


class TestComprehensions:
    def test_empty_qualifiers(self):
        assert parse_query("{x | }") == Comp(Var("x"), ())

    def test_generator_arrow(self):
        q = parse_query("{x | x <- s}")
        assert q == Comp(Var("x"), (Gen("x", Var("s")),))

    def test_generator_in(self):
        assert parse_query("{x | x in s}") == parse_query("{x | x <- s}")

    def test_generator_and_predicate(self):
        q = parse_query("{x | x <- s, x < 3}")
        assert q == Comp(
            Var("x"),
            (Gen("x", Var("s")), Pred(Cmp(CmpKind.LT, Var("x"), IntLit(3)))),
        )

    def test_multiple_generators(self):
        q = parse_query("{1 | x <- s, y <- t}")
        assert q == Comp(IntLit(1), (Gen("x", Var("s")), Gen("y", Var("t"))))

    def test_nested_comprehension(self):
        q = parse_query("{ {y | y <- x} | x <- s }")
        assert isinstance(q, Comp)
        assert isinstance(q.head, Comp)


class TestSugar:
    def test_and(self):
        q = parse_query("true and false")
        assert q == If(BoolLit(True), BoolLit(False), BoolLit(False))

    def test_or(self):
        q = parse_query("true or false")
        assert q == If(BoolLit(True), BoolLit(True), BoolLit(False))

    def test_not(self):
        q = parse_query("not true")
        assert q == If(BoolLit(True), BoolLit(False), BoolLit(True))

    def test_select_from_where(self):
        q = parse_query("select x.a from x in s where x.b")
        assert q == Comp(
            Field(Var("x"), "a"),
            (Gen("x", Var("s")), Pred(Field(Var("x"), "b"))),
        )

    def test_select_multiple_froms(self):
        q = parse_query("select 1 from x in s, y in t")
        assert q == Comp(IntLit(1), (Gen("x", Var("s")), Gen("y", Var("t"))))

    def test_select_distinct_is_noop(self):
        assert parse_query("select distinct 1 from x in s") == parse_query(
            "select 1 from x in s"
        )

    def test_exists(self):
        q = parse_query("exists x in s : x < 3")
        assert q == PrimEq(
            IntLit(1),
            Size(Comp(BoolLit(True), (Gen("x", Var("s")), Pred(Cmp(CmpKind.LT, Var("x"), IntLit(3)))))),
        )

    def test_forall(self):
        q = parse_query("forall x in s : x < 3")
        assert isinstance(q, PrimEq)
        assert q.left == IntLit(0)


class TestExtentResolution:
    def test_without_extents_identifiers_stay_vars(self):
        assert parse_query("{p | p <- Persons}").qualifiers[0].source == Var("Persons")

    def test_with_extents(self):
        q = parse_query("{p | p <- Persons}", extents={"Persons"})
        assert q.qualifiers[0].source == ExtentRef("Persons")

    def test_shadowing_respected(self):
        q = parse_query("{Persons | Persons <- Persons}", extents={"Persons"})
        assert q.qualifiers[0].source == ExtentRef("Persons")
        assert q.head == Var("Persons")


class TestPrograms:
    def test_single_definition(self):
        p = parse_program("define inc(x: int) as x + 1; inc(2)")
        assert len(p.definitions) == 1
        d = p.definitions[0]
        assert d.name == "inc"
        assert d.params == (("x", INT),)
        assert p.query == DefCall("inc", (IntLit(2),))

    def test_multiple_definitions(self):
        p = parse_program(
            "define a() as 1; define b() as a() + 1; b()"
        )
        assert [d.name for d in p.definitions] == ["a", "b"]

    def test_trailing_semicolon_ok(self):
        parse_program("1;")

    def test_garbage_after_query(self):
        with pytest.raises(ParseError):
            parse_program("1 1")


class TestTypes:
    def test_primitives(self):
        assert parse_type("int") == INT
        assert parse_type("bool") == BOOL
        assert parse_type("string") == STRING

    def test_set(self):
        assert parse_type("set<int>") == SetType(INT)
        assert parse_type("set<set<bool>>") == SetType(SetType(BOOL))

    def test_struct(self):
        assert parse_type("struct(a: int, b: Person)") == RecordType(
            (("a", INT), ("b", ClassType("Person")))
        )

    def test_class(self):
        assert parse_type("Person") == ClassType("Person")

    def test_bad_type(self):
        with pytest.raises(ParseError):
            parse_type("set<>")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "1 +",
            "{1, }",
            "if true then 1",
            "new P(a 1)",
            "struct(a 1)",
            "{x | x <- }",
            "(1",
            "x.",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse_query(bad)
