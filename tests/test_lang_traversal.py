"""Unit tests for traversals and substitution (repro.lang.traversal)."""

import pytest

from repro.lang.ast import (
    Comp,
    ExtentRef,
    Gen,
    IntLit,
    IntOp,
    IntOpKind,
    New,
    Pred,
    SetLit,
    StrLit,
    Var,
)
from repro.lang.parser import parse_query
from repro.lang.traversal import (
    bound_vars,
    classes_created,
    extents_mentioned,
    free_vars,
    fresh_name,
    map_subqueries,
    query_depth,
    query_size,
    resolve_extents,
    subqueries,
    subst,
    subst_many,
    walk,
)


class TestFreeVars:
    def test_var(self):
        assert free_vars(Var("x")) == frozenset({"x"})

    def test_literal(self):
        assert free_vars(IntLit(1)) == frozenset()

    def test_operator(self):
        assert free_vars(parse_query("x + y")) == frozenset({"x", "y"})

    def test_generator_binds(self):
        q = parse_query("{x | x <- s}")
        assert free_vars(q) == frozenset({"s"})

    def test_generator_scope_is_later_quals_and_head(self):
        # x free in its own source, bound afterwards
        q = parse_query("{x | x <- x}")
        assert free_vars(q) == frozenset({"x"})

    def test_sequential_binding(self):
        q = parse_query("{x + y | x <- s, y <- t, x < y}")
        assert free_vars(q) == frozenset({"s", "t"})

    def test_second_source_sees_first_var(self):
        q = parse_query("{1 | x <- s, y <- x}")
        assert free_vars(q) == frozenset({"s"})

    def test_extent_refs_not_variables(self):
        q = resolve_extents(parse_query("{p | p <- Ps}"), {"Ps"})
        assert free_vars(q) == frozenset()

    def test_bound_vars(self):
        q = parse_query("{x | x <- s, y <- t}")
        assert bound_vars(q) == frozenset({"x", "y"})


class TestSubstitution:
    def test_simple(self):
        assert subst(Var("x"), "x", IntLit(5)) == IntLit(5)

    def test_untouched(self):
        assert subst(Var("y"), "x", IntLit(5)) == Var("y")

    def test_inside_operator(self):
        q = subst(parse_query("x + x"), "x", IntLit(2))
        assert q == parse_query("2 + 2")

    def test_shadowed_by_generator(self):
        q = parse_query("{x | x <- s, x < y}")
        out = subst(q, "x", IntLit(1))
        # x is bound by the generator: no substitution under it
        assert out == q

    def test_free_in_source_substituted(self):
        q = parse_query("{1 | x <- x}")
        out = subst(q, "x", Var("s"))
        assert out == parse_query("{1 | x <- s}")

    def test_capture_avoidance(self):
        # substituting an open term whose free var collides with a binder
        q = parse_query("{x + y | x <- s}")
        out = subst(q, "y", Var("x"))
        # the binder must have been renamed: result ≠ naive capture
        assert out != parse_query("{x + x | x <- s}")
        assert free_vars(out) == frozenset({"s", "x"})

    def test_subst_many_closed_values(self):
        q = parse_query("x + y")
        out = subst_many(q, {"x": IntLit(1), "y": IntLit(2)})
        assert out == parse_query("1 + 2")

    def test_head_substituted(self):
        q = parse_query("{y | x <- s}")
        assert subst(q, "y", IntLit(3)) == parse_query("{3 | x <- s}")


class TestMapAndWalk:
    def test_map_identity(self):
        q = parse_query("{x + 1 | x <- s, x < 2}")
        assert map_subqueries(q, lambda s: s) == q

    def test_map_transforms_children(self):
        q = parse_query("1 + 2")
        out = map_subqueries(q, lambda s: IntLit(0))
        assert out == parse_query("0 + 0")

    def test_walk_counts(self):
        q = parse_query("1 + 2 * 3")
        kinds = [type(n).__name__ for n in walk(q)]
        assert kinds.count("IntLit") == 3
        assert kinds.count("IntOp") == 2

    def test_subqueries_order(self):
        q = parse_query("f(1, 2)")
        assert list(subqueries(q)) == [IntLit(1), IntLit(2)]


class TestMetrics:
    def test_size(self):
        assert query_size(IntLit(1)) == 1
        assert query_size(parse_query("1 + 2")) == 3

    def test_depth(self):
        assert query_depth(IntLit(1)) == 1
        assert query_depth(parse_query("1 + (2 + 3)")) == 3

    def test_extents_mentioned(self):
        q = resolve_extents(parse_query("Ps union {p | p <- Qs}"), {"Ps", "Qs"})
        assert extents_mentioned(q) == frozenset({"Ps", "Qs"})

    def test_classes_created(self):
        q = parse_query('new P(a: 1) == new Q(b: 2)')
        assert classes_created(q) == frozenset({"P", "Q"})


class TestFreshNames:
    def test_no_collision(self):
        assert fresh_name("x", {"y"}) == "x"

    def test_collision_suffixed(self):
        assert fresh_name("x", {"x"}) == "x_1"
        assert fresh_name("x", {"x", "x_1"}) == "x_2"


class TestResolveExtents:
    def test_basic(self):
        q = resolve_extents(Var("Ps"), {"Ps"})
        assert q == ExtentRef("Ps")

    def test_unknown_untouched(self):
        assert resolve_extents(Var("zz"), {"Ps"}) == Var("zz")

    def test_bound_name_not_resolved(self):
        q = parse_query("{Ps | Ps <- Ps}")
        out = resolve_extents(q, {"Ps"})
        assert isinstance(out, Comp)
        assert out.qualifiers[0].source == ExtentRef("Ps")
        assert out.head == Var("Ps")
