"""Shared graph-construction helpers for the `traverse` test suites.

`Database.insert` type-checks every attribute and demands all of them,
so reference cycles cannot be created through the public API (a `Ref`
cannot point at an object that does not exist yet).  The differential
harness therefore builds object graphs by constructing `ObjectEnv` /
`ExtentEnv` directly and assigning them to the database — the same
idiom `tests/test_exec_differential.py` uses for curated stores.

The two-class schema is chosen to exercise the semantics' edge rules:

* `Ref` declares the traversed attribute `next`, so `Ref` objects have
  an outgoing link;
* `Node` (the superclass) does not, so reaching a `Node` object ends
  the chain as a *leaf* (missing attribute != stuck);
* `Ref extends Node` makes the declared closure subclass-widened: the
  static effect of `traverse(x in refs over next)` is {R(Node), R(Ref)}
  because a `Node`-typed link may dynamically hold a `Ref`.
"""

from __future__ import annotations

from repro.db.database import Database
from repro.db.store import ExtentEnv, ObjectEnv, ObjectRecord
from repro.lang.ast import IntLit, OidRef

NODE_REF_ODL = """
class Node extends Object (extent nodes) {
    attribute int tag;
}
class Ref extends Node (extent refs) {
    attribute Node next;
}
class Other extends Object (extent others) {
    attribute int x;
}
"""


def graph_db(edges: dict[str, str | None], **db_kwargs) -> Database:
    """A database over ``NODE_REF_ODL`` holding the given object graph.

    ``edges`` maps a node name to the name of its ``next`` target, or
    ``None`` for a leaf.  Names become oids ``@<name>``; a node with an
    out-edge is a ``Ref``, a leaf is a plain ``Node``.  Any graph shape
    is allowed — self-loops, cycles, diamonds — because the envs are
    installed directly.
    """
    db = Database.from_odl(NODE_REF_ODL, **db_kwargs)
    recs: dict[str, ObjectRecord] = {}
    refs: set[str] = set()
    nodes: set[str] = set()
    for i, (name, tgt) in enumerate(sorted(edges.items())):
        oid = f"@{name}"
        if tgt is None:
            recs[oid] = ObjectRecord("Node", (("tag", IntLit(i)),))
            nodes.add(oid)
        else:
            if tgt not in edges:
                raise ValueError(f"edge target {tgt!r} is not a node")
            recs[oid] = ObjectRecord(
                "Ref", (("tag", IntLit(i)), ("next", OidRef(f"@{tgt}")))
            )
            refs.add(oid)
    db.ee = ExtentEnv(
        {
            "nodes": ("Node", frozenset(nodes)),
            "refs": ("Ref", frozenset(refs)),
            "others": ("Other", frozenset()),
        }
    )
    db.oe = ObjectEnv(recs)
    return db


def reachable(edges: dict[str, str | None], start, depth=None) -> set[str]:
    """Reference closure computed independently of the implementation."""
    seen = {f"@{s}" for s in start}
    frontier = list(seen)
    hops = 0
    while frontier and (depth is None or hops < depth):
        hops += 1
        nxt = []
        for oid in frontier:
            tgt = edges.get(oid[1:])
            if tgt is None:
                continue
            toid = f"@{tgt}"
            if toid not in seen:
                seen.add(toid)
                nxt.append(toid)
        frontier = nxt
    return seen


def oids(value) -> set[str]:
    """The oid names inside a SetLit-of-OidRefs result value."""
    return {item.name for item in value.items}
