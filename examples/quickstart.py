"""Quickstart: define a schema, load data, type-check and run queries.

Run with::

    python examples/quickstart.py

Walks the shortest useful path through the library: ODL schema → insert
objects → IOQL queries (comprehension and select syntax) → static
analyses (type, effect, determinism).

Set ``REPRO_OBS=1`` to run instrumented; ``REPRO_OBS_EXPORT=<path>``
additionally writes the collected spans/events/metrics as JSONL.
"""

from __future__ import annotations

import os

import repro

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    bool is_adult() { return this.age >= 18; }
}
"""


def main() -> None:
    if os.environ.get("REPRO_OBS"):
        repro.instrument()
    db = repro.open_database(ODL)

    # -- populate ----------------------------------------------------------
    for name, age in [("Ada", 36), ("Grace", 45), ("Tim", 12)]:
        db.insert("Person", name=name, age=age)

    # -- query: comprehension syntax (the paper's core) ----------------------
    q1 = "{ p.name | p <- Persons, p.age >= 18 }"
    print(f"query : {q1.strip()}")
    print(f"type  : {db.typecheck(q1)}")
    print(f"effect: {db.effect_of(q1)}")
    print(f"answer: {sorted(db.query(q1).python())}")
    print()

    # -- query: select-from-where sugar (desugars to the same core) ----------
    q2 = (
        "select struct(who: p.name, adult: p.is_adult()) "
        "from p in Persons where p.age > 30"
    )
    print(f"query : {q2}")
    print(f"type  : {db.typecheck(q2)}")
    for row in db.query(q2).python():
        print(f"row   : {row}")
    print()

    # -- object creation from inside a query (the (New) rule) ----------------
    q3 = 'new Person(name: "Barbara", age: 28)'
    result = db.query(q3)
    print(f"query : {q3}")
    print(f"fresh : {result.value}  (effect {result.effect})")
    print(f"extent now has {len(db.extent('Persons'))} objects")
    print()

    # -- static determinism analysis (⊢′, Theorem 7) ---------------------------
    benign = "{ p.age | p <- Persons }"
    racy = (
        "{ (if size(Persons) = 4 then p.name else "
        "struct(a: p.name, b: new Person(name: p.name, age: 0)).a) "
        "| p <- Persons }"
    )
    print(f"⊢′ accepts {benign!r}: {db.is_deterministic(benign)}")
    print(f"⊢′ accepts the read+create query: {db.is_deterministic(racy)}")
    for w in db.determinism_witnesses(racy):
        print(f"  witness: {w}")

    export_path = os.environ.get("REPRO_OBS_EXPORT")
    if export_path and repro.obs.enabled():
        n = repro.obs.export.export_jsonl(export_path)
        print()
        print(f"wrote {n} observability record(s) to {export_path}")


if __name__ == "__main__":
    main()
