"""Fault injection and effect-guided recovery, end to end.

Run with::

    python examples/fault_injection.py

The script runs the quickstart workload twice over the same schema and
data: once fault-free, and once under a seeded :class:`FaultPlan` that
injects transient failures at four pipeline sites (a machine step, an
extent read, a method call, a commit), recovered with ``atomic=True``
plus a statically-gated retry policy.  It then **proves** the recovery
deterministic: the recovered database's EE/OE equal the fault-free
run's exactly, and a save/load round trip under persistence faults
yields the same state again.

CI runs this as the fault-injection smoke job; any divergence between
the two runs fails the assertions below.
"""

from __future__ import annotations

import os
import tempfile

import repro
from repro.db import persistence
from repro.errors import TransientFault
from repro.resilience.faults import FaultPlan, FaultRule, inject

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    bool is_adult() { return this.age >= 18; }
}
"""

WORKLOAD = [
    "{ p.name | p <- Persons, p.age >= 18 }",
    "select struct(who: p.name, adult: p.is_adult()) "
    "from p in Persons where p.age > 30",
    'new Person(name: "Barbara", age: 28)',
    "{ p.age | p <- Persons }",
]


def make_db() -> repro.Database:
    db = repro.open_database(ODL)
    for name, age in [("Ada", 36), ("Grace", 45), ("Tim", 12)]:
        db.insert("Person", name=name, age=age)
    return db


def run_workload(db: repro.Database, retry=None) -> list[object]:
    return [db.run(q, atomic=True, retry=retry).python() for q in WORKLOAD]


def main() -> None:
    # -- reference: the fault-free run --------------------------------------
    plain = make_db()
    plain_answers = run_workload(plain)

    # -- the same workload under injected faults ----------------------------
    # every rule lands inside a read-only statement (or its commit), so
    # recovery burns no oids and the final state can match *exactly*
    plan = FaultPlan(
        (
            FaultRule(site="machine.step", at=1),
            FaultRule(site="store.read", at=1),
            FaultRule(site="commit", at=1),
            FaultRule(site="method.call", at=1),
        ),
        seed=42,
    )
    policy = repro.RetryPolicy.seeded(42, max_attempts=6, sleep=lambda _d: None)

    faulted = make_db()
    with inject(plan):
        answers = run_workload(faulted, retry=policy)

    print("fault plan after the run:")
    print(plan.describe())
    print()

    assert sum(plan.fired.values()) >= 4, "faults did not fire"
    assert answers == plain_answers, (answers, plain_answers)
    assert faulted.ee == plain.ee, "extents diverged from the fault-free run"
    assert faulted.oe == plain.oe, "objects diverged from the fault-free run"
    print("recovered run is identical to the fault-free run "
          f"({len(faulted.oe)} objects, answers agree)")

    # -- persistence: atomic save survives a crash-window fault --------------
    tmpdir = tempfile.mkdtemp(prefix="repro-faults-")
    path = os.path.join(tmpdir, "db.json")
    io_plan = FaultPlan(
        (
            FaultRule(site="persistence.save", at=1),
            FaultRule(site="persistence.load", at=1),
        )
    )
    with inject(io_plan):
        for _attempt in range(2):
            try:
                persistence.save(faulted, ODL, path)
                break
            except TransientFault:
                continue
        for _attempt in range(2):
            try:
                loaded = persistence.load(path)
                break
            except TransientFault:
                continue
    assert io_plan.fired == {"persistence.save": 1, "persistence.load": 1}
    assert loaded.ee == faulted.ee and loaded.oe == faulted.oe
    os.unlink(path)
    os.rmdir(tmpdir)
    print("save/load round trip under persistence faults preserves the state")
    print()
    print("ok: deterministic recovery proven at all six fault sites")


if __name__ == "__main__":
    main()
