"""Empirically validating Theorems 1–8 on random configurations.

Run with::

    python examples/metatheory_demo.py [N_SEEDS]

For each random seed the script builds a random well-formed schema, a
random store, and random *well-typed* queries, then runs every theorem
checker.  A single failure would be a counterexample to the paper (or,
far more plausibly, a bug in this implementation); the expected output
is a clean sweep.
"""

from __future__ import annotations

import random
import sys

from repro.lang.ast import SetOp, SetOpKind
from repro.metatheory.generators import (
    QueryGenerator,
    make_random_schema,
    make_random_store,
)
from repro.metatheory.theorems import (
    check_determinism,
    check_functional_determinism,
    check_progress,
    check_safe_commutativity,
    check_subject_reduction,
    check_type_soundness,
)
from repro.model.types import SetType
from repro.semantics.machine import Machine


def main(n_seeds: int = 40) -> None:
    counters: dict[str, int] = {}
    failures: list[str] = []

    for seed in range(n_seeds):
        rng = random.Random(seed)
        schema = make_random_schema(rng)
        ee, oe, supply = make_random_store(schema, rng)
        machine = Machine(schema, oid_supply=supply)
        gen = QueryGenerator(schema, oe, rng, max_depth=4)
        fgen = QueryGenerator(schema, oe, rng, allow_new=False, max_depth=3)

        q = gen.query(gen.random_type())
        fq = fgen.query(SetType(fgen.random_type(depth=0)))
        elem = gen.random_type(depth=0)
        union = SetOp(
            SetOpKind.UNION,
            gen.query(SetType(elem)),
            gen.query(SetType(elem)),
        )

        checks = [
            ("T1/T5 subject reduction", check_subject_reduction(machine, ee, oe, q)),
            ("T2/T6 progress", check_progress(machine, ee, oe, q)),
            ("T3 type soundness", check_type_soundness(machine, ee, oe, q)),
            (
                "T4 functional determinism",
                check_functional_determinism(machine, ee, oe, fq, max_paths=3_000),
            ),
            ("T7 ⊢′ determinism", check_determinism(machine, ee, oe, q, max_paths=3_000)),
            (
                "T8 safe commutativity",
                check_safe_commutativity(machine, ee, oe, union, max_paths=3_000),
            ),
        ]
        for name, report in checks:
            counters[name] = counters.get(name, 0) + 1
            if not report:
                failures.append(f"seed {seed}: {name}: {report.detail}")

    print(f"random configurations checked: {n_seeds}")
    for name in sorted(counters):
        print(f"  {name:<28} {counters[name]} configs")
    if failures:
        print("\nCOUNTEREXAMPLES FOUND:")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print("\nall theorems held on every sampled configuration ✓")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40)
