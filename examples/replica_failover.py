"""Failover across a real process death: ``kill -9``, then promote.

Run with::

    PYTHONPATH=src python examples/replica_failover.py

The script plays two roles.  As the **primary** (``--burst DIR``) it
opens a durable database in ``DIR`` and inserts a long burst of
objects, fsyncing every record.  As the **survivor** (the default) it:

1. launches the primary as a *separate OS process*;
2. tails the primary's write-ahead log from the filesystem — a
   cross-process :class:`repro.replication.Replica` with no in-memory
   handle on the primary at all, serving reads the whole time;
3. ``SIGKILL``\\ s the primary mid-burst (a genuine ``kill -9``: no
   ``atexit``, no flush, possibly a torn record at the tail);
4. **promotes** the replica over the dead primary's directory, and
   proves the promoted database equals what crash *recovery* extracts
   from a byte-copy of the same directory — promotion is recovery with
   a survivor's head start;
5. writes past the dead primary's high-water mark and recovers once
   more, showing the promoted estate is itself durable.

CI runs this as the replica-failover smoke job; any divergence fails
the assertions below.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

from repro.db import recovery
from repro.db.database import Database
from repro.replication import QUARANTINED, Replica, promote
from repro.resilience.retry import RetryPolicy

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
}
"""

BURST = 400  # inserts the primary attempts before it is killed


# ---------------------------------------------------------------------------
# role: primary (the process that will be killed)
# ---------------------------------------------------------------------------


def burst(directory: str) -> None:
    db = Database.open(directory, ODL)  # sync=True: every record fsynced
    print("ready", flush=True)  # the parent waits for the log to exist
    for i in range(BURST):
        db.insert("Person", name=f"burst{i}", age=18 + i % 60)
    print("done", flush=True)  # not expected to be reached


# ---------------------------------------------------------------------------
# role: survivor (tails the log, survives the kill, takes over)
# ---------------------------------------------------------------------------


def main() -> None:
    tmp = tempfile.mkdtemp(prefix="repro-failover-")
    estate = os.path.join(tmp, "estate")
    primary = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--burst", estate],
        stdout=subprocess.PIPE,
        env={**os.environ, "PYTHONPATH": "src"},
        text=True,
    )
    try:
        assert primary.stdout.readline().strip() == "ready"

        # a cross-process replica: nothing but the directory connects it
        # to the primary — exactly what a second host would see
        replica = Replica(
            "survivor",
            directory=estate,
            retry=RetryPolicy.seeded(0, base_delay=0.0, jitter=0.0),
        )
        reads = 0
        deadline = time.monotonic() + 10.0
        while replica.applied_lsn < BURST // 4:
            if time.monotonic() > deadline:  # pragma: no cover - smoke guard
                raise AssertionError("primary made no visible progress")
            replica.poll()
            # reads keep working while the primary is mid-burst...
            assert replica.serve("size(Persons)").python() is not None
            reads += 1

        # -- kill -9, mid-burst: no flush, no goodbye ---------------------
        primary.send_signal(signal.SIGKILL)
        primary.wait()
        assert primary.returncode == -signal.SIGKILL

        # ...and keep working after it is dead
        replica.poll()
        n_before = replica.serve("size(Persons)").python()
        assert replica.state != QUARANTINED

        # byte-copy the estate *before* promotion touches it: the copy is
        # what an independent crash recovery gets to see
        ref_dir = os.path.join(tmp, "reference")
        shutil.copytree(estate, ref_dir)

        # -- promote the survivor over the dead primary's directory ------
        promoted = promote(replica, directory=estate)
        reference = recovery.recover(ref_dir, attach=False).db
        assert promoted.ee == reference.ee, "promotion != recovery (extents)"
        assert promoted.oe == reference.oe, "promotion != recovery (objects)"
        survived = promoted.run("size(Persons)").python()
        print(
            f"killed the primary after {survived} durable inserts "
            f"({reads} reads served through the outage, "
            f"applied lsn {replica.applied_lsn})"
        )
        assert survived >= n_before  # promotion replayed the shipped tail

        # -- life goes on: writes resume past the high-water mark ---------
        fresh = promoted.insert("Person", name="after-failover", age=1)
        fresh_oid = getattr(fresh, "name", fresh)
        assert promoted.run("size(Persons)").python() == survived + 1
        promoted.close()
        again = recovery.recover(estate, attach=False).db
        assert fresh_oid in again.oe, "post-failover write not durable"
        print("promoted survivor equals crash recovery; writes resume; "
              "the promoted estate recovers on its own")
        print("ok: failover proven against a real kill -9")
    finally:
        if primary.poll() is None:  # pragma: no cover - cleanup path
            primary.kill()
            primary.wait()
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--burst":
        burst(sys.argv[2])
    else:
        main()
