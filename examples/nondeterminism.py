"""The paper's §1 motivating examples, reproduced end to end.

Run with::

    python examples/nondeterminism.py

Builds the P/F database with two P objects ("Jack" and "Jill") and no F
objects, then:

1. runs the observably **non-deterministic** query of §1 under both
   iteration orders, showing the two answers the paper reports —
   ``{"Peter", "Jill"}`` and ``{"Peter", "Jack"}``;
2. enumerates *all* reduction orders with the explorer;
3. shows that the ⊢′ effect discipline statically rejects the query,
   naming the interfering class (F is both read and added to);
4. runs the ``loop`` variant that terminates on one schedule and
   diverges on the other.
"""

from __future__ import annotations

import repro
from repro.errors import FuelExhausted

ODL = """
class P extends Object (extent Ps) {
    attribute string name;
    string loop() { while (true) { } }
}
class F extends Object (extent Fs) {
    attribute string name;
    attribute P pal;
}
"""

# Per P object: if no F object exists yet, create one and answer
# "Peter"; otherwise answer the P object's own name.  The first
# iteration creates the F, so the answer depends on who goes first.
QUERY = """
{ (if size(Fs) = 0
   then struct(result: "Peter", witness: new F(name: "Peter", pal: p)).result
   else p.name)
  | p <- Ps }
"""

LOOP_QUERY = """
{ (if p.name = "Jack"
    then (if size(Fs) = 0 then p.loop() else "Jack")
    else struct(r: p.name, w: new F(name: "Peter", pal: p)).r)
  | p <- Ps }
"""


def main() -> None:
    db = repro.open_database(ODL, method_fuel=500)
    db.insert("P", name="Jack")
    db.insert("P", name="Jill")

    print("=== 1. the two schedules, run explicitly ===")
    for label, strategy in [("Jack first", repro.FIRST), ("Jill first", repro.LAST)]:
        r = db.run(QUERY, strategy=strategy, commit=False)
        print(f"{label:>10}: answer = {sorted(r.python())}, "
              f"F objects created = {len(r.ee.members('Fs'))}")

    print()
    print("=== 2. every reduction order (the explorer) ===")
    ex = db.explore(QUERY)
    print(f"schedules explored : {ex.paths}")
    print(f"distinct answers   : {[str(v) for v in ex.distinct_values()]}")
    print(f"deterministic (∼)  : {ex.deterministic()}")

    print()
    print("=== 3. the ⊢′ static analysis (Theorem 7) ===")
    eff = db.effect_of(QUERY)
    print(f"inferred effect ε = {eff}")
    for w in db.determinism_witnesses(QUERY):
        print(f"⊢′ rejects: {w}")
    print(f"⊢′ accepts the pure projection: "
          f"{db.is_deterministic('{ p.name | p <- Ps }')}")

    print()
    print("=== 4. the loop() variant: schedule-dependent termination ===")
    r = db.run(LOOP_QUERY, strategy=repro.LAST, commit=False)
    print(f"Jill first: terminates with {sorted(r.python())}")
    try:
        db.run(LOOP_QUERY, strategy=repro.FIRST, commit=False, max_steps=2_000)
        print("Jack first: terminated (unexpected!)")
    except FuelExhausted:
        print("Jack first: DIVERGES (fuel exhausted, as the paper predicts)")


if __name__ == "__main__":
    main()
