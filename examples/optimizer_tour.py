"""Effect-gated query optimization (§4), including the paper's
intersection-commutation counterexample.

Run with::

    python examples/optimizer_tour.py

Shows:

1. the §4 example — one Person ("Jack"/"Utah"), one Employee
   ("Jill"/"NYC") — where commuting a set intersection changes the
   answer from a singleton to "the empty set!";
2. the ⊢″ analysis that statically refuses the rewrite (Theorem 8);
3. a safe commutation that the same analysis licenses;
4. the normalisation pipeline (constant folding, predicate pushdown,
   unnesting) with its provenance trail and measured step savings.
"""

from __future__ import annotations

import repro
from repro.lang.ast import SetOp, SetOpKind
from repro.optimizer.planner import explain_commutation, optimize, try_commute

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute string address;
}
class Employee extends Person (extent Employees) {
}
"""


def main() -> None:
    db = repro.open_database(ODL)
    db.insert("Person", name="Jack", address="Utah")
    db.insert("Employee", name="Jill", address="NYC")

    # the left operand CREATES a Person per employee; the right READS
    # the Person extent — evaluated left-to-right, the created object is
    # already in the extent when it is read.
    creator = db.parse(
        '{ new Person(name: e.name, address: "Utah") | e <- Employees }'
    )
    reader = db.parse("Persons")
    original = SetOp(SetOpKind.INTERSECT, creator, reader)
    commuted = SetOp(SetOpKind.INTERSECT, reader, creator)

    print("=== 1. the §4 counterexample ===")
    r1 = db.run(original, commit=False)
    print(f"original : |answer| = {len(r1.value.items)}  (the Jill/Utah object)")
    r2 = db.run(commuted, commit=False)
    print(f"commuted : |answer| = {len(r2.value.items)}  (the paper: 'the empty set!')")

    print()
    print("=== 2. ⊢″ statically refuses the rewrite (Theorem 8) ===")
    print(explain_commutation(db, original))
    res = try_commute(db, original)
    print(f"optimizer applied the commutation: {res.changed}")

    print()
    print("=== 3. a safe commutation ===")
    safe = db.parse("Persons intersect Employees")
    print(explain_commutation(db, safe))
    print(f"rewritten to: {try_commute(db, safe).query}")

    print()
    print("=== 4. the normalisation pipeline ===")
    q = db.parse(
        "{ struct(n: p.name, k: 2 + 3) "
        "| p <- Persons, x <- {y | y <- {1, 2, 3}, true}, p.address = \"Utah\" }"
    )
    res = optimize(db, q)
    print(f"before : {q}")
    print(f"after  : {res.query}")
    for step in res.steps:
        print(f"  fired {step.rule}")
    before = db.run(q, commit=False).steps
    after = db.run(res.query, commit=False).steps
    print(f"reduction steps: {before} -> {after} "
          f"({100 * (before - after) // before}% fewer)")


if __name__ == "__main__":
    main()
