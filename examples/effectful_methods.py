"""The §5 design space: methods that read, add to and update the database.

Run with::

    python examples/effectful_methods.py

The paper's core keeps methods read-only; §5 sketches the extreme point
where method bodies can change the extent and object environments, with
the (Method) rule threading EE/OE through the big-step relation ⇓.
This example exercises that mode: effect-annotated method signatures,
updating/creating/reading bodies, native Python methods behind the same
capability fence, and the ⊢′ analysis catching an update race.
"""

from __future__ import annotations

import repro
from repro.lang.ast import IntLit, MethodCall, OidRef
from repro.methods.ast import NativeMethod

ODL = """
class Account extends Object (extent Accounts) {
    attribute string owner;
    attribute int balance;
    int deposit(int amount) effect U(Account) {
        this.balance := this.balance + amount;
        return this.balance;
    }
    Account open_child(string who) effect A(Account) {
        return new Account(owner: who, balance: 0);
    }
    int bank_total() effect R(Account) {
        var total : int := 0;
        for (a in extent(Accounts)) { total := total + a.balance; }
        return total;
    }
    int audited_total() effect R(Account) native;
}
"""


def main() -> None:
    db = repro.open_database(ODL, effectful_methods=True)

    # bind the native method: the "third-party programming language"
    def audited_total(ctx, self_oid, args):
        total = 0
        for oid in sorted(ctx.extent("Accounts")):
            total += ctx.attr(oid, "balance").value
        return IntLit(total)

    mdef = db.schema.mbody("Account", "audited_total")
    object.__setattr__(mdef, "body", NativeMethod(audited_total, "audited_total"))

    alice = db.insert("Account", owner="alice", balance=100)
    bob = db.insert("Account", owner="bob", balance=50)

    print("=== updating method (U effect) ===")
    r = db.run(MethodCall(alice, "deposit", (IntLit(25),)))
    print(f"deposit(25) -> {r.python()}   traced effect: {r.effect}")
    print(f"alice's balance is now {db.attr(alice, 'balance').value}")

    print()
    print("=== creating method (A effect) ===")
    before = len(db.extent("Accounts"))
    db.run(MethodCall(alice, "open_child", (repro.to_value("carol"),)))
    print(f"accounts: {before} -> {len(db.extent('Accounts'))}")

    print()
    print("=== reading methods: MJava `for` and native Python agree ===")
    mj = db.run(MethodCall(alice, "bank_total", ()), commit=False)
    nat = db.run(MethodCall(alice, "audited_total", ()), commit=False)
    print(f"MJava bank_total  : {mj.python()}  (effect {mj.effect})")
    print(f"native audited    : {nat.python()}  (effect {nat.effect})")

    print()
    print("=== ⊢′ catches the update race (Theorem 7 in §5 mode) ===")
    racy = "{ a.deposit(a.bank_total()) | a <- Accounts }"
    print(f"query: {racy}")
    print(f"inferred effect: {db.effect_of(racy)}")
    for w in db.determinism_witnesses(racy):
        print(f"⊢′ rejects: {w}")
    ex = db.explore(racy)
    print(f"dynamic confirmation: {len(ex.distinct_values())} distinct answers "
          f"across {ex.paths} schedules")


if __name__ == "__main__":
    main()
