"""A realistic HR workload on the §2 Employee schema.

Run with::

    python examples/hr_database.py

The paper's §2 running example (Employee extends Person, with an
object-valued ``UniqueManager`` attribute and a ``NetSalary`` method),
extended into a small working database: reusable query definitions,
path expressions, quantifiers, aggregation-style nested comprehensions,
effect-gated optimization and an audit of every query's inferred
effect.

Set ``REPRO_OBS=1`` to run with instrumentation on; add
``REPRO_OBS_EXPORT=<path>`` to write the collected spans/events/metrics
as JSONL at the end (every pipeline phase — parse, typecheck, effects,
optimize, eval, commit — shows up as a span).
"""

from __future__ import annotations

import os

import repro

ODL = """
class Person extends Object (extent Persons) {
    attribute string name;
    attribute int age;
    attribute string address;
    bool is_adult() { return this.age >= 18; }
}
class Manager extends Person (extent Managers) {
    attribute int level;
}
class Employee extends Person (extent Employees) {
    attribute int EmpID;
    attribute int GrossSalary;
    attribute Manager UniqueManager;
    int NetSalary(int TaxRate) { return this.GrossSalary - TaxRate; }
}
"""


def main() -> None:
    if os.environ.get("REPRO_OBS"):
        repro.instrument()
    db = repro.open_database(ODL)

    grace = db.insert("Manager", name="Grace", age=45, address="NYC", level=3)
    barb = db.insert("Manager", name="Barbara", age=50, address="MIT", level=2)
    staff = [
        ("Ada", 36, "London", 1, 5200, grace),
        ("Edsger", 45, "Austin", 2, 4700, grace),
        ("Tony", 41, "Oxford", 3, 4900, barb),
        ("Leslie", 33, "SRC", 4, 5100, barb),
    ]
    for name, age, addr, eid, gross, mgr in staff:
        db.insert(
            "Employee",
            name=name, age=age, address=addr,
            EmpID=eid, GrossSalary=gross, UniqueManager=mgr,
        )

    # -- reusable definitions (the paper's `define`) -------------------------
    db.define("define tax_rate() as 700;")
    db.define("define net(e: Employee) as e.NetSalary(tax_rate());")
    db.define(
        "define team(m: Manager) as "
        "{ e | e <- Employees, e.UniqueManager == m };"
    )

    print("=== team rosters (path expressions + == identity) ===")
    rows = db.query(
        "{ struct(mgr: m.name, who: { e.name | e <- team(m) }) | m <- Managers }"
    ).python()
    for row in sorted(rows, key=lambda r: r["mgr"]):
        print(f"  {row['mgr']:>8}: {sorted(row['who'])}")

    print()
    print("=== net salaries over 4200 (definition stack + method) ===")
    q = "select struct(who: e.name, net: net(e)) from e in Employees where net(e) > 4200"
    print(f"  type: {db.typecheck(q)}")
    for row in sorted(db.query(q).python(), key=lambda r: -r["net"]):
        print(f"  {row['who']:>8}: {row['net']}")

    print()
    print("=== quantifiers ===")
    print("  every employee is an adult      :",
          db.query("forall e in Employees : e.is_adult()").python())
    print("  some manager is above level 2   :",
          db.query("exists m in Managers : m.level > 2").python())
    print("  some manager manages no one     :",
          db.query("exists m in Managers : size(team(m)) = 0").python())

    print()
    print("=== per-manager payroll (nested comprehension aggregation) ===")
    payroll = db.query(
        "{ struct(mgr: m.name, heads: size(team(m)), "
        "top: size({ e | e <- team(m), net(e) > 4200 })) | m <- Managers }"
    ).python()
    for row in sorted(payroll, key=lambda r: r["mgr"]):
        print(f"  {row['mgr']:>8}: headcount={row['heads']} above-4200={row['top']}")

    print()
    print("=== effect-gated optimization (§4) ===")
    q = "{ e.name | e <- Employees, true, e.GrossSalary > 0 + 4200 }"
    optimized = db.optimize(q)
    print(f"  before: {q}")
    print(f"  after : {optimized}")

    print()
    print("=== effect audit of the session's queries ===")
    for src in [
        "{ e.name | m <- Managers, e <- team(m) }",
        "{ net(e) | e <- Employees }",
        'new Person(name: "x", age: 1, address: "here")',
        "42 + 8",
    ]:
        print(f"  {db.effect_of(src)!s:>28}  {src}")

    export_path = os.environ.get("REPRO_OBS_EXPORT")
    if export_path and repro.obs.enabled():
        n = repro.obs.export.export_jsonl(export_path)
        print()
        print(f"=== wrote {n} observability record(s) to {export_path} ===")


if __name__ == "__main__":
    main()
