"""The observability surface, end to end: profiler, black box, health.

Run with::

    PYTHONPATH=src python examples/obs_smoke.py

Three acts, each asserting what CI's obs-smoke job gates on:

1. ``.explain analyze`` over the compiled-engine benchmark workloads —
   every operator node must carry both an *estimated* and an *actual*
   cardinality (the estimated-vs-actual comparison is the profiler's
   whole point), and the machine-readable ``profile_dict()`` must
   round-trip through JSON;
2. a forced ``wal.fsync`` fault mid-commit — the flight recorder must
   leave a parseable ``flight.jsonl`` post-mortem next to the log
   whose tail shows the doomed commit's static effect, the injected
   fault site, and the terminal crash marker, in that order;
3. ``Database.health()`` — the snapshot must be JSON-safe, report the
   WAL's fsync percentiles, and export cleanly through the Prometheus
   text exporter (which validates every metric name).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

from workloads import hr  # noqa: E402

from repro import obs  # noqa: E402
from repro.errors import TransientFault  # noqa: E402
from repro.resilience.faults import FaultPlan, FaultRule, inject  # noqa: E402

WORKLOADS = [
    "{ struct(m: m.name, team: { e.EmpID | e <- Employees, "
    "e.UniqueManager == m }) | m <- Managers }",
    "{ struct(e: e.EmpID, m: m.name) "
    "| e <- Employees, m <- Managers, m == e.UniqueManager }",
    "{ e.name | e <- Employees, e.GrossSalary > 5400 }",
]


def act_1_profiler(db) -> None:
    for src in WORKLOADS:
        prof = db.explain_analyze(src)
        assert prof.engine == "compiled", (src, prof.engine)
        assert prof.nodes, "profiler produced no operator tree"
        for node in prof.nodes:
            d = node.as_dict()
            assert d["est_rows"] is not None, f"node {d['label']}: no estimate"
            assert d["rows_out"] is not None, f"node {d['label']}: no actual"
        round_tripped = json.loads(json.dumps(prof.profile_dict()))
        assert round_tripped["nodes"], "profile_dict lost the tree"
        print(prof.render())
        print()
    print(f"act 1 ok: {len(WORKLOADS)} profiled queries, every node has "
          "estimate + actual\n")


def act_2_flight_recorder(db, wal_dir: str) -> None:
    plan = FaultPlan([FaultRule("wal.fsync", at=1)])
    try:
        with inject(plan):
            db.insert("Manager", name="doomed", age=50, level=9)
    except TransientFault as exc:
        print(f"injected: {exc}")
    else:
        raise AssertionError("wal.fsync fault did not fire")
    dump = os.path.join(wal_dir, "flight.jsonl")
    assert os.path.exists(dump), "no flight dump after the crash"
    with open(dump, encoding="utf-8") as fh:
        lines = [json.loads(line) for line in fh if line.strip()]
    assert lines[0]["category"] == "flight-header", lines[0]
    tail = lines[-6:]
    cats = [rec["category"] for rec in tail]
    assert cats[-1] == "crash", cats
    assert any(
        rec["category"] == "fault" and rec["site"] == "wal.fsync"
        for rec in tail
    ), f"fault site missing from dump tail: {cats}"
    commits = [rec for rec in lines if rec["category"] == "commit"]
    assert commits and "A(Manager)" in commits[-1]["effect"], commits
    print(f"act 2 ok: {len(lines)}-line flight dump, tail "
          f"{cats} carries the commit effect "
          f"{commits[-1]['effect']}\n")


def act_3_health(db) -> None:
    h = db.health()
    json.dumps(h)  # JSON-safe or raise
    assert h["wal"]["attached"], "WAL should still be attached"
    assert h["wal"]["fsync"]["samples"] > 0, "no fsync samples recorded"
    assert h["wal"]["fsync"]["p99_s"] >= h["wal"]["fsync"]["p50_s"] >= 0.0
    assert h["plan_cache"]["hits"] + h["plan_cache"]["misses"] > 0
    obs.enable()
    try:
        db.health()  # mirrors the scalars into the registry
        text = obs.export.prometheus_text()
    finally:
        obs.disable()
        obs.reset()
    for metric in ("wal_fsync_p99_seconds", "plan_cache_hit_rate",
                   "wal_applied_lsn"):
        assert f"\n{metric} " in text or text.startswith(f"{metric} "), (
            f"{metric} missing from the Prometheus export"
        )
    from repro.db import health as health_mod

    print(health_mod.render(h))
    print("\nact 3 ok: health snapshot JSON-safe, fsync percentiles "
          "populated, Prometheus export serves the gauges")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        db = hr(40, 6)
        wal_dir = os.path.join(tmp, "hr-db")
        db.attach_wal(wal_dir)
        db.insert("Manager", name="warmup", age=44, level=1)
        act_1_profiler(db)
        act_2_flight_recorder(db, wal_dir)
        act_3_health(db)
    print("\nobs smoke: all acts passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
