"""A persistent library catalog: the full stack in one workload.

Run with::

    python examples/library_catalog.py [dump.json]

Exercises the pieces a downstream adopter would combine: a multi-class
schema with object references, bulk loading, reusable definitions,
cost-based optimization against live catalog statistics, the big-step
engine for throughput, and save/load round-tripping (pass a path to
keep the dump).
"""

from __future__ import annotations

import sys
import tempfile

import repro
from repro.db.persistence import load, save
from repro.optimizer.cost import CostModel, optimize_with_costs
from repro.semantics.evaluator import evaluate

ODL = """
class Author extends Object (extent Authors) {
    attribute string name;
    attribute int born;
}
class Book extends Object (extent Books) {
    attribute string title;
    attribute Author author;
    attribute int year;
    attribute int copies;
    bool is_classic() { return this.year < 1980; }
}
class Member extends Object (extent Members) {
    attribute string name;
    attribute Book favourite;
}
"""

AUTHORS = [("Knuth", 1938), ("Hopper", 1906), ("Dijkstra", 1930)]
BOOKS = [
    ("TAOCP", "Knuth", 1968, 3),
    ("Literate Programming", "Knuth", 1992, 1),
    ("Understanding Computers", "Hopper", 1984, 2),
    ("A Discipline of Programming", "Dijkstra", 1976, 2),
    ("EWD Notes", "Dijkstra", 1982, 1),
]


def build() -> repro.Database:
    db = repro.open_database(ODL)
    authors = {
        name: db.insert("Author", name=name, born=born)
        for name, born in AUTHORS
    }
    books = {}
    for title, author, year, copies in BOOKS:
        books[title] = db.insert(
            "Book", title=title, author=authors[author], year=year, copies=copies
        )
    db.insert("Member", name="ada", favourite=books["TAOCP"])
    db.insert("Member", name="grace", favourite=books["EWD Notes"])
    db.define(
        "define by(a: Author) as { b | b <- Books, b.author == a };"
    )
    db.define(
        "define shelf(minyear: int) as "
        "{ struct(t: b.title, y: b.year) | b <- Books, b.year >= minyear };"
    )
    return db


def main() -> None:
    db = build()

    print("=== catalogue queries ===")
    classics = db.query("{ b.title | b <- Books, b.is_classic() }")
    print(f"classics            : {sorted(classics.python())}")
    per_author = db.query(
        "{ struct(who: a.name, n: size(by(a))) | a <- Authors }"
    ).python()
    for row in sorted(per_author, key=lambda r: r["who"]):
        print(f"  {row['who']:>10}: {row['n']} book(s)")
    favs = db.query(
        "{ struct(m: m.name, likes: m.favourite.author.name) | m <- Members }"
    ).python()
    for row in sorted(favs, key=lambda r: r["m"]):
        print(f"  {row['m']:>10} likes {row['likes']}")

    print()
    print("=== cost-based optimization against live statistics ===")
    model = CostModel.from_database(db)
    join = db.parse(
        "{ struct(b: b.title, m: m.name) | b <- Books, m <- Members, "
        "m.favourite == b }"
    )
    res = optimize_with_costs(db, join)
    print(f"estimated cost before: {model.eval_cost(join):.0f}")
    print(f"estimated cost after : {model.eval_cost(res.query):.0f}")
    print(f"rules fired          : {res.rules_fired() or '(none)'}")
    before = evaluate(db.machine, db.ee, db.oe, join).steps
    after = evaluate(db.machine, db.ee, db.oe, res.query).steps
    print(f"actual steps         : {before} -> {after}")

    print()
    print("=== engines agree; big-step for throughput ===")
    q = "{ struct(t: s.t) | s <- shelf(1980) }"
    slow = db.run(q, commit=False)
    fast = db.run(q, commit=False, engine="bigstep")
    print(f"reduction machine : {sorted(r['t'] for r in slow.python())}")
    print(f"big-step engine   : {sorted(r['t'] for r in fast.python())}")
    assert slow.value == fast.value

    print()
    print("=== persistence round-trip ===")
    path = sys.argv[1] if len(sys.argv) > 1 else tempfile.mktemp(suffix=".json")
    save(db, ODL, path)
    db2 = load(path)
    again = db2.query("{ b.title | b <- Books, b.is_classic() }")
    print(f"saved to {path}")
    print(f"reloaded classics   : {sorted(again.python())}")
    assert again.value == classics.value
    print("round-trip intact ✓")


if __name__ == "__main__":
    main()
